//! The DAIG data structure: reference cells and computation hyperedges
//! (paper §4), with the Definition 4.1 well-formedness checks.

use crate::name::Name;
use crate::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_lang::Stmt;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;

/// A value stored in a reference cell: program syntax or an abstract state
/// (paper Fig. 6's `v ::= s | φ`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value<D> {
    /// A statement.
    Stmt(Stmt),
    /// An abstract state.
    State(D),
}

impl<D: AbstractDomain> Value<D> {
    /// The abstract state, if this value is one.
    pub fn as_state(&self) -> Option<&D> {
        match self {
            Value::State(d) => Some(d),
            Value::Stmt(_) => None,
        }
    }

    /// The statement, if this value is one.
    pub fn as_stmt(&self) -> Option<&Stmt> {
        match self {
            Value::Stmt(s) => Some(s),
            Value::State(_) => None,
        }
    }
}

impl<D: fmt::Display> fmt::Display for Value<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Stmt(s) => write!(f, "{s}"),
            Value::State(d) => write!(f, "{d}"),
        }
    }
}

/// The analysis functions labelling DAIG edges (paper Fig. 6's
/// `f ::= ⟦·⟧♯ | ⊔ | ∇ | fix`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Abstract transfer `⟦·⟧♯(stmt, pre-state)`.
    Transfer,
    /// Join `⊔(pre-join states...)`.
    Join,
    /// Widening `∇(previous iterate, pre-widen state)`.
    Widen,
    /// The distinguished fixed-point marker (paper §5.2): not a function
    /// but a demand for convergence of its two iterate sources.
    Fix,
}

impl Func {
    /// The symbol used in memo keys. `Fix` is never memoized (paper's
    /// `Q-Miss` requires `f ≠ fix`).
    pub fn memo_symbol(self) -> &'static str {
        match self {
            Func::Transfer => "transfer",
            Func::Join => "join",
            Func::Widen => "widen",
            Func::Fix => "fix",
        }
    }
}

/// A computation hyperedge `n ← f(n₁, …, n_k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comp {
    /// The labelling function.
    pub func: Func,
    /// Source cell names, in argument order.
    pub srcs: Vec<Name>,
}

/// Errors reported by DAIG operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaigError {
    /// A queried name does not exist in the DAIG's namespace.
    NoSuchCell(String),
    /// An internal invariant was violated (a bug; reported rather than
    /// panicking so harnesses can surface it).
    Invariant(String),
}

impl fmt::Display for DaigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaigError::NoSuchCell(n) => write!(f, "no such cell `{n}`"),
            DaigError::Invariant(m) => write!(f, "DAIG invariant violated: {m}"),
        }
    }
}

impl std::error::Error for DaigError {}

/// A demanded abstract interpretation graph: named reference cells plus
/// computation hyperedges keyed by destination (well-formedness (2):
/// destinations are unique).
#[derive(Debug, Clone)]
pub struct Daig<D: AbstractDomain> {
    cells: HashMap<Name, Option<Value<D>>>,
    comps: HashMap<Name, Comp>,
    /// Reverse adjacency: source name → destinations of computations that
    /// read it. Maintained by [`Daig::add_comp`]/[`Daig::remove_comp`].
    dependents: HashMap<Name, BTreeSet<Name>>,
    /// The loop-head iteration strategy this DAIG's `∇` and `fix` edges
    /// realize. Carried by the graph so query evaluation and the
    /// Definition 4.3 consistency checker always agree on the abstract
    /// interpretation being encoded (see [`crate::strategy`]).
    strategy: FixStrategy,
}

impl<D: AbstractDomain> Default for Daig<D> {
    fn default() -> Self {
        Daig::new()
    }
}

impl<D: AbstractDomain> Daig<D> {
    /// An empty DAIG with the paper's default strategy.
    pub fn new() -> Daig<D> {
        Daig {
            cells: HashMap::new(),
            comps: HashMap::new(),
            dependents: HashMap::new(),
            strategy: FixStrategy::PAPER,
        }
    }

    /// The loop-head iteration strategy in effect.
    pub fn strategy(&self) -> FixStrategy {
        self.strategy
    }

    /// Replaces the iteration strategy.
    ///
    /// Changing the strategy of a DAIG that already holds loop-head results
    /// would make those results inconsistent with the new semantics, so
    /// this should only be called on freshly built (or fully dirtied)
    /// graphs; [`crate::analysis::FuncAnalysis::with_strategy`] does so.
    pub fn set_strategy(&mut self, strategy: FixStrategy) {
        self.strategy = strategy;
    }

    /// Number of reference cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of computation edges.
    pub fn comp_count(&self) -> usize {
        self.comps.len()
    }

    /// Does the namespace contain `n`?
    pub fn contains(&self, n: &Name) -> bool {
        self.cells.contains_key(n)
    }

    /// The value of cell `n`, if the cell exists and is non-empty.
    pub fn value(&self, n: &Name) -> Option<&Value<D>> {
        self.cells.get(n).and_then(|v| v.as_ref())
    }

    /// The computation producing `n`, if any.
    pub fn comp(&self, n: &Name) -> Option<&Comp> {
        self.comps.get(n)
    }

    /// The destinations that read `n`.
    pub fn dependents(&self, n: &Name) -> impl Iterator<Item = &Name> {
        self.dependents.get(n).into_iter().flatten()
    }

    /// All cell names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.cells.keys()
    }

    /// Number of non-empty cells.
    pub fn filled_count(&self) -> usize {
        self.cells.values().filter(|v| v.is_some()).count()
    }

    /// The *ready frontier*: empty cells whose computation has every input
    /// filled — the cells a topological scheduler may evaluate right now.
    /// Because the DAIG is acyclic, distinct frontier cells never read
    /// each other, so they can be computed **in any order or in
    /// parallel** with identical results. Non-consuming: the iterator
    /// borrows the graph and the caller decides what to evaluate.
    ///
    /// This is the whole-graph frontier, the reference model for
    /// schedulers (and what exhaustive evaluate-everything consumers
    /// drain). `dai-engine`'s scheduler computes the same notion
    /// restricted to a query's demanded cone, maintained incrementally
    /// via missing-input counts rather than by re-scanning — see
    /// `dai_engine::scheduler::evaluate_targets`.
    ///
    /// `fix` destinations appear in the frontier once both their iterate
    /// inputs are filled; callers must route those through
    /// [`crate::query::fix_step`] (they mutate the graph) rather than
    /// [`crate::query::apply_ready`].
    pub fn ready_frontier(&self) -> impl Iterator<Item = &Name> {
        self.comps
            .iter()
            .filter(|(dest, comp)| {
                self.value(dest).is_none() && comp.srcs.iter().all(|s| self.value(s).is_some())
            })
            .map(|(dest, _)| dest)
    }

    /// Adds (or resets) a cell with an initial value.
    pub fn add_cell(&mut self, n: Name, v: Option<Value<D>>) {
        self.cells.insert(n, v);
    }

    /// Writes a value into an existing cell (the low-level mutation
    /// `D[n ↦ v]` of the paper — no invalidation; see `edit` for the
    /// dirtying judgment).
    pub fn write(&mut self, n: &Name, v: Value<D>) {
        if let Some(slot) = self.cells.get_mut(n) {
            *slot = Some(v);
        }
    }

    /// Empties a cell, returning its previous value.
    pub fn clear(&mut self, n: &Name) -> Option<Value<D>> {
        self.cells.get_mut(n).and_then(|slot| slot.take())
    }

    /// Installs a computation `dest ← f(srcs)`, replacing any previous
    /// computation for `dest` and maintaining reverse adjacency.
    pub fn add_comp(&mut self, dest: Name, func: Func, srcs: Vec<Name>) {
        self.remove_comp(&dest);
        for s in &srcs {
            self.dependents
                .entry(s.clone())
                .or_default()
                .insert(dest.clone());
        }
        self.comps.insert(dest, Comp { func, srcs });
    }

    /// Removes the computation for `dest`, if any.
    pub fn remove_comp(&mut self, dest: &Name) {
        if let Some(old) = self.comps.remove(dest) {
            for s in &old.srcs {
                if let Some(ds) = self.dependents.get_mut(s) {
                    ds.remove(dest);
                    if ds.is_empty() {
                        self.dependents.remove(s);
                    }
                }
            }
        }
    }

    /// Removes a cell and its computation. The caller is responsible for
    /// not leaving dangling sources (checked by [`Daig::check_well_formed`]).
    pub fn remove_cell(&mut self, n: &Name) {
        self.remove_comp(n);
        self.cells.remove(n);
    }

    /// Definition 4.1 well-formedness: unique names and destinations hold
    /// structurally (maps); checks (3) acyclicity, (4) well-typedness, and
    /// (5) empty cells have dependencies, plus adjacency coherence and the
    /// AI-consistency condition that non-empty cells have non-empty
    /// sources.
    pub fn check_well_formed(&self) -> Result<(), DaigError> {
        // (4) Typing: transfers take (stmt, state); others take states;
        // all destinations are state-typed.
        for (dest, comp) in &self.comps {
            if dest.is_stmt() {
                return Err(DaigError::Invariant(format!(
                    "statement cell {dest} is a computation destination"
                )));
            }
            if !self.cells.contains_key(dest) {
                return Err(DaigError::Invariant(format!(
                    "comp dest {dest} has no cell"
                )));
            }
            for (i, s) in comp.srcs.iter().enumerate() {
                if !self.cells.contains_key(s) {
                    return Err(DaigError::Invariant(format!(
                        "comp for {dest} reads missing cell {s}"
                    )));
                }
                let should_be_stmt = comp.func == Func::Transfer && i == 0;
                if s.is_stmt() != should_be_stmt {
                    return Err(DaigError::Invariant(format!(
                        "comp for {dest} arg {i} has wrong type ({s})"
                    )));
                }
            }
            match comp.func {
                Func::Transfer if comp.srcs.len() != 2 => {
                    return Err(DaigError::Invariant(format!("transfer arity at {dest}")));
                }
                Func::Widen | Func::Fix if comp.srcs.len() != 2 => {
                    return Err(DaigError::Invariant(format!("binary arity at {dest}")));
                }
                Func::Join if comp.srcs.len() < 2 => {
                    return Err(DaigError::Invariant(format!("join arity at {dest}")));
                }
                _ => {}
            }
        }
        // (5) Empty references have dependencies; statement cells must be
        // full; AI-consistency: non-empty cells have non-empty sources.
        for (n, v) in &self.cells {
            match v {
                None => {
                    if !self.comps.contains_key(n) {
                        return Err(DaigError::Invariant(format!(
                            "empty cell {n} has no computation"
                        )));
                    }
                    if n.is_stmt() {
                        return Err(DaigError::Invariant(format!("statement cell {n} empty")));
                    }
                }
                Some(_) => {
                    if let Some(c) = self.comps.get(n) {
                        for s in &c.srcs {
                            if self.value(s).is_none() {
                                return Err(DaigError::Invariant(format!(
                                    "non-empty {n} depends on empty {s}"
                                )));
                            }
                        }
                    }
                }
            }
        }
        // Adjacency coherence.
        for (src, dests) in &self.dependents {
            for d in dests {
                let Some(c) = self.comps.get(d) else {
                    return Err(DaigError::Invariant(format!(
                        "dependents lists {d} for {src} without comp"
                    )));
                };
                if !c.srcs.contains(src) {
                    return Err(DaigError::Invariant(format!(
                        "dependents lists {d} for {src} but comp does not read it"
                    )));
                }
            }
        }
        // (3) Acyclicity via iterative DFS over comps (src → dest edges).
        let mut state: HashMap<&Name, u8> = HashMap::new(); // 1 = in progress, 2 = done
        for start in self.comps.keys() {
            if state.get(start).copied().unwrap_or(0) == 2 {
                continue;
            }
            let mut stack: Vec<(&Name, usize)> = vec![(start, 0)];
            state.insert(start, 1);
            while let Some(&(n, i)) = stack.last() {
                // Children of n: the sources of its computation (walking
                // backwards keeps the traversal within comps).
                let srcs = self.comps.get(n).map(|c| c.srcs.as_slice()).unwrap_or(&[]);
                if i < srcs.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let child = &srcs[i];
                    match state.get(child).copied().unwrap_or(0) {
                        0 => {
                            state.insert(child, 1);
                            stack.push((child, 0));
                        }
                        1 => {
                            return Err(DaigError::Invariant(format!(
                                "dependency cycle through {child}"
                            )));
                        }
                        _ => {}
                    }
                } else {
                    state.insert(n, 2);
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::{IterCtx, Name};
    use dai_domains::IntervalDomain;
    use dai_lang::{EdgeId, Loc};

    type D = IntervalDomain;

    fn state(l: u32) -> Name {
        Name::State {
            loc: Loc(l),
            ctx: IterCtx::root(),
        }
    }

    fn simple_daig() -> Daig<D> {
        let mut d: Daig<D> = Daig::new();
        d.add_cell(state(0), Some(Value::State(IntervalDomain::top())));
        d.add_cell(Name::Stmt(EdgeId(0)), Some(Value::Stmt(Stmt::Skip)));
        d.add_cell(state(1), None);
        d.add_comp(
            state(1),
            Func::Transfer,
            vec![Name::Stmt(EdgeId(0)), state(0)],
        );
        d
    }

    #[test]
    fn well_formed_simple_chain() {
        simple_daig().check_well_formed().unwrap();
    }

    #[test]
    fn empty_cell_without_comp_rejected() {
        let mut d = simple_daig();
        d.add_cell(state(9), None);
        assert!(d.check_well_formed().is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut d = simple_daig();
        d.add_cell(state(2), None);
        d.add_comp(state(2), Func::Widen, vec![state(1), state(2)]);
        let err = d.check_well_formed().unwrap_err();
        assert!(matches!(err, DaigError::Invariant(m) if m.contains("cycle")));
    }

    #[test]
    fn nonempty_cell_with_empty_source_rejected() {
        let mut d = simple_daig();
        d.write(&state(1), Value::State(IntervalDomain::top()));
        d.clear(&state(0));
        assert!(d.check_well_formed().is_err());
    }

    #[test]
    fn transfer_type_checked() {
        let mut d = simple_daig();
        // Wrong: transfer with a state in statement position.
        d.add_cell(state(3), None);
        d.add_comp(state(3), Func::Transfer, vec![state(0), state(1)]);
        assert!(d.check_well_formed().is_err());
    }

    #[test]
    fn dependents_maintained_on_add_remove() {
        let mut d = simple_daig();
        assert_eq!(d.dependents(&state(0)).count(), 1);
        d.remove_comp(&state(1));
        assert_eq!(d.dependents(&state(0)).count(), 0);
    }

    #[test]
    fn ready_frontier_tracks_fill_state() {
        let mut d = simple_daig();
        // state(1) is empty with filled inputs: exactly the frontier.
        let frontier: Vec<Name> = d.ready_frontier().cloned().collect();
        assert_eq!(frontier, vec![state(1)]);
        // Chain another empty cell behind it: not ready until state(1)
        // fills.
        d.add_cell(state(2), None);
        d.add_comp(state(2), Func::Widen, vec![state(0), state(1)]);
        let frontier: Vec<Name> = d.ready_frontier().cloned().collect();
        assert_eq!(frontier, vec![state(1)]);
        d.write(&state(1), Value::State(IntervalDomain::top()));
        let frontier: Vec<Name> = d.ready_frontier().cloned().collect();
        assert_eq!(frontier, vec![state(2)]);
        d.write(&state(2), Value::State(IntervalDomain::top()));
        assert_eq!(d.ready_frontier().count(), 0);
    }

    #[test]
    fn clear_and_write_roundtrip() {
        let mut d = simple_daig();
        let v = d.clear(&state(0)).unwrap();
        assert!(d.value(&state(0)).is_none());
        d.write(&state(0), v);
        assert!(d.value(&state(0)).is_some());
    }
}
