//! The DAIG data structure: reference cells and computation hyperedges
//! (paper §4), with the Definition 4.1 well-formedness checks.
//!
//! # Representation: interned ids over symbolic names
//!
//! Externally, cells are addressed by [`Name`] — symbolic, self-describing,
//! stable across program edits. Internally, every name is interned to a
//! dense [`CellId`] by a [`NameInterner`] the first time the graph sees it,
//! and **all** graph state is `CellId`-indexed:
//!
//! * cells live in a struct-of-arrays arena: liveness, values, cached
//!   content digests, producing computations, and reverse adjacency are
//!   parallel `CellId`-indexed vectors, read by `u32` index, never by
//!   hashing a name. Splitting the columns keeps the hot scans dense —
//!   a digest probe or liveness sweep touches a contiguous `Vec<u128>` /
//!   `Vec<bool>` instead of striding over full slots (whose `Value<D>`
//!   payload can be large for domains like octagons);
//! * computation sources ([`CompSlot::srcs`]) and reverse adjacency
//!   (`Slot::deps`, the flat list of destinations reading a cell) are
//!   `CellId` lists, so the scheduler's cone bookkeeping and the edit
//!   layer's dirtying wave are integer traversals.
//!
//! ## Name ↔ CellId lifecycle
//!
//! Interning is append-only: a `CellId` denotes the same `Name` forever.
//! Removing a cell (loop rollback, superseded pre-join) only clears its
//! slot's *live* flag; re-creating the name later (a re-unroll) resurrects
//! the same id. Id-keyed state held outside the graph therefore never
//! dangles — it can only refer to a dead slot, which readers observe via
//! [`Daig::contains_id`]. Ids are graph-local: never mix ids from two
//! DAIGs.
//!
//! ## Structural epochs and deltas
//!
//! Every mutation of graph *structure* (cell added/removed, computation
//! installed/removed — not value writes) bumps [`Daig::struct_epoch`].
//! External caches keyed by ids (CSR snapshots, demanded-cone counts) are
//! valid for exactly one epoch; [`Daig::begin_delta`]/[`Daig::take_delta`]
//! additionally record *which* cells changed structurally, which is how
//! [`crate::build::unroll_loop`] reports the spliced subgraph so
//! `dai-engine`'s scheduler can patch its cone state instead of
//! re-traversing (see `dai_engine::scheduler`).
//!
//! ## Value digests
//!
//! Each filled slot caches a 128-bit content digest of its value, computed
//! once at write time. Memo keys (`f·(v₁⋯v_k)`, see [`dai_memo`]) are
//! built from these cached digests, so evaluating a computation never
//! re-hashes a (potentially large) abstract state that the graph already
//! hashed when it was produced.

use crate::intern::{CellId, NameInterner};
use crate::name::Name;
use crate::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_lang::Stmt;
use dai_memo::content_digest;
use std::fmt;
use std::hash::Hash;

/// A value stored in a reference cell: program syntax or an abstract state
/// (paper Fig. 6's `v ::= s | φ`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value<D> {
    /// A statement.
    Stmt(Stmt),
    /// An abstract state.
    State(D),
}

impl<D: AbstractDomain> Value<D> {
    /// The abstract state, if this value is one.
    pub fn as_state(&self) -> Option<&D> {
        match self {
            Value::State(d) => Some(d),
            Value::Stmt(_) => None,
        }
    }

    /// The statement, if this value is one.
    pub fn as_stmt(&self) -> Option<&Stmt> {
        match self {
            Value::Stmt(s) => Some(s),
            Value::State(_) => None,
        }
    }
}

impl<D: fmt::Display> fmt::Display for Value<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Stmt(s) => write!(f, "{s}"),
            Value::State(d) => write!(f, "{d}"),
        }
    }
}

/// The analysis functions labelling DAIG edges (paper Fig. 6's
/// `f ::= ⟦·⟧♯ | ⊔ | ∇ | fix`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Abstract transfer `⟦·⟧♯(stmt, pre-state)`.
    Transfer,
    /// Join `⊔(pre-join states...)`.
    Join,
    /// Widening `∇(previous iterate, pre-widen state)`.
    Widen,
    /// The distinguished fixed-point marker (paper §5.2): not a function
    /// but a demand for convergence of its two iterate sources.
    Fix,
}

impl Func {
    /// The symbol used in memo keys. `Fix` is never memoized (paper's
    /// `Q-Miss` requires `f ≠ fix`).
    pub fn memo_symbol(self) -> &'static str {
        match self {
            Func::Transfer => "transfer",
            Func::Join => "join",
            Func::Widen => "widen",
            Func::Fix => "fix",
        }
    }
}

/// A computation hyperedge `n ← f(n₁, …, n_k)`, materialized with symbolic
/// names (the id-indexed form is [`Daig::comp_srcs`]/[`Daig::comp_func`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comp {
    /// The labelling function.
    pub func: Func,
    /// Source cell names, in argument order.
    pub srcs: Vec<Name>,
}

/// The id-indexed form of a computation: function plus source ids in
/// argument order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompSlot {
    /// The labelling function.
    pub func: Func,
    /// Source cell ids, in argument order.
    pub srcs: Vec<CellId>,
}

/// Errors reported by DAIG operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaigError {
    /// A queried name does not exist in the DAIG's namespace.
    NoSuchCell(String),
    /// An internal invariant was violated (a bug; reported rather than
    /// panicking so harnesses can surface it).
    Invariant(String),
}

impl fmt::Display for DaigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaigError::NoSuchCell(n) => write!(f, "no such cell `{n}`"),
            DaigError::Invariant(m) => write!(f, "DAIG invariant violated: {m}"),
        }
    }
}

impl std::error::Error for DaigError {}

/// A demanded abstract interpretation graph: named reference cells plus
/// computation hyperedges keyed by destination (well-formedness (2):
/// destinations are unique). See the module docs for the id-based
/// representation.
///
/// The arena is struct-of-arrays: five parallel vectors indexed by
/// [`CellId`], each holding one column of what was conceptually a per-cell
/// slot. Invariant: all five always have length [`Daig::arena_len`].
#[derive(Debug, Clone)]
pub struct Daig<D: AbstractDomain> {
    interner: NameInterner,
    /// Is the cell currently part of the graph's namespace? Dead slots
    /// keep their id reserved for resurrection (see module docs).
    live: Vec<bool>,
    /// Per-cell values, if filled.
    values: Vec<Option<Value<D>>>,
    /// Content digest of `values[i]`, valid iff `values[i].is_some()`.
    digests: Vec<u128>,
    /// The computation producing each cell, if any.
    producers: Vec<Option<CompSlot>>,
    /// Reverse adjacency: destinations whose computations read this cell
    /// (one entry per *distinct* source occurrence).
    deps: Vec<Vec<CellId>>,
    /// Live cells (ids with `live[i]`).
    live_cells: usize,
    /// Installed computations.
    comps: usize,
    /// Bumped on every structural mutation.
    epoch: u64,
    /// When recording, ids of cells whose structure changed.
    delta: Option<Vec<CellId>>,
    /// The loop-head iteration strategy this DAIG's `∇` and `fix` edges
    /// realize. Carried by the graph so query evaluation and the
    /// Definition 4.3 consistency checker always agree on the abstract
    /// interpretation being encoded (see [`crate::strategy`]).
    strategy: FixStrategy,
}

impl<D: AbstractDomain> Default for Daig<D> {
    fn default() -> Self {
        Daig::new()
    }
}

impl<D: AbstractDomain> Daig<D> {
    /// An empty DAIG with the paper's default strategy.
    pub fn new() -> Daig<D> {
        Daig {
            interner: NameInterner::new(),
            live: Vec::new(),
            values: Vec::new(),
            digests: Vec::new(),
            producers: Vec::new(),
            deps: Vec::new(),
            live_cells: 0,
            comps: 0,
            epoch: 0,
            delta: None,
            strategy: FixStrategy::PAPER,
        }
    }

    /// The loop-head iteration strategy in effect.
    pub fn strategy(&self) -> FixStrategy {
        self.strategy
    }

    /// Replaces the iteration strategy.
    ///
    /// Changing the strategy of a DAIG that already holds loop-head results
    /// would make those results inconsistent with the new semantics, so
    /// this should only be called on freshly built (or fully dirtied)
    /// graphs; [`crate::analysis::FuncAnalysis::with_strategy`] does so.
    pub fn set_strategy(&mut self, strategy: FixStrategy) {
        self.strategy = strategy;
    }

    // ------------------------------------------------------------------
    // Id resolution.
    // ------------------------------------------------------------------

    /// The id of `n`, if `n` currently names a cell.
    #[inline]
    pub fn id_of(&self, n: &Name) -> Option<CellId> {
        self.interner.get(n).filter(|id| self.live[id.idx()])
    }

    /// The name behind `id` (alive or dead).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this graph.
    #[inline]
    pub fn name_of(&self, id: CellId) -> &Name {
        self.interner.name(id)
    }

    /// Number of ids ever assigned — the length dense id-indexed side
    /// tables must have. Grows monotonically (unrolls intern new iterate
    /// names); never shrinks on removal.
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.live.len()
    }

    /// The structural epoch: bumped whenever a cell or computation is
    /// added or removed. Id-keyed caches built against one epoch must be
    /// refreshed (or patched via [`Daig::take_delta`]) when it changes.
    #[inline]
    pub fn struct_epoch(&self) -> u64 {
        self.epoch
    }

    fn intern_slot_owned(&mut self, n: Name) -> CellId {
        let id = self.interner.intern_owned(n);
        if id.idx() >= self.live.len() {
            let len = id.idx() + 1;
            self.live.resize(len, false);
            self.values.resize_with(len, || None);
            self.digests.resize(len, 0);
            self.producers.resize_with(len, || None);
            self.deps.resize_with(len, Vec::new);
        }
        id
    }

    fn record(&mut self, id: CellId) {
        if let Some(d) = &mut self.delta {
            d.push(id);
        }
    }

    /// Starts recording structural changes (cells added/removed,
    /// computations installed/removed). Nested recording is not supported:
    /// a second call resets the log.
    pub fn begin_delta(&mut self) {
        self.delta = Some(Vec::new());
    }

    /// Stops recording and returns the ids of structurally changed cells,
    /// deduplicated (ascending id order). The work is O(|delta| log
    /// |delta|) — deliberately independent of the arena size, so per-unroll
    /// delta collection cannot re-introduce an O(arena × unrolls) term.
    pub fn take_delta(&mut self) -> Vec<CellId> {
        let mut d = self.delta.take().unwrap_or_default();
        d.sort_unstable();
        d.dedup();
        d
    }

    // ------------------------------------------------------------------
    // Counts.
    // ------------------------------------------------------------------

    /// Number of reference cells.
    pub fn cell_count(&self) -> usize {
        self.live_cells
    }

    /// Number of computation edges.
    pub fn comp_count(&self) -> usize {
        self.comps
    }

    /// Number of non-empty cells.
    pub fn filled_count(&self) -> usize {
        self.live
            .iter()
            .zip(&self.values)
            .filter(|(&live, v)| live && v.is_some())
            .count()
    }

    // ------------------------------------------------------------------
    // Id-indexed accessors (the hot path).
    // ------------------------------------------------------------------

    /// Is the slot behind `id` a live cell?
    #[inline]
    pub fn contains_id(&self, id: CellId) -> bool {
        self.live[id.idx()]
    }

    /// The value of cell `id`, if live and filled.
    #[inline]
    pub fn value_id(&self, id: CellId) -> Option<&Value<D>> {
        if self.live[id.idx()] {
            self.values[id.idx()].as_ref()
        } else {
            None
        }
    }

    /// The cached content digest of cell `id`'s value (`None` when empty).
    #[inline]
    pub fn digest_id(&self, id: CellId) -> Option<u128> {
        if self.live[id.idx()] && self.values[id.idx()].is_some() {
            Some(self.digests[id.idx()])
        } else {
            None
        }
    }

    /// The function of the computation producing `id`, if any.
    #[inline]
    pub fn comp_func(&self, id: CellId) -> Option<Func> {
        self.producers[id.idx()].as_ref().map(|c| c.func)
    }

    /// The source ids of the computation producing `id` (argument order).
    #[inline]
    pub fn comp_srcs(&self, id: CellId) -> Option<&[CellId]> {
        self.producers[id.idx()].as_ref().map(|c| c.srcs.as_slice())
    }

    /// The id-indexed computation producing `id`, if any.
    #[inline]
    pub fn comp_slot(&self, id: CellId) -> Option<&CompSlot> {
        self.producers[id.idx()].as_ref()
    }

    /// The destinations reading cell `id` (flat id adjacency; unordered).
    #[inline]
    pub fn dependents_ids(&self, id: CellId) -> &[CellId] {
        &self.deps[id.idx()]
    }

    /// Writes a value into the live cell `id`, caching its content digest.
    pub fn write_id(&mut self, id: CellId, v: Value<D>) {
        if self.live[id.idx()] {
            self.digests[id.idx()] = content_digest(&v);
            self.values[id.idx()] = Some(v);
        }
    }

    /// Empties cell `id`, returning its previous value.
    pub fn clear_id(&mut self, id: CellId) -> Option<Value<D>> {
        if self.live[id.idx()] {
            self.values[id.idx()].take()
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Name-level API (resolution layer over the arena).
    // ------------------------------------------------------------------

    /// Does the namespace contain `n`?
    pub fn contains(&self, n: &Name) -> bool {
        self.id_of(n).is_some()
    }

    /// The value of cell `n`, if the cell exists and is non-empty.
    pub fn value(&self, n: &Name) -> Option<&Value<D>> {
        self.id_of(n).and_then(|id| self.values[id.idx()].as_ref())
    }

    /// The computation producing `n`, if any, with sources materialized as
    /// names. Hot paths should prefer [`Daig::comp_srcs`]/
    /// [`Daig::comp_func`], which do not clone names.
    pub fn comp(&self, n: &Name) -> Option<Comp> {
        let id = self.id_of(n)?;
        let c = self.producers[id.idx()].as_ref()?;
        Some(Comp {
            func: c.func,
            srcs: c
                .srcs
                .iter()
                .map(|&s| self.interner.name(s).clone())
                .collect(),
        })
    }

    /// The destinations that read `n`.
    pub fn dependents(&self, n: &Name) -> impl Iterator<Item = &Name> {
        let ids: &[CellId] = match self.id_of(n) {
            Some(id) => &self.deps[id.idx()],
            None => &[],
        };
        ids.iter().map(move |&d| self.interner.name(d))
    }

    /// All cell names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, &live)| live)
            .map(|(i, _)| self.interner.name(CellId(i as u32)))
    }

    /// All live cell ids.
    pub fn ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, &live)| live)
            .map(|(i, _)| CellId(i as u32))
    }

    /// The *ready frontier*: empty cells whose computation has every input
    /// filled — the cells a topological scheduler may evaluate right now.
    /// Because the DAIG is acyclic, distinct frontier cells never read
    /// each other, so they can be computed **in any order or in
    /// parallel** with identical results. Non-consuming: the iterator
    /// borrows the graph and the caller decides what to evaluate.
    ///
    /// This is the whole-graph frontier, the reference model for
    /// schedulers (and what exhaustive evaluate-everything consumers
    /// drain). `dai-engine`'s scheduler computes the same notion
    /// restricted to a query's demanded cone, maintained incrementally
    /// via missing-input counts rather than by re-scanning — see
    /// `dai_engine::scheduler::evaluate_targets`.
    ///
    /// `fix` destinations appear in the frontier once both their iterate
    /// inputs are filled; callers must route those through
    /// [`crate::query::fix_step`] (they mutate the graph) rather than
    /// [`crate::query::apply_ready`].
    pub fn ready_frontier(&self) -> impl Iterator<Item = &Name> {
        self.live
            .iter()
            .enumerate()
            .filter(move |&(i, &live)| {
                live && self.values[i].is_none()
                    && self.producers[i]
                        .as_ref()
                        .is_some_and(|c| c.srcs.iter().all(|&src| self.value_id(src).is_some()))
            })
            .map(|(i, _)| self.interner.name(CellId(i as u32)))
    }

    /// Adds (or resets) a cell with an initial value. Re-adding a removed
    /// name resurrects its original id.
    pub fn add_cell(&mut self, n: Name, v: Option<Value<D>>) {
        let _ = self.add_cell_id(n, v);
    }

    /// [`Daig::add_cell`], returning the cell's id for id-level wiring.
    pub fn add_cell_id(&mut self, n: Name, v: Option<Value<D>>) -> CellId {
        let id = self.intern_slot_owned(n);
        if !self.live[id.idx()] {
            self.live[id.idx()] = true;
            self.live_cells += 1;
        }
        match v {
            Some(v) => {
                self.digests[id.idx()] = content_digest(&v);
                self.values[id.idx()] = Some(v);
            }
            None => self.values[id.idx()] = None,
        }
        self.epoch += 1;
        self.record(id);
        id
    }

    /// Writes a value into an existing cell (the low-level mutation
    /// `D[n ↦ v]` of the paper — no invalidation; see `edit` for the
    /// dirtying judgment).
    pub fn write(&mut self, n: &Name, v: Value<D>) {
        if let Some(id) = self.id_of(n) {
            self.write_id(id, v);
        }
    }

    /// Empties a cell, returning its previous value.
    pub fn clear(&mut self, n: &Name) -> Option<Value<D>> {
        self.id_of(n).and_then(|id| self.clear_id(id))
    }

    /// Installs a computation `dest ← f(srcs)`, replacing any previous
    /// computation for `dest` and maintaining reverse adjacency.
    pub fn add_comp(&mut self, dest: Name, func: Func, srcs: Vec<Name>) {
        let dest_id = self.intern_slot_owned(dest);
        let src_ids: Vec<CellId> = srcs
            .into_iter()
            .map(|s| self.intern_slot_owned(s))
            .collect();
        self.add_comp_ids(dest_id, func, src_ids);
    }

    /// Id-level [`Daig::add_comp`].
    pub fn add_comp_ids(&mut self, dest: CellId, func: Func, srcs: Vec<CellId>) {
        self.remove_comp_id(dest);
        // One reverse-adjacency entry per *distinct* source, so a
        // dependent is counted (and later decremented) once even if the
        // computation reads the same cell in several argument positions.
        for (i, &s) in srcs.iter().enumerate() {
            if srcs[..i].contains(&s) {
                continue;
            }
            self.deps[s.idx()].push(dest);
        }
        self.producers[dest.idx()] = Some(CompSlot { func, srcs });
        self.comps += 1;
        self.epoch += 1;
        self.record(dest);
    }

    /// Removes the computation for `dest`, if any.
    pub fn remove_comp(&mut self, dest: &Name) {
        if let Some(id) = self.interner.get(dest) {
            self.remove_comp_id(id);
        }
    }

    /// Id-level [`Daig::remove_comp`].
    pub fn remove_comp_id(&mut self, dest: CellId) {
        if let Some(old) = self.producers[dest.idx()].take() {
            for (i, &s) in old.srcs.iter().enumerate() {
                if old.srcs[..i].contains(&s) {
                    continue;
                }
                let deps = &mut self.deps[s.idx()];
                if let Some(pos) = deps.iter().position(|&d| d == dest) {
                    deps.swap_remove(pos);
                }
            }
            self.comps -= 1;
            self.epoch += 1;
            self.record(dest);
        }
    }

    /// Removes a cell and its computation. The caller is responsible for
    /// not leaving dangling sources (checked by [`Daig::check_well_formed`]).
    pub fn remove_cell(&mut self, n: &Name) {
        if let Some(id) = self.interner.get(n) {
            self.remove_cell_id(id);
        }
    }

    /// Id-level [`Daig::remove_cell`]. The id stays reserved for the name
    /// and is resurrected by a later [`Daig::add_cell`].
    pub fn remove_cell_id(&mut self, id: CellId) {
        self.remove_comp_id(id);
        if self.live[id.idx()] {
            self.live[id.idx()] = false;
            self.values[id.idx()] = None;
            self.live_cells -= 1;
            self.epoch += 1;
            self.record(id);
        }
    }

    /// Definition 4.1 well-formedness: unique names and destinations hold
    /// structurally (interner + slot arena); checks (3) acyclicity, (4)
    /// well-typedness, and (5) empty cells have dependencies, plus
    /// adjacency coherence and the AI-consistency condition that non-empty
    /// cells have non-empty sources.
    pub fn check_well_formed(&self) -> Result<(), DaigError> {
        let name = |id: CellId| self.interner.name(id);
        // (2)/(1) namespace: a computation's destination must be a live
        // cell (a comp parked on a dead slot is a builder bug — cells are
        // always installed before their computations).
        for (i, &live) in self.live.iter().enumerate() {
            if !live && self.producers[i].is_some() {
                return Err(DaigError::Invariant(format!(
                    "comp dest {} has no cell",
                    name(CellId(i as u32))
                )));
            }
        }
        // (4) Typing: transfers take (stmt, state); others take states;
        // all destinations are state-typed.
        for dest in self.ids() {
            let Some(comp) = self.comp_slot(dest) else {
                continue;
            };
            let dn = name(dest);
            if dn.is_stmt() {
                return Err(DaigError::Invariant(format!(
                    "statement cell {dn} is a computation destination"
                )));
            }
            for (i, &s) in comp.srcs.iter().enumerate() {
                if !self.contains_id(s) {
                    return Err(DaigError::Invariant(format!(
                        "comp for {dn} reads missing cell {}",
                        name(s)
                    )));
                }
                let should_be_stmt = comp.func == Func::Transfer && i == 0;
                if name(s).is_stmt() != should_be_stmt {
                    return Err(DaigError::Invariant(format!(
                        "comp for {dn} arg {i} has wrong type ({})",
                        name(s)
                    )));
                }
            }
            match comp.func {
                Func::Transfer if comp.srcs.len() != 2 => {
                    return Err(DaigError::Invariant(format!("transfer arity at {dn}")));
                }
                Func::Widen | Func::Fix if comp.srcs.len() != 2 => {
                    return Err(DaigError::Invariant(format!("binary arity at {dn}")));
                }
                Func::Join if comp.srcs.len() < 2 => {
                    return Err(DaigError::Invariant(format!("join arity at {dn}")));
                }
                _ => {}
            }
        }
        // (5) Empty references have dependencies; statement cells must be
        // full; AI-consistency: non-empty cells have non-empty sources.
        for id in self.ids() {
            let n = name(id);
            match &self.values[id.idx()] {
                None => {
                    if self.producers[id.idx()].is_none() {
                        return Err(DaigError::Invariant(format!(
                            "empty cell {n} has no computation"
                        )));
                    }
                    if n.is_stmt() {
                        return Err(DaigError::Invariant(format!("statement cell {n} empty")));
                    }
                }
                Some(_) => {
                    if let Some(c) = &self.producers[id.idx()] {
                        for &src in &c.srcs {
                            if self.value_id(src).is_none() {
                                return Err(DaigError::Invariant(format!(
                                    "non-empty {n} depends on empty {}",
                                    name(src)
                                )));
                            }
                        }
                    }
                }
            }
        }
        // Adjacency coherence: every reverse-adjacency entry is backed by
        // a computation that reads the source, and every computation
        // source is registered.
        for (i, cell_deps) in self.deps.iter().enumerate() {
            let src = CellId(i as u32);
            for &d in cell_deps {
                let Some(c) = self.comp_slot(d) else {
                    return Err(DaigError::Invariant(format!(
                        "dependents lists {} for {} without comp",
                        name(d),
                        name(src)
                    )));
                };
                if !c.srcs.contains(&src) {
                    return Err(DaigError::Invariant(format!(
                        "dependents lists {} for {} but comp does not read it",
                        name(d),
                        name(src)
                    )));
                }
            }
            if let Some(c) = &self.producers[i] {
                for &s in &c.srcs {
                    if !self.deps[s.idx()].contains(&CellId(i as u32)) {
                        return Err(DaigError::Invariant(format!(
                            "comp for {} reads {} without a dependents entry",
                            name(CellId(i as u32)),
                            name(s)
                        )));
                    }
                }
            }
        }
        // (3) Acyclicity via iterative DFS over comps (src → dest edges).
        const FRESH: u8 = 0;
        const OPEN: u8 = 1;
        const DONE: u8 = 2;
        let mut state = vec![FRESH; self.live.len()];
        for start in self.ids() {
            if self.comp_slot(start).is_none() || state[start.idx()] == DONE {
                continue;
            }
            let mut stack: Vec<(CellId, usize)> = vec![(start, 0)];
            state[start.idx()] = OPEN;
            while let Some(&(n, i)) = stack.last() {
                // Children of n: the sources of its computation (walking
                // backwards keeps the traversal within comps).
                let srcs = self.comp_srcs(n).unwrap_or(&[]);
                if i < srcs.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let child = srcs[i];
                    match state[child.idx()] {
                        FRESH => {
                            state[child.idx()] = OPEN;
                            stack.push((child, 0));
                        }
                        OPEN => {
                            return Err(DaigError::Invariant(format!(
                                "dependency cycle through {}",
                                name(child)
                            )));
                        }
                        _ => {}
                    }
                } else {
                    state[n.idx()] = DONE;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::{IterCtx, Name};
    use dai_domains::IntervalDomain;
    use dai_lang::{EdgeId, Loc};

    type D = IntervalDomain;

    fn state(l: u32) -> Name {
        Name::State {
            loc: Loc(l),
            ctx: IterCtx::root(),
        }
    }

    fn simple_daig() -> Daig<D> {
        let mut d: Daig<D> = Daig::new();
        d.add_cell(state(0), Some(Value::State(IntervalDomain::top())));
        d.add_cell(Name::Stmt(EdgeId(0)), Some(Value::Stmt(Stmt::Skip)));
        d.add_cell(state(1), None);
        d.add_comp(
            state(1),
            Func::Transfer,
            vec![Name::Stmt(EdgeId(0)), state(0)],
        );
        d
    }

    #[test]
    fn well_formed_simple_chain() {
        simple_daig().check_well_formed().unwrap();
    }

    #[test]
    fn empty_cell_without_comp_rejected() {
        let mut d = simple_daig();
        d.add_cell(state(9), None);
        assert!(d.check_well_formed().is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut d = simple_daig();
        d.add_cell(state(2), None);
        d.add_comp(state(2), Func::Widen, vec![state(1), state(2)]);
        let err = d.check_well_formed().unwrap_err();
        assert!(matches!(err, DaigError::Invariant(m) if m.contains("cycle")));
    }

    #[test]
    fn nonempty_cell_with_empty_source_rejected() {
        let mut d = simple_daig();
        d.write(&state(1), Value::State(IntervalDomain::top()));
        d.clear(&state(0));
        assert!(d.check_well_formed().is_err());
    }

    #[test]
    fn transfer_type_checked() {
        let mut d = simple_daig();
        // Wrong: transfer with a state in statement position.
        d.add_cell(state(3), None);
        d.add_comp(state(3), Func::Transfer, vec![state(0), state(1)]);
        assert!(d.check_well_formed().is_err());
    }

    #[test]
    fn dependents_maintained_on_add_remove() {
        let mut d = simple_daig();
        assert_eq!(d.dependents(&state(0)).count(), 1);
        d.remove_comp(&state(1));
        assert_eq!(d.dependents(&state(0)).count(), 0);
    }

    #[test]
    fn ready_frontier_tracks_fill_state() {
        let mut d = simple_daig();
        // state(1) is empty with filled inputs: exactly the frontier.
        let frontier: Vec<Name> = d.ready_frontier().cloned().collect();
        assert_eq!(frontier, vec![state(1)]);
        // Chain another empty cell behind it: not ready until state(1)
        // fills.
        d.add_cell(state(2), None);
        d.add_comp(state(2), Func::Widen, vec![state(0), state(1)]);
        let frontier: Vec<Name> = d.ready_frontier().cloned().collect();
        assert_eq!(frontier, vec![state(1)]);
        d.write(&state(1), Value::State(IntervalDomain::top()));
        let frontier: Vec<Name> = d.ready_frontier().cloned().collect();
        assert_eq!(frontier, vec![state(2)]);
        d.write(&state(2), Value::State(IntervalDomain::top()));
        assert_eq!(d.ready_frontier().count(), 0);
    }

    #[test]
    fn clear_and_write_roundtrip() {
        let mut d = simple_daig();
        let v = d.clear(&state(0)).unwrap();
        assert!(d.value(&state(0)).is_none());
        d.write(&state(0), v);
        assert!(d.value(&state(0)).is_some());
    }

    #[test]
    fn removed_cell_resurrects_with_same_id() {
        let mut d = simple_daig();
        let id = d.id_of(&state(1)).unwrap();
        d.remove_cell(&state(1));
        assert!(!d.contains(&state(1)));
        assert!(!d.contains_id(id));
        assert_eq!(d.id_of(&state(1)), None);
        d.add_cell(state(1), None);
        assert_eq!(d.id_of(&state(1)), Some(id), "id survives removal");
        assert!(d.value_id(id).is_none());
    }

    #[test]
    fn struct_epoch_tracks_structure_not_values() {
        let mut d = simple_daig();
        let e0 = d.struct_epoch();
        d.write(&state(1), Value::State(IntervalDomain::top()));
        assert_eq!(d.struct_epoch(), e0, "value writes are not structural");
        d.clear(&state(1));
        assert_eq!(d.struct_epoch(), e0);
        d.add_cell(state(7), Some(Value::State(IntervalDomain::top())));
        assert!(d.struct_epoch() > e0);
        let e1 = d.struct_epoch();
        d.remove_cell(&state(7));
        assert!(d.struct_epoch() > e1);
    }

    #[test]
    fn delta_records_structural_changes_deduplicated() {
        let mut d = simple_daig();
        d.begin_delta();
        d.add_cell(state(5), None);
        d.add_cell(state(6), None);
        d.add_comp(state(5), Func::Widen, vec![state(0), state(6)]);
        d.add_comp(state(6), Func::Widen, vec![state(0), state(1)]);
        // Re-pointing state(5)'s comp must not duplicate its delta entry.
        d.add_comp(state(5), Func::Widen, vec![state(1), state(6)]);
        let delta = d.take_delta();
        let id5 = d.id_of(&state(5)).unwrap();
        let id6 = d.id_of(&state(6)).unwrap();
        assert!(delta.contains(&id5));
        assert!(delta.contains(&id6));
        let occurrences = delta.iter().filter(|&&i| i == id5).count();
        assert_eq!(occurrences, 1, "delta is deduplicated");
        // Writes outside a recording window are not tracked.
        d.write(&state(5), Value::State(IntervalDomain::top()));
        assert!(d.take_delta().is_empty());
    }

    #[test]
    fn digests_cached_per_write() {
        let d = simple_daig();
        let id = d.id_of(&state(0)).unwrap();
        let dig = d.digest_id(id).unwrap();
        assert_eq!(
            dig,
            content_digest(&Value::<D>::State(IntervalDomain::top())),
            "digest matches the stored value's content hash"
        );
        let empty = d.id_of(&state(1)).unwrap();
        assert_eq!(d.digest_id(empty), None);
    }

    #[test]
    fn duplicate_sources_register_one_dependent_entry() {
        let mut d = simple_daig();
        d.add_cell(state(4), None);
        d.add_comp(state(4), Func::Widen, vec![state(0), state(0)]);
        let id0 = d.id_of(&state(0)).unwrap();
        let entries = d
            .dependents_ids(id0)
            .iter()
            .filter(|&&x| Some(x) == d.id_of(&state(4)))
            .count();
        assert_eq!(entries, 1);
        d.remove_comp(&state(4));
        assert!(d
            .dependents_ids(id0)
            .iter()
            .all(|&x| Some(x) != d.id_of(&state(4))));
    }
}
