//! Graphviz (DOT) export of DAIGs — renders the diagrams of the paper's
//! Figs. 3 and 4: reference cells as nodes, computation hyperedges as
//! labelled fan-ins.
//!
//! Cells containing program syntax are drawn as rounded boxes (like the
//! statement boxes of Fig. 3), abstract-state cells as plain boxes (filled
//! grey when they currently hold a value, white when empty/dirty), and
//! each computation as a small circle labelled with its function symbol
//! (`⟦·⟧♯`, `⊔`, `∇`, `fix`) whose in-edges are numbered in argument
//! order.
//!
//! The output is deterministic (names are emitted in sorted order), so it
//! is usable in golden tests and diffs, and it round-trips the dynamic
//! story: exporting before and after a query shows cells filling in, and
//! after an edit shows the dirtied cone (cells reverting to white) and fix
//! edges rolling back — Fig. 4's three panels as three successive exports.
//!
//! ```
//! use dai_core::analysis::FuncAnalysis;
//! use dai_core::dot::{to_dot, DotOptions};
//! use dai_domains::IntervalDomain;
//!
//! let program = dai_lang::parse_program(
//!     "function f() { var x = 1; return x; }",
//! )?;
//! let cfg = dai_lang::cfg::lower_program(&program)?.cfgs()[0].clone();
//! let analysis = FuncAnalysis::new(cfg, IntervalDomain::top());
//! let dot = to_dot(analysis.daig(), &DotOptions::default());
//! assert!(dot.starts_with("digraph daig {"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::graph::{Daig, Func, Value};
use crate::name::Name;
use dai_domains::AbstractDomain;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Include the cell's current value in its label (truncated to
    /// [`DotOptions::max_value_chars`]).
    pub show_values: bool,
    /// Truncation limit for rendered values.
    pub max_value_chars: usize,
    /// Graph title (rendered as a label).
    pub title: Option<String>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            show_values: true,
            max_value_chars: 48,
            title: None,
        }
    }
}

/// Escapes a string for use inside a DOT double-quoted label.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Truncates `s` to at most `limit` characters, appending `…` when cut.
fn truncate(s: &str, limit: usize) -> String {
    if s.chars().count() <= limit {
        return s.to_string();
    }
    let mut out: String = s.chars().take(limit.saturating_sub(1)).collect();
    out.push('…');
    out
}

/// The display glyph for a computation's function symbol.
fn func_glyph(f: Func) -> &'static str {
    match f {
        Func::Transfer => "⟦·⟧♯",
        Func::Join => "⊔",
        Func::Widen => "∇",
        Func::Fix => "fix",
    }
}

/// Renders `daig` as a Graphviz digraph.
///
/// Node identities are `c0, c1, …` for cells (in sorted-name order) and
/// `f0, f1, …` for computations (in sorted-destination order), so output
/// is stable for a given graph.
pub fn to_dot<D: AbstractDomain>(daig: &Daig<D>, opts: &DotOptions) -> String {
    let mut names: Vec<&Name> = daig.names().collect();
    names.sort();
    let ids: HashMap<&Name, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();

    let mut out = String::from("digraph daig {\n");
    out.push_str("  rankdir=TB;\n  node [fontname=\"monospace\"];\n");
    if let Some(title) = &opts.title {
        let _ = writeln!(out, "  label=\"{}\";\n  labelloc=t;", escape(title));
    }

    for n in &names {
        let id = ids[*n];
        let mut label = n.to_string();
        let (shape, fill) = match daig.value(n) {
            Some(Value::Stmt(s)) => {
                if opts.show_values {
                    let _ = write!(
                        label,
                        "\n{}",
                        truncate(&s.to_string(), opts.max_value_chars)
                    );
                }
                ("box", "style=\"rounded,filled\" fillcolor=\"#fff7e0\"")
            }
            Some(Value::State(d)) => {
                if opts.show_values {
                    let _ = write!(
                        label,
                        "\n{}",
                        truncate(&d.to_string(), opts.max_value_chars)
                    );
                }
                ("box", "style=filled fillcolor=\"#e0e8f0\"")
            }
            None => ("box", "style=solid"),
        };
        let _ = writeln!(
            out,
            "  c{id} [shape={shape} {fill} label=\"{}\"];",
            escape(&label)
        );
    }

    // Computations: a point node per hyperedge, sorted by destination.
    let mut dests: Vec<&Name> = names
        .iter()
        .copied()
        .filter(|n| daig.comp(n).is_some())
        .collect();
    dests.sort();
    for (fi, dest) in dests.iter().enumerate() {
        let comp = daig.comp(dest).expect("filtered");
        let _ = writeln!(
            out,
            "  f{fi} [shape=circle width=0.3 fixedsize=true label=\"{}\"];",
            escape(func_glyph(comp.func))
        );
        for (argi, src) in comp.srcs.iter().enumerate() {
            let sid = ids
                .get(src)
                .copied()
                .expect("well-formed DAIGs have no dangling sources");
            if comp.srcs.len() > 1 {
                let _ = writeln!(out, "  c{sid} -> f{fi} [label=\"{argi}\"];");
            } else {
                let _ = writeln!(out, "  c{sid} -> f{fi};");
            }
        }
        let _ = writeln!(out, "  f{fi} -> c{};", ids[*dest]);
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FuncAnalysis;
    use crate::query::{IntraResolver, QueryStats};
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;
    use dai_memo::MemoTable;

    fn analysis(src: &str) -> FuncAnalysis<IntervalDomain> {
        let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
        FuncAnalysis::new(cfg, IntervalDomain::top())
    }

    #[test]
    fn dot_is_syntactically_plausible() {
        let fa = analysis("function f() { var x = 1; return x; }");
        let dot = to_dot(fa.daig(), &DotOptions::default());
        assert!(dot.starts_with("digraph daig {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every cell and one transfer glyph appear.
        assert_eq!(dot.matches("shape=box").count(), fa.daig().cell_count());
        assert!(dot.contains("⟦·⟧♯"));
    }

    #[test]
    fn dot_is_deterministic() {
        let fa = analysis("function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
        let a = to_dot(fa.daig(), &DotOptions::default());
        let b = to_dot(fa.daig(), &DotOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn dot_is_deterministic_across_independent_constructions() {
        // Exports must be byte-identical for *independently built* (and
        // independently evaluated) DAIGs of the same program — cells and
        // computations are emitted in sorted-`Name` order, never in
        // hash-map order. This is what makes snapshots usable as golden
        // values in tests and as engine `Snapshot` responses.
        let src = "function f(n) { var i = 0; var s = 0; \
                   while (i < n) { s = s + i; i = i + 1; } return s; }";
        let export = || {
            let mut fa = analysis(src);
            let mut memo = MemoTable::new();
            let mut stats = QueryStats::default();
            fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                .unwrap();
            to_dot(fa.daig(), &DotOptions::default())
        };
        let runs: Vec<String> = (0..3).map(|_| export()).collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        // And the edit path stays deterministic too.
        let export_after_edit = || {
            let mut fa = analysis(src);
            let mut memo = MemoTable::new();
            let mut stats = QueryStats::default();
            fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                .unwrap();
            let e0 = fa.cfg().edges().next().unwrap().id;
            fa.relabel(e0, dai_lang::Stmt::Skip).unwrap();
            to_dot(fa.daig(), &DotOptions::default())
        };
        assert_eq!(export_after_edit(), export_after_edit());
    }

    #[test]
    fn loop_daig_shows_fix_and_widen() {
        let fa = analysis("function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
        let dot = to_dot(fa.daig(), &DotOptions::default());
        assert!(dot.contains("fix"));
        assert!(dot.contains('∇'));
    }

    #[test]
    fn values_appear_after_query_and_vanish_after_edit() {
        let mut fa = analysis("function f() { var x = 41; return x; }");
        let no_values = DotOptions {
            show_values: false,
            ..DotOptions::default()
        };
        let before = to_dot(fa.daig(), &no_values);
        let empties_before = before.matches("style=solid").count();

        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        let after_query = to_dot(fa.daig(), &no_values);
        assert_eq!(after_query.matches("style=solid").count(), 0, "all filled");

        let e0 = fa.cfg().edges().next().unwrap().id;
        fa.relabel(e0, dai_lang::Stmt::Skip).unwrap();
        let after_edit = to_dot(fa.daig(), &no_values);
        assert!(
            after_edit.matches("style=solid").count() >= 1,
            "dirtied cone visible"
        );
        assert!(empties_before >= 1);
    }

    #[test]
    fn title_and_escaping() {
        let fa = analysis("function f() { var x = 1; return x; }");
        let opts = DotOptions {
            title: Some("quote \" backslash \\ newline \n done".to_string()),
            ..DotOptions::default()
        };
        let dot = to_dot(fa.daig(), &opts);
        assert!(dot.contains("label=\"quote \\\" backslash \\\\ newline \\n done\""));
    }

    #[test]
    fn truncation_limits_value_length() {
        assert_eq!(truncate("abcdef", 4), "abc…");
        assert_eq!(truncate("abc", 4), "abc");
    }
}
