//! A reference batch abstract interpreter (classical whole-program
//! analysis), used as the paper's "Batch" configuration (§7.3) and as the
//! independent oracle for from-scratch consistency (Theorem 6.1).
//!
//! The engine evaluates the CFG with a Bourdoncle-style recursive strategy
//! that applies *exactly* the operator schedule the DAIG encodes: loop
//! iterates are `it_{k+1} = ∇(it_k, ⟦back⟧♯(body(it_k)))` with inner loops
//! fully converged per outer iteration, joins folded in ascending edge-id
//! order, and convergence checked with `=`. Demanded evaluation of the
//! DAIG therefore computes literally the same values, which the
//! integration tests assert.

use crate::graph::{DaigError, Value};
use crate::query::{CallResolver, QueryStats};
use crate::strategy::FixStrategy;
use dai_domains::AbstractDomain;
use dai_lang::cfg::Cfg;
use dai_lang::loops::reverse_postorder;
use dai_lang::{Loc, Stmt};
use dai_memo::MemoTable;
use std::collections::HashMap;

/// Result of a batch run: the fixed-point-consistent abstract state at
/// every location.
pub type InvariantMap<D> = HashMap<Loc, D>;

/// Runs a whole-function batch analysis from `φ₀` under the paper's
/// default strategy.
///
/// # Errors
///
/// Propagates [`DaigError`]s from call resolution.
pub fn batch_analyze<D: AbstractDomain>(
    cfg: &Cfg,
    phi0: D,
    resolver: &mut dyn CallResolver<D>,
) -> Result<InvariantMap<D>, DaigError> {
    batch_analyze_with(cfg, phi0, resolver, FixStrategy::PAPER)
}

/// Runs a whole-function batch analysis from `φ₀` under `strategy`,
/// applying the same operator schedule a DAIG with that strategy encodes —
/// the from-scratch-consistency oracle for non-default strategies.
///
/// # Errors
///
/// Propagates [`DaigError`]s from call resolution.
pub fn batch_analyze_with<D: AbstractDomain>(
    cfg: &Cfg,
    phi0: D,
    resolver: &mut dyn CallResolver<D>,
    strategy: FixStrategy,
) -> Result<InvariantMap<D>, DaigError> {
    let rpo = reverse_postorder(cfg);
    let mut engine = Engine {
        cfg,
        rpo,
        states: HashMap::new(),
        resolver,
        memo: MemoTable::new(),
        stats: QueryStats::default(),
        strategy,
    };
    engine.run(phi0)?;
    Ok(engine.states)
}

struct Engine<'a, D: AbstractDomain> {
    cfg: &'a Cfg,
    rpo: Vec<Loc>,
    states: HashMap<Loc, D>,
    resolver: &'a mut dyn CallResolver<D>,
    memo: MemoTable<Value<D>>,
    stats: QueryStats,
    strategy: FixStrategy,
}

impl<D: AbstractDomain> Engine<'_, D> {
    fn run(&mut self, phi0: D) -> Result<(), DaigError> {
        let entry = self.cfg.entry();
        let top_level: Vec<Loc> = self
            .rpo
            .clone()
            .into_iter()
            .filter(|&l| self.cfg.enclosing_loops(l).is_empty())
            .collect();
        for l in top_level {
            let entry_val = if l == entry {
                phi0.clone()
            } else {
                self.in_contribution(l)?
            };
            if self.cfg.is_loop_head(l) {
                self.loop_fixpoint(l, entry_val)?;
            } else {
                self.states.insert(l, entry_val);
            }
        }
        Ok(())
    }

    /// Join of the transfers over all forward in-edges (ascending edge id,
    /// folded left-to-right exactly like the DAIG's join computation).
    fn in_contribution(&mut self, l: Loc) -> Result<D, DaigError> {
        let mut acc: Option<D> = None;
        for e in self.cfg.fwd_in_edges(l) {
            let edge = self.cfg.edge(e).expect("edge exists").clone();
            let pre = self
                .states
                .get(&edge.src)
                .cloned()
                .unwrap_or_else(D::bottom);
            let post = self.transfer(&edge.stmt, &pre, e)?;
            acc = Some(match acc {
                None => post,
                Some(a) => a.join(&post),
            });
        }
        Ok(acc.unwrap_or_else(D::bottom))
    }

    fn transfer(&mut self, stmt: &Stmt, pre: &D, edge: dai_lang::EdgeId) -> Result<D, DaigError> {
        if stmt.is_call() {
            self.resolver
                .resolve(pre, stmt, edge, &mut self.memo, &mut self.stats)
        } else {
            Ok(pre.transfer(stmt))
        }
    }

    /// Converges the loop at `head` from entry iterate `it0`, leaving the
    /// fixed point in `states[head]` and the final-iteration body states in
    /// `states[body…]`.
    fn loop_fixpoint(&mut self, head: Loc, it0: D) -> Result<(), DaigError> {
        let body: Vec<Loc> = self
            .rpo
            .clone()
            .into_iter()
            .filter(|&x| x != head && self.cfg.enclosing_loops(x).last() == Some(&head))
            .collect();
        let back = self.cfg.back_edge(head).expect("loop head has a back edge");
        let back_edge = self.cfg.edge(back).expect("edge exists").clone();
        let mut prev = it0;
        // `k` is the index of the iterate the next combine produces — the
        // same index the DAIG's widen edge into `ℓ⟨k⟩` carries, so the
        // strategy's ⊔/∇ schedule lines up exactly.
        let mut k: u32 = 1;
        loop {
            self.states.insert(head, prev.clone());
            for &x in &body {
                let v = self.in_contribution(x)?;
                if self.cfg.is_loop_head(x) {
                    self.loop_fixpoint(x, v)?;
                } else {
                    self.states.insert(x, v);
                }
            }
            let back_pre = self
                .states
                .get(&back_edge.src)
                .cloned()
                .unwrap_or_else(D::bottom);
            let prewiden = self.transfer(&back_edge.stmt, &back_pre, back)?;
            let next = self.strategy.combine(k, &prev, &prewiden);
            if self.strategy.converged(&prev, &next) {
                // Converged: states[head] and the body states already
                // reflect the fixed point.
                return Ok(());
            }
            prev = next;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::IntraResolver;
    use dai_domains::interval::Interval;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;

    fn run(src: &str) -> (Cfg, InvariantMap<IntervalDomain>) {
        let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
        let inv = batch_analyze(&cfg, IntervalDomain::top(), &mut IntraResolver).unwrap();
        (cfg, inv)
    }

    #[test]
    fn straightline_batch() {
        let (cfg, inv) = run("function f() { var x = 1; x = x * 3; return x; }");
        assert_eq!(inv[&cfg.exit()].interval_of("x"), Interval::constant(3));
    }

    #[test]
    fn join_batch() {
        let (cfg, inv) =
            run("function f(c) { var x = 0; if (c > 0) { x = 1; } else { x = 9; } return x; }");
        assert_eq!(inv[&cfg.exit()].interval_of("x"), Interval::of(1, 9));
    }

    #[test]
    fn loop_batch_with_widening() {
        let (cfg, inv) =
            run("function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }");
        let iv = inv[&cfg.exit()].interval_of("i");
        assert!(iv.contains(10) && !iv.contains(9), "{iv}");
        // The head invariant covers all iterations.
        let head = cfg.loop_heads()[0];
        let head_iv = inv[&head].interval_of("i");
        assert!(head_iv.contains(0) && head_iv.contains(10));
    }

    #[test]
    fn nested_loops_batch() {
        let (cfg, inv) = run(
            "function f(n) { var s = 0; var i = 0; while (i < 3) { var j = 0; while (j < 3) { s = s + 1; j = j + 1; } i = i + 1; } return s; }",
        );
        let s = inv[&cfg.exit()].interval_of("s");
        assert!(s.contains(9), "{s}");
        assert!(!inv[&cfg.exit()].is_bottom());
    }

    #[test]
    fn infinite_loop_exit_is_bottom() {
        let (cfg, inv) = run("function f() { var i = 0; while (i >= 0) { i = i + 1; } return i; }");
        // The exit guard i < 0 is unreachable: exit state must be ⊥.
        assert!(inv[&cfg.exit()].is_bottom());
    }
}
