//! The staged-transfer table: compiled closures per CFG edge, with a
//! digest guard that makes staleness a performance concern instead of a
//! correctness one.
//!
//! At DAIG construction time every edge's statement is staged against the
//! session's domain via
//! [`AbstractDomain::compile_transfer`] (see `dai_domains::compile` for
//! the per-domain compilers and the bit-identity contract). The resulting
//! [`TransferTable`] is keyed **densely by [`EdgeId`]** — statements are
//! CFG edges, of which there are few and which are stable across demanded
//! unrolling, while transfer *cells* multiply with loop iterates; every
//! iterate of an edge shares the edge's one closure, and looking a
//! closure up is an array index, not a hash.
//!
//! # Why a digest guard instead of precise invalidation
//!
//! Memo keys content-hash a transfer's inputs. If a compiled closure
//! staged from an *old* statement were applied after a relabel, the
//! resulting (wrong) value would be recorded under the *new* statement's
//! memo key — poisoning the memo table for every future query. Rather
//! than trusting every edit path to invalidate eagerly, each entry
//! carries the content digest of the statement it was staged from, and
//! [`TransferTable::lookup`] only returns the closure when the caller's
//! statement-cell digest (already in hand for the memo key) matches.
//! Recompiling on relabel/splice is therefore purely an optimization to
//! keep the hit rate up; a missed invalidation degrades to the
//! interpreter, never to a wrong value.
//!
//! # Fused straight-line runs
//!
//! The table also precomputes, per structural state of the CFG, the
//! maximal straight-line runs of compiled edges (chains through
//! locations with a single forward in-edge and a single out-edge that are
//! neither loop heads nor the exit) and fuses each run into one closure
//! via [`CompiledTransfer::then`]. Cell-granular evaluation cannot use
//! them — every intermediate DAIG cell must hold its value for demand,
//! dirtying, and from-scratch consistency — but whole-run consumers
//! (the transfer microbenchmark, and prospectively a scheduler mode that
//! materializes intermediate cells lazily) get the per-statement dispatch
//! for free. Fused runs inherit bit-identity from their members, which
//! `tests/transfer_compile.rs` checks against statement-at-a-time
//! interpretation.

use crate::graph::Value;
use dai_domains::{AbstractDomain, CompiledTransfer};
use dai_lang::cfg::Cfg;
use dai_lang::{EdgeId, Stmt};
use dai_memo::content_digest;
use std::sync::Arc;

/// How a session evaluates transfer edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferMode {
    /// Evaluate through the staged [`TransferTable`] where a compiled
    /// closure exists, falling back to the interpreter per statement.
    #[default]
    Compiled,
    /// Always interpret via [`AbstractDomain::transfer`] (the
    /// differential oracle configuration).
    Interp,
}

impl TransferMode {
    /// Parses the CLI/REPL spelling (`compiled` | `interp`).
    pub fn parse(s: &str) -> Option<TransferMode> {
        match s {
            "compiled" => Some(TransferMode::Compiled),
            "interp" | "interpreted" => Some(TransferMode::Interp),
            _ => None,
        }
    }

    /// The CLI/REPL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TransferMode::Compiled => "compiled",
            TransferMode::Interp => "interp",
        }
    }
}

/// One staged edge: the closure plus the digest of the statement it was
/// staged from (the guard; see module docs).
#[derive(Debug, Clone)]
struct Entry<D> {
    stmt_digest: u128,
    ct: CompiledTransfer<D>,
}

/// A maximal straight-line run of compiled edges fused into one closure.
#[derive(Debug, Clone)]
pub struct FusedRun<D> {
    /// The member edges, in control-flow order.
    pub edges: Vec<EdgeId>,
    /// The fused closure: pre-state of the first edge to post-state of
    /// the last.
    pub ct: CompiledTransfer<D>,
}

#[derive(Debug, Clone)]
struct Inner<D: AbstractDomain> {
    /// Dense by `EdgeId`; `None` = no compiled form (interpreter edge).
    entries: Vec<Option<Entry<D>>>,
    /// Statement digests of *all* edges seen at the last sync, dense by
    /// `EdgeId` (also covers interpreter edges, so `sync` can skip
    /// unchanged ones without re-staging).
    seen: Vec<Option<u128>>,
    /// Fused straight-line runs of ≥ 2 compiled edges.
    runs: Vec<FusedRun<D>>,
    /// Edges with a compiled closure at the last sync.
    compiled_edges: usize,
    /// Edges that fall back to the interpreter.
    interp_edges: usize,
}

/// The per-analysis staged-transfer store. Clones are cheap (copy-on-write
/// behind an [`Arc`]), so the scheduler can hand workers a handle without
/// re-staging anything.
#[derive(Debug, Clone)]
pub struct TransferTable<D: AbstractDomain> {
    inner: Arc<Inner<D>>,
}

impl<D: AbstractDomain> TransferTable<D> {
    /// Stages every edge of `cfg`. Emits a `core.transfer_compile` span
    /// and publishes staging counters (see `dai-trace`).
    pub fn build(cfg: &Cfg) -> TransferTable<D> {
        let mut t = TransferTable {
            inner: Arc::new(Inner {
                entries: Vec::new(),
                seen: Vec::new(),
                runs: Vec::new(),
                compiled_edges: 0,
                interp_edges: 0,
            }),
        };
        t.sync(cfg);
        t
    }

    /// Re-stages `edge` for its new statement (the relabel hook). Purely
    /// an optimization — see the module docs on the digest guard.
    pub fn relabel(&mut self, edge: EdgeId, stmt: &Stmt) {
        let inner = Arc::make_mut(&mut self.inner);
        let idx = edge.0 as usize;
        if inner.entries.len() <= idx {
            inner.entries.resize_with(idx + 1, || None);
            inner.seen.resize_with(idx + 1, || None);
        }
        let digest = stmt_digest::<D>(stmt);
        inner.seen[idx] = Some(digest);
        inner.entries[idx] = D::compile_transfer(stmt).map(|ct| Entry {
            stmt_digest: digest,
            ct,
        });
        recount(inner);
        // Runs referring to the old closure are stale; invalidate lazily
        // (the next sync rebuilds them) rather than re-walking the CFG on
        // every relabel.
        inner.runs.retain(|r| !r.edges.contains(&edge));
    }

    /// Targeted [`TransferTable::sync`]: stages only `edges` (the edges
    /// an edit actually added or moved), leaving every other entry —
    /// and its digest — untouched. Fused runs crossing a changed edge
    /// are dropped lazily, exactly as in [`TransferTable::relabel`];
    /// the next full `sync` rebuilds them. This keeps the per-edit
    /// staging cost proportional to the edit, not to the CFG: a full
    /// `sync` re-digests every statement in the function, which is pure
    /// overhead for the compiled mode when an edit touched two edges.
    /// The digest guard makes any missed edge safe (interpreter
    /// fallback), never wrong.
    pub fn sync_edges(&mut self, cfg: &Cfg, edges: impl IntoIterator<Item = EdgeId>) {
        let _span = dai_trace::span!("core.transfer_compile");
        let inner = Arc::make_mut(&mut self.inner);
        let mut staged = 0usize;
        for id in edges {
            let Some(e) = cfg.edge(id) else { continue };
            let idx = id.0 as usize;
            if inner.entries.len() <= idx {
                inner.entries.resize_with(idx + 1, || None);
                inner.seen.resize_with(idx + 1, || None);
            }
            let digest = stmt_digest::<D>(&e.stmt);
            if inner.seen[idx] == Some(digest) {
                continue;
            }
            inner.seen[idx] = Some(digest);
            inner.entries[idx] = D::compile_transfer(&e.stmt).map(|ct| Entry {
                stmt_digest: digest,
                ct,
            });
            inner.runs.retain(|r| !r.edges.contains(&id));
            staged += 1;
        }
        recount(inner);
        dai_trace::event!("core.transfer_staged", staged as u64);
    }

    /// Brings the table in line with `cfg` after structural edits
    /// (splices add edges, relabels change statements): stages new or
    /// changed edges, drops entries for edges no longer present, and
    /// recomputes the fused runs. Unchanged edges (digest match) keep
    /// their existing closures.
    pub fn sync(&mut self, cfg: &Cfg) {
        let _span = dai_trace::span!("core.transfer_compile");
        let inner = Arc::make_mut(&mut self.inner);
        let mut max_idx = 0usize;
        for e in cfg.edges() {
            max_idx = max_idx.max(e.id.0 as usize);
        }
        inner.entries.resize_with(max_idx + 1, || None);
        inner.seen.resize_with(max_idx + 1, || None);
        let mut present = vec![false; max_idx + 1];
        let mut staged = 0usize;
        for e in cfg.edges() {
            let idx = e.id.0 as usize;
            present[idx] = true;
            let digest = stmt_digest::<D>(&e.stmt);
            if inner.seen[idx] == Some(digest) {
                continue; // unchanged since last sync
            }
            inner.seen[idx] = Some(digest);
            inner.entries[idx] = D::compile_transfer(&e.stmt).map(|ct| Entry {
                stmt_digest: digest,
                ct,
            });
            staged += 1;
        }
        for (idx, p) in present.iter().enumerate() {
            if !p {
                inner.entries[idx] = None;
                inner.seen[idx] = None;
            }
        }
        recount(inner);
        inner.runs = fuse_runs(cfg, &inner.entries);
        dai_trace::event!("core.transfer_staged", staged as u64);
        let m = dai_trace::metrics();
        m.gauge("dai_transfer_compiled_edges")
            .set(inner.compiled_edges as u64);
        m.gauge("dai_transfer_interp_edges")
            .set(inner.interp_edges as u64);
    }

    /// The staged closure for `edge`, **iff** it was staged from the
    /// statement whose content digest is `stmt_digest` (the caller has
    /// that digest in hand — it is memo-key input 0). A digest mismatch
    /// means the entry is stale (an edit raced past recompilation);
    /// callers fall back to the interpreter.
    #[inline]
    pub fn lookup(&self, edge: EdgeId, stmt_digest: u128) -> Option<&CompiledTransfer<D>> {
        self.inner
            .entries
            .get(edge.0 as usize)?
            .as_ref()
            .filter(|en| en.stmt_digest == stmt_digest)
            .map(|en| &en.ct)
    }

    /// Edges with a compiled closure.
    pub fn compiled_edges(&self) -> usize {
        self.inner.compiled_edges
    }

    /// Edges that evaluate through the interpreter.
    pub fn interp_edges(&self) -> usize {
        self.inner.interp_edges
    }

    /// The fused straight-line runs (see module docs).
    pub fn fused_runs(&self) -> &[FusedRun<D>] {
        &self.inner.runs
    }
}

/// The digest of a statement *as stored in a statement cell* — must match
/// [`crate::graph::Daig::digest_id`] of the `Name::Stmt` cell, which
/// hashes the `Value::Stmt` wrapper, not the bare statement.
fn stmt_digest<D: AbstractDomain>(stmt: &Stmt) -> u128 {
    content_digest(&Value::<D>::Stmt(stmt.clone()))
}

fn recount<D: AbstractDomain>(inner: &mut Inner<D>) {
    inner.compiled_edges = inner.entries.iter().flatten().count();
    inner.interp_edges = inner
        .seen
        .iter()
        .zip(&inner.entries)
        .filter(|(seen, en)| seen.is_some() && en.is_none())
        .count();
}

/// Maximal straight-line runs: chains `e₁ → … → e_k` (k ≥ 2, all
/// compiled, no back edges) through interior locations with exactly one
/// forward in-edge and one out-edge that are neither loop heads nor the
/// exit. Each edge belongs to at most one run.
fn fuse_runs<D: AbstractDomain>(cfg: &Cfg, entries: &[Option<Entry<D>>]) -> Vec<FusedRun<D>> {
    let heads = cfg.loop_heads();
    let compiled = |id: EdgeId| {
        entries
            .get(id.0 as usize)
            .and_then(|e| e.as_ref())
            .map(|en| &en.ct)
    };
    // A location is a chain interior iff exactly one forward in-edge and
    // one out-edge meet there and it is not a loop head or the exit.
    let interior = |loc| {
        loc != cfg.exit()
            && !heads.contains(&loc)
            && cfg.fwd_in_edges(loc).len() == 1
            && cfg.out_edges(loc).len() == 1
    };
    let mut runs = Vec::new();
    for e in cfg.edges() {
        if cfg.is_back_edge(e.id) || compiled(e.id).is_none() {
            continue;
        }
        // Only start a run at a non-extendable head position.
        let starts_run = !interior(e.src)
            || cfg
                .fwd_in_edges(e.src)
                .first()
                .is_none_or(|&p| cfg.is_back_edge(p) || compiled(p).is_none());
        if !starts_run {
            continue;
        }
        let mut edges = vec![e.id];
        let mut ct = compiled(e.id).expect("checked above").clone();
        let mut cur = e.dst;
        while interior(cur) {
            let next = cfg.out_edges(cur)[0];
            if cfg.is_back_edge(next) {
                break;
            }
            let Some(next_ct) = compiled(next) else {
                break;
            };
            ct = ct.then(next_ct);
            edges.push(next);
            cur = cfg.edge(next).expect("edge exists").dst;
        }
        if edges.len() >= 2 {
            runs.push(FusedRun { edges, ct });
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_domains::{IntervalDomain, OctagonDomain, TransferShape};
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone()
    }

    #[test]
    fn builds_and_guards_by_digest() {
        let cfg = cfg_of("function f() { var x = 1; x = x + 2; return x; }");
        let t = TransferTable::<OctagonDomain>::build(&cfg);
        assert!(t.compiled_edges() > 0);
        for e in cfg.edges() {
            let d = stmt_digest::<OctagonDomain>(&e.stmt);
            let ct = t.lookup(e.id, d).expect("non-call edges compile");
            // The staged closure agrees with the interpreter.
            let pre = OctagonDomain::top();
            assert_eq!(ct.apply(&pre), pre.transfer(&e.stmt));
            // A mismatched digest (stale entry) must refuse to serve.
            assert!(t.lookup(e.id, d ^ 1).is_none());
        }
    }

    #[test]
    fn relabel_restages_the_edge() {
        let cfg = cfg_of("function f() { var x = 1; return x; }");
        let mut t = TransferTable::<IntervalDomain>::build(&cfg);
        let e = cfg.edges().next().unwrap();
        let new_stmt = Stmt::Assign("x".into(), dai_lang::parse_expr("41").unwrap());
        let old_digest = stmt_digest::<IntervalDomain>(&e.stmt);
        t.relabel(e.id, &new_stmt);
        assert!(t.lookup(e.id, old_digest).is_none(), "old digest is stale");
        let ct = t
            .lookup(e.id, stmt_digest::<IntervalDomain>(&new_stmt))
            .unwrap();
        assert_eq!(ct.shape(), TransferShape::ConstAssign);
    }

    #[test]
    fn fused_runs_cover_straightline_chains() {
        let cfg = cfg_of("function f() { var a = 1; var b = 2; var c = 3; return a + b + c; }");
        let t = TransferTable::<IntervalDomain>::build(&cfg);
        let runs = t.fused_runs();
        assert!(!runs.is_empty(), "straight-line program has a fused run");
        // Each run's fused closure equals statement-at-a-time application.
        for run in runs {
            assert!(run.edges.len() >= 2);
            assert_eq!(run.ct.shape(), TransferShape::Fused);
            let mut seq = IntervalDomain::top();
            for &eid in &run.edges {
                seq = seq.transfer(&cfg.edge(eid).unwrap().stmt);
            }
            assert_eq!(run.ct.apply(&IntervalDomain::top()), seq);
        }
        // Runs are edge-disjoint.
        let mut seen = std::collections::HashSet::new();
        for run in runs {
            for &e in &run.edges {
                assert!(seen.insert(e), "edge {e:?} in two runs");
            }
        }
    }

    #[test]
    fn loopy_cfg_fuses_only_within_blocks() {
        let cfg = cfg_of(
            "function f(n) { var i = 0; var s = 0; while (i < 8) { s = s + i; i = i + 1; } return s; }",
        );
        let t = TransferTable::<OctagonDomain>::build(&cfg);
        for run in t.fused_runs() {
            for &eid in &run.edges {
                assert!(!cfg.is_back_edge(eid), "no back edges inside a run");
            }
        }
    }
}
