//! The Sharir–Pnueli "functional approach" to interprocedural demanded
//! analysis (paper §2.3):
//!
//! > "The 'functional approach' to interprocedural analysis of Sharir and
//! > Pnueli could also potentially be adapted to our framework by
//! > constructing disjoint DAIGs for each phase and inserting dependencies
//! > from phase-2 callsites to corresponding phase-1 summaries."
//!
//! This module realizes that adaptation. Where [`crate::interproc`] keys
//! callee DAIGs by *call strings* (k-limited, so distinct call paths may
//! collapse into one context whose entry is an accumulated join), the
//! [`SummaryAnalyzer`] keys them by the **entry abstract state itself**:
//!
//! * A *phase-1 unit* is a DAIG for `(procedure, entry state)` whose `φ₀`
//!   is exactly that entry state — never a join of several call sites. Its
//!   exit cell is the procedure's *summary* for that entry.
//! * A *phase-2 callsite* (a call transfer in some caller's DAIG) depends
//!   on the summary for the entry its pre-state induces: resolving the
//!   call demands the summary, memoized in a summary table.
//!
//! Precision: two call paths get joined **only if** they produce literally
//! the same abstract entry — so the functional approach is at least as
//! precise as any k-call-string policy (and strictly more precise when
//! k-limiting merges distinct entries; see the tests).
//!
//! Incrementality: summaries are keyed by entry state and depend only on
//! the *callee's (transitive) code*. Editing a procedure `f` therefore
//! invalidates the summaries of `f` and of every transitive **caller** of
//! `f` (their exits may flow through `f`), while summaries of unrelated
//! procedures survive untouched — a sharper invalidation rule than the
//! call-string layer's conservative entry reset, and tested as such.
//!
//! Termination relies on the same assumption as §7.1: a static,
//! non-recursive call graph (checked at lowering), so the demand recursion
//! along calls is well-founded and each procedure sees finitely many
//! distinct entries (at most one per call path).

use crate::analysis::FuncAnalysis;
use crate::graph::{DaigError, Value};
use crate::name::Name;
use crate::query::{CallResolver, QueryStats};
use crate::strategy::FixStrategy;
use dai_domains::{AbstractDomain, CallSite};
use dai_lang::cfg::LoweredProgram;
use dai_lang::edit::SpliceInfo;
use dai_lang::{Block, CfgError, EdgeId, Loc, Stmt, Symbol};
use dai_memo::{MemoStore, MemoTable};
use std::collections::{HashMap, HashSet};

/// Counters for summary-table reuse (the phase-2 → phase-1 dependency
/// traffic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Calls answered from an existing summary.
    pub hits: u64,
    /// Calls that had to compute a fresh summary (demanding a phase-1
    /// DAIG's exit).
    pub misses: u64,
}

impl SummaryStats {
    /// `hits / (hits + misses)`, or 0 when no calls were resolved.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Interprocedural analyzer keying callee DAIGs by entry abstract state
/// (the functional approach). See the module docs for the design.
pub struct SummaryAnalyzer<D: AbstractDomain> {
    program: LoweredProgram,
    entry_fn: Symbol,
    phi0: D,
    strategy: FixStrategy,
    /// Phase-1 DAIGs: one per (procedure, entry state) demanded so far.
    units: HashMap<(Symbol, D), FuncAnalysis<D>>,
    /// Completed summaries: entry state ↦ exit state.
    summaries: HashMap<(Symbol, D), D>,
    /// Entry states per procedure under the *current* program, recomputed
    /// demand-first after edits ([`SummaryAnalyzer::entries_of`]).
    entries_cache: Option<HashMap<Symbol, Vec<D>>>,
    memo: MemoTable<Value<D>>,
    stats: QueryStats,
    summary_stats: SummaryStats,
}

/// Resolves calls by demanding phase-1 summaries.
struct FunctionalResolver<'a, D: AbstractDomain> {
    analyzer: &'a mut SummaryAnalyzer<D>,
    caller: Symbol,
}

impl<D: AbstractDomain> CallResolver<D> for FunctionalResolver<'_, D> {
    fn resolve(
        &mut self,
        pre: &D,
        stmt: &Stmt,
        edge: EdgeId,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        self.analyzer
            .resolve_call(&self.caller, pre, stmt, edge, memo, stats)
    }
}

impl<D: AbstractDomain> SummaryAnalyzer<D> {
    /// Creates an analyzer for `program`, analyzing from `entry_fn` with
    /// entry state `φ₀` under the paper's default iteration strategy.
    pub fn new(program: LoweredProgram, entry_fn: &str, phi0: D) -> SummaryAnalyzer<D> {
        SummaryAnalyzer::with_strategy(program, entry_fn, phi0, FixStrategy::PAPER)
    }

    /// Like [`SummaryAnalyzer::new`] with an explicit loop-head iteration
    /// strategy (see [`crate::strategy`]).
    pub fn with_strategy(
        program: LoweredProgram,
        entry_fn: &str,
        phi0: D,
        strategy: FixStrategy,
    ) -> SummaryAnalyzer<D> {
        SummaryAnalyzer {
            program,
            entry_fn: Symbol::new(entry_fn),
            phi0,
            strategy,
            units: HashMap::new(),
            summaries: HashMap::new(),
            entries_cache: None,
            memo: MemoTable::new(),
            stats: QueryStats::default(),
            summary_stats: SummaryStats::default(),
        }
    }

    /// The program under analysis.
    pub fn program(&self) -> &LoweredProgram {
        &self.program
    }

    /// Cumulative query statistics.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Summary-table reuse statistics.
    pub fn summary_stats(&self) -> SummaryStats {
        self.summary_stats
    }

    /// Number of phase-1 DAIG units constructed so far (including units
    /// retained for entries no longer reachable after edits; see
    /// [`SummaryAnalyzer::purge`]).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Number of completed summaries currently valid.
    pub fn summary_count(&self) -> usize {
        self.summaries.len()
    }

    /// Drops every unit, summary, and memo entry (sound: paper §2.2 —
    /// dropping cached results trades reuse for footprint). Queries
    /// recompute on demand.
    pub fn purge(&mut self) {
        self.units.clear();
        self.summaries.clear();
        self.entries_cache = None;
        self.memo.clear();
    }

    /// Resolves one call: compute the callee entry from the caller's
    /// pre-state, demand the matching summary, apply the return transfer.
    fn resolve_call(
        &mut self,
        caller: &Symbol,
        pre: &D,
        stmt: &Stmt,
        edge: EdgeId,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        let Stmt::Call { lhs, callee, args } = stmt else {
            return Err(DaigError::Invariant("resolve_call on non-call".to_string()));
        };
        if pre.is_bottom() {
            return Ok(D::bottom());
        }
        let Some(callee_cfg) = self.program.by_name(callee.as_str()) else {
            // Unknown callee: the domain's conservative call transfer.
            return Ok(pre.transfer(stmt));
        };
        let params: Vec<Symbol> = callee_cfg.params().to_vec();
        let site_key = format!("{caller}:{edge}");
        let site = CallSite {
            lhs: lhs.as_ref(),
            callee,
            args: args.as_slice(),
            site_key: &site_key,
        };
        let entry = pre.call_entry(site, &params);
        let exit = self.summary_exit(callee, entry, memo, stats)?;
        Ok(pre.call_return(site, &exit))
    }

    /// The summary (exit state) of `f` for `entry`, computed by demanding
    /// a phase-1 DAIG on a miss.
    fn summary_exit(
        &mut self,
        f: &Symbol,
        entry: D,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        let key = (f.clone(), entry);
        if let Some(exit) = self.summaries.get(&key) {
            self.summary_stats.hits += 1;
            return Ok(exit.clone());
        }
        self.summary_stats.misses += 1;
        self.ensure_unit(&key);
        let mut unit = self.units.remove(&key).expect("ensured");
        let mut resolver = FunctionalResolver {
            analyzer: self,
            caller: f.clone(),
        };
        let out = unit.query_exit(memo, &mut resolver, stats);
        self.units.insert(key.clone(), unit);
        let exit = out?;
        self.summaries.insert(key, exit.clone());
        Ok(exit)
    }

    fn ensure_unit(&mut self, key: &(Symbol, D)) {
        if self.units.contains_key(key) {
            return;
        }
        let cfg = self
            .program
            .by_name(key.0.as_str())
            .expect("callers resolve callees before ensuring units")
            .clone();
        self.units.insert(
            key.clone(),
            FuncAnalysis::with_strategy(cfg, key.1.clone(), self.strategy),
        );
    }

    /// Demands the fixed-point-consistent state at `loc` in the phase-1
    /// unit for `(f, entry)`.
    fn query_loc_of(
        &mut self,
        f: &Symbol,
        entry: &D,
        loc: Loc,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        let key = (f.clone(), entry.clone());
        self.ensure_unit(&key);
        let mut unit = self.units.remove(&key).expect("ensured");
        let mut resolver = FunctionalResolver {
            analyzer: self,
            caller: f.clone(),
        };
        let out = unit.query_loc(memo, loc, &mut resolver, stats);
        self.units.insert(key, unit);
        out
    }

    /// The entry states reaching each procedure under the current program,
    /// discovered by walking call sites callers-first and evaluating each
    /// site's pre-state on demand. The walk itself populates summaries, so
    /// subsequent queries are cheap.
    fn discover_entries(
        &mut self,
        memo: &mut dyn MemoStore<Value<D>>,
        stats: &mut QueryStats,
    ) -> Result<HashMap<Symbol, Vec<D>>, DaigError> {
        if let Some(cached) = &self.entries_cache {
            return Ok(cached.clone());
        }
        let mut entries: HashMap<Symbol, Vec<D>> = HashMap::new();
        entries.insert(self.entry_fn.clone(), vec![self.phi0.clone()]);
        // Callers first (topo_order is callees-first).
        let order: Vec<Symbol> = self.program.topo_order().iter().rev().cloned().collect();
        for f in order {
            let Some(cfg) = self.program.by_name(f.as_str()) else {
                continue;
            };
            let call_edges: Vec<(EdgeId, Loc, Stmt)> = cfg
                .edges()
                .filter(|e| e.stmt.is_call())
                .map(|e| (e.id, e.src, e.stmt.clone()))
                .collect();
            let f_entries = entries.get(&f).cloned().unwrap_or_default();
            for fe in f_entries {
                for (edge, src, stmt) in &call_edges {
                    let Some(callee) = stmt.callee() else {
                        continue;
                    };
                    if self.program.by_name(callee.as_str()).is_none() {
                        continue;
                    }
                    let pre = self.query_loc_of(&f, &fe, *src, memo, stats)?;
                    if pre.is_bottom() {
                        continue; // dead call site under this entry
                    }
                    let Stmt::Call { lhs, callee, args } = stmt else {
                        unreachable!()
                    };
                    let params: Vec<Symbol> = self
                        .program
                        .by_name(callee.as_str())
                        .expect("checked above")
                        .params()
                        .to_vec();
                    let site_key = format!("{f}:{edge}");
                    let site = CallSite {
                        lhs: lhs.as_ref(),
                        callee,
                        args: args.as_slice(),
                        site_key: &site_key,
                    };
                    let contribution = pre.call_entry(site, &params);
                    let slot = entries.entry(callee.clone()).or_default();
                    if !slot.contains(&contribution) {
                        slot.push(contribution);
                    }
                }
            }
        }
        self.entries_cache = Some(entries.clone());
        Ok(entries)
    }

    /// The entry states reaching `f` under the current program. Empty when
    /// `f` is unreachable from the entry function.
    ///
    /// # Errors
    ///
    /// Returns [`DaigError`] on internal failures while evaluating callers.
    pub fn entries_of(&mut self, f: &str) -> Result<Vec<D>, DaigError> {
        let mut memo = std::mem::take(&mut self.memo);
        let mut stats = QueryStats::default();
        let result = self.discover_entries(&mut memo, &mut stats);
        self.memo = memo;
        self.stats.absorb(stats);
        Ok(result?.remove(&Symbol::new(f)).unwrap_or_default())
    }

    /// The abstract state at `loc` of `f`, per entry state reaching `f`.
    ///
    /// # Errors
    ///
    /// Returns [`DaigError`] for unknown functions/locations or internal
    /// failures.
    pub fn query_at(&mut self, f: &str, loc: Loc) -> Result<Vec<(D, D)>, DaigError> {
        let fsym = Symbol::new(f);
        let mut memo = std::mem::take(&mut self.memo);
        let mut stats = QueryStats::default();
        let result = (|| {
            let entries = self
                .discover_entries(&mut memo, &mut stats)?
                .remove(&fsym)
                .unwrap_or_default();
            let mut out = Vec::new();
            for entry in entries {
                let v = self.query_loc_of(&fsym, &entry, loc, &mut memo, &mut stats)?;
                out.push((entry, v));
            }
            Ok(out)
        })();
        self.memo = memo;
        self.stats.absorb(stats);
        result
    }

    /// Like [`SummaryAnalyzer::query_at`] but joined over entries.
    ///
    /// # Errors
    ///
    /// See [`SummaryAnalyzer::query_at`].
    pub fn query_joined(&mut self, f: &str, loc: Loc) -> Result<D, DaigError> {
        let per_entry = self.query_at(f, loc)?;
        let mut acc = D::bottom();
        for (_, v) in per_entry {
            acc = acc.join(&v);
        }
        Ok(acc)
    }

    /// Applies an in-place statement relabel to `f`, invalidating exactly
    /// the summaries that can observe it (those of `f` and of its
    /// transitive callers).
    ///
    /// # Errors
    ///
    /// Returns [`CfgError`] for unknown edges and call-graph violations.
    pub fn relabel(&mut self, f: &str, edge: EdgeId, stmt: Stmt) -> Result<(), CfgError> {
        let cfg = self
            .program
            .by_name_mut(f)
            .ok_or_else(|| CfgError::UndefinedFunction(Symbol::new(f)))?;
        dai_lang::edit::relabel_edge(cfg, edge, stmt.clone())?;
        self.program.refresh_call_graph()?;
        for ((g, _), unit) in self.units.iter_mut() {
            if g.as_str() == f {
                unit.relabel(edge, stmt.clone())?;
            }
        }
        self.invalidate_after_edit(f);
        Ok(())
    }

    /// Applies a block splice to `f` (the §7.3 insertion edit), with the
    /// same invalidation rule as [`SummaryAnalyzer::relabel`].
    ///
    /// # Errors
    ///
    /// Returns [`CfgError`] for unknown edges, non-falling blocks, and
    /// call-graph violations.
    pub fn splice(&mut self, f: &str, edge: EdgeId, block: &Block) -> Result<SpliceInfo, CfgError> {
        let cfg = self
            .program
            .by_name_mut(f)
            .ok_or_else(|| CfgError::UndefinedFunction(Symbol::new(f)))?;
        let info = dai_lang::edit::splice_block_on_edge(cfg, edge, block)?;
        self.program.refresh_call_graph()?;
        for ((g, _), unit) in self.units.iter_mut() {
            if g.as_str() == f {
                unit.splice(edge, block)?;
            }
        }
        self.invalidate_after_edit(f);
        Ok(info)
    }

    /// The transitive callers of `f` (including `f` itself): exactly the
    /// procedures whose summaries can observe an edit to `f`.
    fn affected_by_edit(&self, f: &str) -> HashSet<Symbol> {
        let mut affected: HashSet<Symbol> = HashSet::new();
        affected.insert(Symbol::new(f));
        loop {
            let mut grew = false;
            for g in self.program.topo_order().to_vec() {
                if affected.contains(&g) {
                    continue;
                }
                if self
                    .program
                    .callees(g.as_str())
                    .iter()
                    .any(|c| affected.contains(c))
                {
                    affected.insert(g);
                    grew = true;
                }
            }
            if !grew {
                return affected;
            }
        }
    }

    /// Summary invalidation for an edit to `f`: summaries (and post-call
    /// results) of `f` and its transitive callers are dropped; everything
    /// else — including summaries of `f`'s *callees* — survives.
    fn invalidate_after_edit(&mut self, f: &str) {
        let affected = self.affected_by_edit(f);
        self.summaries.retain(|(g, _), _| !affected.contains(g));
        self.entries_cache = None;
        // Dirty the callers' post-call cells: any call transfer whose
        // callee chain reaches f may now produce a different value.
        for ((g, _), unit) in self.units.iter_mut() {
            if g.as_str() == f || !affected.contains(g) {
                continue;
            }
            let call_edges: Vec<EdgeId> = unit
                .cfg()
                .edges()
                .filter(|e| {
                    e.stmt
                        .callee()
                        .map(|c| affected.contains(c))
                        .unwrap_or(false)
                })
                .map(|e| e.id)
                .collect();
            for e in call_edges {
                let deps: Vec<Name> = unit.daig().dependents(&Name::Stmt(e)).cloned().collect();
                crate::edit::dirty_from(unit.daig_mut(), deps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interproc::{ContextPolicy, InterAnalyzer};
    use dai_domains::interval::Interval;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;

    type D = IntervalDomain;

    fn analyzer(src: &str) -> SummaryAnalyzer<D> {
        let program = lower_program(&parse_program(src).unwrap()).unwrap();
        SummaryAnalyzer::new(program, "main", IntervalDomain::top())
    }

    fn exit_of(an: &SummaryAnalyzer<D>, f: &str) -> Loc {
        an.program().by_name(f).unwrap().exit()
    }

    const CHAIN: &str = r#"
        function f3(z) { return z; }
        function f2(y) { var r = f3(y); return r; }
        function f1(x) { var r = f2(x); return r; }
        function main() {
            var a = f1(1);
            var b = f1(2);
            return a + b;
        }
    "#;

    #[test]
    fn functional_is_exact_through_deep_chains() {
        let mut an = analyzer(CHAIN);
        let exit = exit_of(&an, "main");
        let v = an.query_joined("main", exit).unwrap();
        // Functional summaries keep the two chains apart: a = 1, b = 2.
        assert_eq!(v.interval_of("a"), Interval::constant(1));
        assert_eq!(v.interval_of("b"), Interval::constant(2));
    }

    #[test]
    fn two_call_strings_merge_where_functional_does_not() {
        // Under 2-call-strings, f3 has a *single* context for both chains —
        // the two distinguishing main-callsites are truncated away, leaving
        // [(f2, call), (f1, call)] either way — so its entry joins {1, 2}.
        let program = lower_program(&parse_program(CHAIN).unwrap()).unwrap();
        let mut cs = InterAnalyzer::<D>::new(
            program,
            ContextPolicy::CallString(2),
            "main",
            IntervalDomain::top(),
        );
        let f3_exit = cs.program().by_name("f3").unwrap().exit();
        let per_ctx = cs.query_at("f3", f3_exit).unwrap();
        assert_eq!(
            per_ctx.len(),
            1,
            "k=2 collapses both chains into one context"
        );
        assert_eq!(per_ctx[0].1.interval_of("z"), Interval::of(1, 2));

        // The functional analyzer keeps the two entries apart and is exact
        // in each — the precision-separation witness.
        let mut fa = analyzer(CHAIN);
        let per_entry = fa.query_at("f3", f3_exit).unwrap();
        assert_eq!(per_entry.len(), 2, "two distinct entries reach f3");
        let mut zs: Vec<Interval> = per_entry.iter().map(|(_, v)| v.interval_of("z")).collect();
        zs.sort_by_key(|iv| format!("{iv}"));
        assert_eq!(zs, vec![Interval::constant(1), Interval::constant(2)]);
    }

    #[test]
    fn identical_entries_share_one_summary() {
        let mut an = analyzer(
            r#"
            function g(x) { return x * 2; }
            function main() {
                var a = g(7);
                var b = g(7);
                var c = g(9);
                return a + b + c;
            }
        "#,
        );
        let exit = exit_of(&an, "main");
        let v = an.query_joined("main", exit).unwrap();
        assert_eq!(v.interval_of("a"), Interval::constant(14));
        assert_eq!(v.interval_of("b"), Interval::constant(14));
        assert_eq!(v.interval_of("c"), Interval::constant(18));
        // Two distinct entries (7 and 9) → two summaries; the second g(7)
        // call is a summary hit.
        assert_eq!(an.summary_count(), 2);
        assert!(an.summary_stats().hits >= 1, "{:?}", an.summary_stats());
    }

    #[test]
    fn entries_of_reports_distinct_entries() {
        let mut an = analyzer(CHAIN);
        let e1 = an.entries_of("f3").unwrap();
        assert_eq!(e1.len(), 2, "two distinct entries reach f3");
        let e_main = an.entries_of("main").unwrap();
        assert_eq!(e_main.len(), 1);
        assert!(an.entries_of("nosuch").unwrap().is_empty());
    }

    #[test]
    fn editing_callee_invalidates_caller_summaries_only() {
        let mut an = analyzer(
            r#"
            function leaf(z) { return z + 1; }
            function mid(y) { var r = leaf(y); return r; }
            function other(w) { return w * 3; }
            function main() {
                var a = mid(10);
                var b = other(5);
                return a + b;
            }
        "#,
        );
        let exit = exit_of(&an, "main");
        let before = an.query_joined("main", exit).unwrap();
        assert_eq!(before.interval_of("a"), Interval::constant(11));
        assert_eq!(before.interval_of("b"), Interval::constant(15));
        let summaries_before = an.summary_count();

        // Edit leaf: z + 1 → z + 100.
        let ret_edge = an
            .program()
            .by_name("leaf")
            .unwrap()
            .edges()
            .find(|e| e.stmt.to_string().contains("__ret"))
            .unwrap()
            .id;
        an.relabel(
            "leaf",
            ret_edge,
            Stmt::Assign(
                dai_lang::RETURN_VAR.into(),
                dai_lang::parse_expr("z + 100").unwrap(),
            ),
        )
        .unwrap();

        // `other`'s summary survived; leaf/mid/main summaries were dropped.
        assert!(an.summary_count() < summaries_before);
        let other_alive = an.summaries.keys().any(|(g, _)| g.as_str() == "other");
        assert!(other_alive, "unaffected summary must survive the edit");

        let after = an.query_joined("main", exit).unwrap();
        assert_eq!(after.interval_of("a"), Interval::constant(110));
        assert_eq!(after.interval_of("b"), Interval::constant(15));
    }

    #[test]
    fn agrees_with_call_strings_when_no_merging_occurs() {
        const SRC: &str = r#"
            function inc(x) { return x + 1; }
            function main() {
                var s = 0;
                var i = 0;
                while (i < 4) { var t = inc(i); s = s + t; i = i + 1; }
                return s;
            }
        "#;
        let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
        let mut fa = SummaryAnalyzer::<D>::new(program.clone(), "main", IntervalDomain::top());
        let mut cs = InterAnalyzer::<D>::new(
            program,
            ContextPolicy::CallString(1),
            "main",
            IntervalDomain::top(),
        );
        let exit = fa.program().by_name("main").unwrap().exit();
        let a = fa.query_joined("main", exit).unwrap();
        let b = cs.query_joined("main", exit).unwrap();
        // One call site: k-call-strings do not merge anything here, but the
        // functional entry is the widened loop state, so results may only
        // differ in the functional analyzer's favor. Both must contain the
        // concrete result (soundness) and agree at `__ret`.
        assert!(!a.is_bottom() && !b.is_bottom());
        assert!(a.interval_of(dai_lang::RETURN_VAR).contains(10));
        assert!(b.interval_of(dai_lang::RETURN_VAR).contains(10));
    }

    #[test]
    fn bottom_pre_state_short_circuits_calls() {
        let mut an = analyzer(
            r#"
            function g(x) { return x; }
            function main() {
                var a = 0;
                while (a >= 0) { a = a + 1; }
                var dead = g(a);
                return dead;
            }
        "#,
        );
        // The loop never exits, so the call site is dead and g gets no
        // entries.
        let entries = an.entries_of("g").unwrap();
        assert!(
            entries.is_empty(),
            "dead call site must contribute no entry"
        );
        assert_eq!(an.summary_count(), 0);
    }

    #[test]
    fn purge_drops_state_but_preserves_answers() {
        let mut an = analyzer(CHAIN);
        let exit = exit_of(&an, "main");
        let before = an.query_joined("main", exit).unwrap();
        assert!(an.unit_count() > 0 && an.summary_count() > 0);
        an.purge();
        assert_eq!(an.unit_count(), 0);
        assert_eq!(an.summary_count(), 0);
        let after = an.query_joined("main", exit).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn splice_into_callee_updates_summaries() {
        let mut an = analyzer(
            r#"
            function g(x) { return x; }
            function main() { var a = g(1); return a; }
        "#,
        );
        let exit = exit_of(&an, "main");
        assert_eq!(
            an.query_joined("main", exit).unwrap().interval_of("a"),
            Interval::constant(1)
        );
        let ret_edge = an
            .program()
            .by_name("g")
            .unwrap()
            .edges()
            .find(|e| e.stmt.to_string().contains("__ret"))
            .unwrap()
            .id;
        an.splice(
            "g",
            ret_edge,
            &dai_lang::parser::parse_block("x = x + 41;").unwrap(),
        )
        .unwrap();
        assert_eq!(
            an.query_joined("main", exit).unwrap().interval_of("a"),
            Interval::constant(42)
        );
    }
}
