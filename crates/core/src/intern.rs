//! Name interning: dense [`CellId`]s for DAIG reference cells.
//!
//! [`Name`]s are symbolic and self-describing — good for the public API,
//! the edit layer, and DOT export — but expensive as map keys: an
//! [`crate::name::IterCtx`] heap-allocates, and every lookup re-hashes the
//! whole context vector. The [`NameInterner`] assigns each distinct `Name`
//! a dense [`CellId`] exactly once (at graph construction or unroll time);
//! everything inside [`crate::graph::Daig`] — cell slots, computation
//! sources, reverse adjacency — is indexed by `CellId`, so the hot query
//! and scheduling paths touch `u32`s instead of symbolic names.
//!
//! Interning is **append-only**: a `CellId`, once assigned, names the same
//! `Name` for the lifetime of the graph, even if the cell is removed (a
//! loop rollback) and later re-created (a re-unroll reuses the id). This
//! stability is what lets scheduler-side state keyed by `CellId` survive
//! structural edits; only the slot's *live* flag changes.

use crate::name::Name;
use dai_memo::FxBuild;
use std::collections::HashMap;
use std::fmt;

/// A dense index identifying an interned [`Name`] within one DAIG.
///
/// Ids are only meaningful relative to the interner (graph) that produced
/// them; they are assigned contiguously from 0, so `Vec`s indexed by
/// `CellId` waste no space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bijection between the [`Name`]s a DAIG has ever seen and dense
/// [`CellId`]s.
#[derive(Debug, Clone, Default)]
pub struct NameInterner {
    ids: HashMap<Name, CellId, FxBuild>,
    names: Vec<Name>,
}

impl NameInterner {
    /// An empty interner.
    pub fn new() -> NameInterner {
        NameInterner::default()
    }

    /// The id for `n`, assigning a fresh one on first sight. `n` is cloned
    /// only when it is new.
    pub fn intern(&mut self, n: &Name) -> CellId {
        if let Some(&id) = self.ids.get(n) {
            return id;
        }
        self.insert_new(n.clone())
    }

    /// Owned-name interning: moves `n` into the table on first sight, so
    /// callers that already hold an owned name pay one clone (the lookup
    /// key) instead of two.
    pub fn intern_owned(&mut self, n: Name) -> CellId {
        if let Some(&id) = self.ids.get(&n) {
            return id;
        }
        self.insert_new(n)
    }

    fn insert_new(&mut self, n: Name) -> CellId {
        let id = CellId(u32::try_from(self.names.len()).expect("cell arena exceeds u32"));
        self.ids.insert(n.clone(), id);
        self.names.push(n);
        id
    }

    /// The id for `n`, if it has ever been interned.
    #[inline]
    pub fn get(&self, n: &Name) -> Option<CellId> {
        self.ids.get(n).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    #[inline]
    pub fn name(&self, id: CellId) -> &Name {
        &self.names[id.idx()]
    }

    /// Number of distinct names ever interned — the exclusive upper bound
    /// on assigned ids, hence the length dense side tables must have.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::IterCtx;
    use dai_lang::Loc;

    fn state(l: u32, it: Option<(u32, u32)>) -> Name {
        let ctx = match it {
            Some((h, i)) => IterCtx::root().push(Loc(h), i),
            None => IterCtx::root(),
        };
        Name::State { loc: Loc(l), ctx }
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut i = NameInterner::new();
        let a = i.intern(&state(0, None));
        let b = i.intern(&state(1, None));
        let a2 = i.intern(&state(0, None));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.idx(), 0);
        assert_eq!(b.idx(), 1);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(a), &state(0, None));
        assert_eq!(i.get(&state(1, None)), Some(b));
        assert_eq!(i.get(&state(2, None)), None);
    }

    #[test]
    fn iterate_contexts_intern_distinctly() {
        let mut i = NameInterner::new();
        let fix = i.intern(&state(3, None));
        let it0 = i.intern(&state(3, Some((3, 0))));
        let it1 = i.intern(&state(3, Some((3, 1))));
        assert!(fix != it0 && it0 != it1 && fix != it1);
        assert_eq!(i.len(), 3);
    }
}
