//! Per-function analysis state: a CFG paired with its DAIG, exposing
//! program edits and fixed-point-consistent location queries.

use crate::build::{
    add_edge_structure, add_join_comp, add_loc_cells, dest_name, entry_cell_name, initial_daig,
    rollback_loop, Overrides,
};
use crate::compile::{TransferMode, TransferTable};
use crate::edit::{dirty_from, write_with_invalidation};
use crate::graph::{Daig, DaigError, Value};
use crate::name::{IterCtx, Name};
use crate::query::{query_with, CallResolver, QueryStats};
use dai_domains::AbstractDomain;
use dai_lang::cfg::{Cfg, CfgError};
use dai_lang::edit::{relabel_edge, splice_block_on_edge, SpliceInfo};
use dai_lang::{Block, EdgeId, Loc, Stmt};
use dai_memo::MemoStore;

/// A function's CFG, its DAIG, and the entry state `φ₀`.
///
/// This is the paper's per-procedure analysis unit: queries demand values
/// (§5.1–5.2), edits dirty them (§5.3), and both keep the DAIG consistent
/// with the evolving CFG.
#[derive(Debug, Clone)]
pub struct FuncAnalysis<D: AbstractDomain> {
    cfg: Cfg,
    daig: Daig<D>,
    entry_state: D,
    /// How transfer edges are evaluated (see [`crate::compile`]).
    mode: TransferMode,
    /// The staged per-edge transfer table, present iff `mode` is
    /// [`TransferMode::Compiled`]. Kept in sync with CFG edits by
    /// [`FuncAnalysis::relabel`]/[`FuncAnalysis::splice`]; stale entries
    /// are additionally fail-safe via the digest guard in
    /// [`TransferTable::lookup`].
    transfers: Option<TransferTable<D>>,
}

impl<D: AbstractDomain> FuncAnalysis<D> {
    /// Builds the initial DAIG for `cfg` with entry state `φ₀` under the
    /// paper's default strategy.
    pub fn new(cfg: Cfg, phi0: D) -> FuncAnalysis<D> {
        FuncAnalysis::with_strategy(cfg, phi0, crate::strategy::FixStrategy::PAPER)
    }

    /// Builds the initial DAIG for `cfg` with entry state `φ₀` under the
    /// given loop-head iteration strategy (see [`crate::strategy`]).
    pub fn with_strategy(
        cfg: Cfg,
        phi0: D,
        strategy: crate::strategy::FixStrategy,
    ) -> FuncAnalysis<D> {
        FuncAnalysis::with_config(cfg, phi0, strategy, TransferMode::default())
    }

    /// Builds the initial DAIG for `cfg` with entry state `φ₀` under the
    /// given strategy and transfer-evaluation mode.
    pub fn with_config(
        cfg: Cfg,
        phi0: D,
        strategy: crate::strategy::FixStrategy,
        mode: TransferMode,
    ) -> FuncAnalysis<D> {
        let mut daig = initial_daig(&cfg, phi0.clone());
        daig.set_strategy(strategy);
        let transfers = match mode {
            TransferMode::Compiled => Some(TransferTable::build(&cfg)),
            TransferMode::Interp => None,
        };
        FuncAnalysis {
            cfg,
            daig,
            entry_state: phi0,
            mode,
            transfers,
        }
    }

    /// Reassembles an analysis unit from restored parts (the persistence
    /// path: `dai-persist` decodes the DAIG, the session layer replays the
    /// CFG from source + edit history). The caller is responsible for the
    /// parts belonging together — `daig` must be a DAIG *of* `cfg` (its
    /// statement cells hold `cfg`'s edge labels) in a Definition 4.1
    /// well-formed state; `dai-engine` validates both before installing a
    /// restored unit and falls back to a cold rebuild otherwise.
    ///
    /// The transfer table is not persisted (it holds closures); it is
    /// restaged from the restored CFG under the default mode. Use
    /// [`FuncAnalysis::set_transfer_mode`] to switch afterwards.
    pub fn from_parts(cfg: Cfg, daig: Daig<D>, entry_state: D) -> FuncAnalysis<D> {
        let transfers = Some(TransferTable::build(&cfg));
        FuncAnalysis {
            cfg,
            daig,
            entry_state,
            mode: TransferMode::Compiled,
            transfers,
        }
    }

    /// The transfer-evaluation mode in effect.
    pub fn transfer_mode(&self) -> TransferMode {
        self.mode
    }

    /// Switches transfer evaluation between staged and interpreted.
    /// Safe at any time: both modes are bit-identical on every value, so
    /// filled cells and memo entries stay valid.
    pub fn set_transfer_mode(&mut self, mode: TransferMode) {
        if mode == self.mode {
            return;
        }
        self.mode = mode;
        self.transfers = match mode {
            TransferMode::Compiled => Some(TransferTable::build(&self.cfg)),
            TransferMode::Interp => None,
        };
    }

    /// The staged transfer table, when running compiled.
    pub fn transfers(&self) -> Option<&TransferTable<D>> {
        self.transfers.as_ref()
    }

    /// The underlying CFG.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The underlying DAIG.
    pub fn daig(&self) -> &Daig<D> {
        &self.daig
    }

    /// Mutable access to the DAIG, for cross-DAIG dirtying and for
    /// external schedulers (`dai-engine` writes [`Value`]s computed on
    /// worker threads back through this). Callers must preserve
    /// Definition 4.1 well-formedness; writing anything other than the
    /// result of the cell's own computation breaks from-scratch
    /// consistency.
    pub fn daig_mut(&mut self) -> &mut Daig<D> {
        &mut self.daig
    }

    /// Split borrow: the CFG (shared) alongside the DAIG (mutable). This
    /// is what lets fix-resolution loops call
    /// [`crate::query::fix_step`]`(daig, cfg, …)` without cloning the CFG
    /// per step — the two live in disjoint fields.
    pub fn parts_mut(&mut self) -> (&Cfg, &mut Daig<D>) {
        (&self.cfg, &mut self.daig)
    }

    /// [`FuncAnalysis::parts_mut`] plus the staged transfer table —
    /// the borrow shape `dai-engine`'s scheduler needs to evaluate
    /// compiled transfers while writing results back into the DAIG.
    pub fn sched_parts_mut(&mut self) -> (&Cfg, &mut Daig<D>, Option<&TransferTable<D>>) {
        (&self.cfg, &mut self.daig, self.transfers.as_ref())
    }

    /// The current entry state `φ₀`.
    pub fn entry_state(&self) -> &D {
        &self.entry_state
    }

    /// Replaces the entry state, dirtying downstream results (an edit to
    /// the `φ₀` cell — how the interprocedural layer feeds callee entry
    /// joins).
    pub fn set_entry_state(&mut self, phi0: D) {
        if phi0 == self.entry_state {
            return;
        }
        self.entry_state = phi0.clone();
        let ec = entry_cell_name(&self.cfg);
        write_with_invalidation(&mut self.daig, &ec, Value::State(phi0));
    }

    /// Replaces the statement on `edge` (in-place program edit).
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::NoSuchEdge`] for unknown edges.
    pub fn relabel(&mut self, edge: EdgeId, stmt: Stmt) -> Result<(), CfgError> {
        relabel_edge(&mut self.cfg, edge, stmt.clone())?;
        if let Some(t) = &mut self.transfers {
            t.relabel(edge, &stmt);
        }
        write_with_invalidation(&mut self.daig, &Name::Stmt(edge), Value::Stmt(stmt));
        Ok(())
    }

    /// Deletes the statement on `edge` (relabels it to `skip`).
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::NoSuchEdge`] for unknown edges.
    pub fn delete(&mut self, edge: EdgeId) -> Result<(), CfgError> {
        self.relabel(edge, Stmt::Skip)
    }

    /// Splices `block` onto `edge` (the §7.3 insertion edit): the moved
    /// edge keeps its statement cell, downstream cells are dirtied, and
    /// enclosing loops roll back via the dirtying pass.
    ///
    /// # Errors
    ///
    /// Propagates [`CfgError`]s from the CFG splice.
    pub fn splice(&mut self, edge: EdgeId, block: &Block) -> Result<SpliceInfo, CfgError> {
        let info = splice_block_on_edge(&mut self.cfg, edge, block)?;
        let ov = Overrides::new();
        // A `while` at the start of the block turns the insertion point —
        // an existing location — into a loop head; its cells must be
        // restructured (plain state cell becomes the fix cell, in-edges
        // re-target the 0th iterate).
        let promoted: Vec<Loc> = info
            .new_loop_heads
            .iter()
            .copied()
            .filter(|h| !info.new_locs.contains(h))
            .collect();
        for &h in &promoted {
            let ctx = crate::build::iter_ctx(&self.cfg, h, &ov);
            let old_cell = Name::State {
                loc: h,
                ctx: ctx.clone(),
            };
            dirty_from(&mut self.daig, vec![old_cell]);
            // Pre-join cells of the promoted head carried the old context;
            // they are superseded by freshly named ones below.
            for e in self.cfg.fwd_in_edges(h) {
                let stale = Name::PreJoin {
                    edge: e,
                    ctx: ctx.clone(),
                };
                if self.daig.contains(&stale) {
                    self.daig.remove_cell(&stale);
                }
            }
        }
        // Dirty the moved edge's destination cell (its pre-state source is
        // about to change); this also rolls back enclosing loops when the
        // wave reaches their fix cells.
        let dest = self.moved_edge_dest(edge);
        dirty_from(&mut self.daig, vec![dest]);
        // Install the structure for the inserted region (iteration 0).
        for &l in info.new_locs.iter().chain(&promoted) {
            add_loc_cells(&mut self.daig, &self.cfg, l, &ov);
        }
        for &e in &info.new_edges {
            let edge_ref = self.cfg.edge(e).expect("new edge exists").clone();
            add_edge_structure(&mut self.daig, &self.cfg, &edge_ref, &ov);
        }
        // In-edges of promoted heads re-target the 0th iterate.
        for &h in &promoted {
            for e in self.cfg.fwd_in_edges(h) {
                let edge_ref = self.cfg.edge(e).expect("edge exists").clone();
                add_edge_structure(&mut self.daig, &self.cfg, &edge_ref, &ov);
            }
        }
        for &l in info.new_locs.iter().chain(&promoted) {
            add_join_comp(&mut self.daig, &self.cfg, l, &ov);
        }
        // Re-point the moved edge's computation at its new source.
        let moved = self.cfg.edge(edge).expect("moved edge exists").clone();
        add_edge_structure(&mut self.daig, &self.cfg, &moved, &ov);
        // A promoted entry re-seeds φ₀ into its 0th iterate.
        if promoted.contains(&self.cfg.entry()) {
            let ec = entry_cell_name(&self.cfg);
            self.daig.write(&ec, Value::State(self.entry_state.clone()));
        }
        // Restage transfers for the respliced region (new edges, and the
        // moved edge whose id now labels a different statement). A splice
        // only adds and moves edges, so targeted staging suffices — and
        // keeps the staging cost proportional to the edit instead of
        // re-digesting the whole function.
        if let Some(t) = &mut self.transfers {
            t.sync_edges(
                &self.cfg,
                info.new_edges.iter().copied().chain(std::iter::once(edge)),
            );
        }
        Ok(info)
    }

    /// The destination cell of `edge`'s transfer at iteration 0.
    fn moved_edge_dest(&self, edge: EdgeId) -> Name {
        let ov = Overrides::new();
        let e = self.cfg.edge(edge).expect("edge exists");
        if self.cfg.is_back_edge(edge) {
            let ctx = crate::build::iter_ctx(&self.cfg, e.dst, &ov);
            Name::PreWiden {
                head: e.dst,
                ctx: ctx.push(e.dst, 0),
            }
        } else if self.cfg.is_join(e.dst) {
            let ctx = match dest_name(&self.cfg, e.dst, &ov) {
                Name::State { ctx, .. } => ctx,
                _ => unreachable!("dest_name returns a state name"),
            };
            Name::PreJoin { edge, ctx }
        } else {
            dest_name(&self.cfg, e.dst, &ov)
        }
    }

    /// Dirties every analysis result (the paper's demand-driven-only
    /// configuration "dirties the full DAIG after each edit"): unrolled
    /// loops are rolled back, all state cells emptied, and `φ₀` re-seeded.
    pub fn dirty_everything(&mut self) {
        // Roll every loop instance back to its initial structure,
        // outermost first.
        let fix_cells: Vec<(Loc, IterCtx)> = self
            .daig
            .names()
            .filter_map(|n| match (n, self.daig.comp(n)) {
                (Name::State { loc, ctx }, Some(c)) if c.func == crate::graph::Func::Fix => {
                    Some((*loc, ctx.clone()))
                }
                _ => None,
            })
            .collect();
        for (head, sigma) in fix_cells {
            let fix_cell = Name::State {
                loc: head,
                ctx: sigma.clone(),
            };
            if self.daig.contains(&fix_cell) {
                rollback_loop(&mut self.daig, head, &sigma);
            }
        }
        let names: Vec<Name> = self
            .daig
            .names()
            .filter(|n| !n.is_stmt())
            .cloned()
            .collect();
        for n in names {
            self.daig.clear(&n);
        }
        let ec = entry_cell_name(&self.cfg);
        self.daig.write(&ec, Value::State(self.entry_state.clone()));
    }

    /// Queries the raw cell named `n`.
    ///
    /// # Errors
    ///
    /// See [`crate::query::query`].
    pub fn query_name(
        &mut self,
        memo: &mut dyn MemoStore<Value<D>>,
        n: &Name,
        resolver: &mut dyn CallResolver<D>,
        stats: &mut QueryStats,
    ) -> Result<Value<D>, DaigError> {
        query_with(
            &mut self.daig,
            &self.cfg,
            memo,
            n,
            resolver,
            stats,
            self.transfers.as_ref(),
        )
    }

    /// Queries the fixed-point-consistent abstract state at a program
    /// location: for each enclosing loop (outermost first) the fixed point
    /// is demanded, and the body cell of the last (converged) iteration is
    /// returned — which equals the batch invariant at that location
    /// (Theorem 6.1).
    ///
    /// # Errors
    ///
    /// [`DaigError::NoSuchCell`] for locations not in the CFG; otherwise
    /// see [`crate::query::query`].
    pub fn query_loc(
        &mut self,
        memo: &mut dyn MemoStore<Value<D>>,
        loc: Loc,
        resolver: &mut dyn CallResolver<D>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        let name = self.resolve_loc_name(memo, loc, resolver, stats)?;
        let v = query_with(
            &mut self.daig,
            &self.cfg,
            memo,
            &name,
            resolver,
            stats,
            self.transfers.as_ref(),
        )?;
        v.as_state()
            .cloned()
            .ok_or_else(|| DaigError::Invariant(format!("location cell {name} holds a statement")))
    }

    /// Demands enclosing fixed points and resolves the name of the
    /// fixed-point-consistent cell at `loc`.
    fn resolve_loc_name(
        &mut self,
        memo: &mut dyn MemoStore<Value<D>>,
        loc: Loc,
        resolver: &mut dyn CallResolver<D>,
        stats: &mut QueryStats,
    ) -> Result<Name, DaigError> {
        resolve_loc_cell(self, loc, |fa, cell| {
            query_with(
                &mut fa.daig,
                &fa.cfg,
                memo,
                cell,
                resolver,
                stats,
                fa.transfers.as_ref(),
            )
            .map(|_| ())
        })
    }

    /// Queries the abstract state at the function's exit.
    ///
    /// # Errors
    ///
    /// See [`FuncAnalysis::query_loc`].
    pub fn query_exit(
        &mut self,
        memo: &mut dyn MemoStore<Value<D>>,
        resolver: &mut dyn CallResolver<D>,
        stats: &mut QueryStats,
    ) -> Result<D, DaigError> {
        self.query_loc(memo, self.cfg.exit(), resolver, stats)
    }

    /// Evaluates every cell (exhaustive configurations).
    ///
    /// # Errors
    ///
    /// See [`crate::query::evaluate_all`].
    pub fn evaluate_all(
        &mut self,
        memo: &mut dyn MemoStore<Value<D>>,
        resolver: &mut dyn CallResolver<D>,
        stats: &mut QueryStats,
    ) -> Result<(), DaigError> {
        crate::query::evaluate_all_with(
            &mut self.daig,
            &self.cfg,
            memo,
            resolver,
            stats,
            self.transfers.as_ref(),
        )
    }
}

/// Resolves the name of the fixed-point-consistent cell at `loc`,
/// demanding each enclosing loop's fixed point (outermost first) through
/// `demand` — the one place the fix-chain walk is encoded, shared by the
/// sequential evaluator ([`FuncAnalysis::query_loc`]) and `dai-engine`'s
/// parallel scheduler, so the two can never disagree about which cell a
/// location query reads.
///
/// `demand(fa, cell)` must leave `cell` filled on success; how it gets
/// there (sequential [`crate::query::query`], parallel frontier
/// evaluation, …) is the caller's choice.
///
/// # Errors
///
/// [`DaigError::NoSuchCell`] if `loc` has no cell in the resolved
/// iteration context; otherwise whatever `demand` reports.
/// One non-evaluating step of the fix-chain walk: either `loc`'s
/// fixed-point-consistent cell is resolvable right now (every enclosing
/// loop's fixed point is already converged), or the walk is blocked on
/// the outermost *unconverged* fix cell, which the caller must demand
/// before retrying.
///
/// This is the batching counterpart of [`resolve_loc_cell`]: where the
/// demanding walk evaluates each enclosing fixed point as it descends,
/// the frontier form lets a scheduler collect the blocking fix cells of
/// *many* locations first and demand them in one union-cone evaluation
/// (`dai_engine`'s coalesced query batches do exactly that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocResolution {
    /// The fixed-point-consistent cell at the queried location.
    Resolved(Name),
    /// The outermost enclosing fix cell that has not converged yet; the
    /// caller must demand it (filling it) and retry the walk.
    NeedsFix(Name),
}

/// Walks `loc`'s enclosing-loop chain without demanding anything; see
/// [`LocResolution`].
///
/// # Errors
///
/// [`DaigError::NoSuchCell`] if the fully resolved location cell is not in
/// the DAIG; [`DaigError::Invariant`] if the chain structure is broken.
pub fn resolve_loc_frontier<D: AbstractDomain>(
    fa: &FuncAnalysis<D>,
    loc: Loc,
) -> Result<LocResolution, DaigError> {
    let chain = fa.cfg.enclosing_loops(loc);
    let mut sigma = IterCtx::root();
    for h in chain {
        let fix_cell = Name::State {
            loc: h,
            ctx: sigma.clone(),
        };
        // Id-level walk: resolve the fix cell once, then read its source
        // ids and their interned names in place — this runs once per
        // location per evaluation round in `dai-engine`'s scheduler, so it
        // must not clone the computation's source names each time.
        let fix_id = fa
            .daig
            .id_of(&fix_cell)
            .filter(|&id| fa.daig.comp_srcs(id).is_some())
            .ok_or_else(|| DaigError::Invariant(format!("loop head {h} has no fix computation")))?;
        if fa.daig.value_id(fix_id).is_none() {
            return Ok(LocResolution::NeedsFix(fix_cell));
        }
        let srcs = fa.daig.comp_srcs(fix_id).expect("checked above");
        let (hd, k_prev) = fa
            .daig
            .name_of(srcs[0])
            .ctx()
            .and_then(|c| c.last())
            .ok_or_else(|| DaigError::Invariant(format!("bad fix source at {h}")))?;
        debug_assert_eq!(hd, h);
        sigma = sigma.push(h, k_prev);
    }
    let name = Name::State { loc, ctx: sigma };
    if !fa.daig.contains(&name) {
        return Err(DaigError::NoSuchCell(name.to_string()));
    }
    Ok(LocResolution::Resolved(name))
}

pub fn resolve_loc_cell<D, F>(
    fa: &mut FuncAnalysis<D>,
    loc: Loc,
    mut demand: F,
) -> Result<Name, DaigError>
where
    D: AbstractDomain,
    F: FnMut(&mut FuncAnalysis<D>, &Name) -> Result<(), DaigError>,
{
    let chain = fa.cfg.enclosing_loops(loc);
    let mut sigma = IterCtx::root();
    for h in chain {
        let fix_cell = Name::State {
            loc: h,
            ctx: sigma.clone(),
        };
        demand(fa, &fix_cell)?;
        let srcs = fa
            .daig
            .id_of(&fix_cell)
            .and_then(|id| fa.daig.comp_srcs(id))
            .ok_or_else(|| DaigError::Invariant(format!("loop head {h} has no fix computation")))?;
        let (hd, k_prev) = fa
            .daig
            .name_of(srcs[0])
            .ctx()
            .and_then(|c| c.last())
            .ok_or_else(|| DaigError::Invariant(format!("bad fix source at {h}")))?;
        debug_assert_eq!(hd, h);
        sigma = sigma.push(h, k_prev);
    }
    let name = Name::State { loc, ctx: sigma };
    if !fa.daig.contains(&name) {
        return Err(DaigError::NoSuchCell(name.to_string()));
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::IntraResolver;
    use dai_domains::interval::Interval;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::{parse_block, parse_program};
    use dai_memo::MemoTable;

    type D = IntervalDomain;

    fn analysis(src: &str) -> FuncAnalysis<D> {
        let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
        FuncAnalysis::new(cfg, IntervalDomain::top())
    }

    fn exit_state(fa: &mut FuncAnalysis<D>) -> D {
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap()
    }

    #[test]
    fn straightline_query() {
        let mut fa = analysis("function f() { var x = 1; x = x + 2; return x; }");
        let s = exit_state(&mut fa);
        assert_eq!(s.interval_of(dai_lang::RETURN_VAR), Interval::constant(3));
    }

    #[test]
    fn branch_join_query() {
        let mut fa = analysis(
            "function f(c) { var x = 0; if (c > 0) { x = 1; } else { x = 9; } return x; }",
        );
        let s = exit_state(&mut fa);
        assert_eq!(s.interval_of("x"), Interval::of(1, 9));
    }

    #[test]
    fn loop_fixpoint_with_widening() {
        let mut fa =
            analysis("function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }");
        let s = exit_state(&mut fa);
        // After the loop: i >= 10 (exit guard refines the widened [0, +inf]).
        let iv = s.interval_of("i");
        assert!(iv.contains(10));
        assert!(!iv.contains(9), "exit guard must exclude i < 10, got {iv}");
    }

    #[test]
    fn query_loc_inside_loop_is_fixpoint_consistent() {
        let mut fa =
            analysis("function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }");
        let head = fa.cfg().loop_heads()[0];
        // Body location right after the loop guard.
        let guard_edge = fa
            .cfg()
            .out_edges(head)
            .iter()
            .map(|&e| fa.cfg().edge(e).unwrap().clone())
            .find(|e| e.stmt.to_string().contains('<'))
            .unwrap();
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let body_state = fa
            .query_loc(&mut memo, guard_edge.dst, &mut IntraResolver, &mut stats)
            .unwrap();
        // At the fixpoint, inside the loop body: 0 <= i <= 9.
        let iv = body_state.interval_of("i");
        assert!(iv.contains(0) && iv.contains(9) && !iv.contains(10), "{iv}");
    }

    #[test]
    fn relabel_then_requery_reflects_edit() {
        let mut fa = analysis("function f() { var x = 1; return x; }");
        assert_eq!(exit_state(&mut fa).interval_of("x"), Interval::constant(1));
        let e0 = fa.cfg().edges().next().unwrap().id;
        fa.relabel(
            e0,
            Stmt::Assign("x".into(), dai_lang::parse_expr("41").unwrap()),
        )
        .unwrap();
        assert_eq!(exit_state(&mut fa).interval_of("x"), Interval::constant(41));
    }

    #[test]
    fn splice_then_requery_like_fig4b() {
        let mut fa = analysis("function f() { var x = 1; return x; }");
        let _ = exit_state(&mut fa);
        let ret_edge = fa
            .cfg()
            .edges()
            .find(|e| e.stmt.to_string().contains("__ret"))
            .unwrap()
            .id;
        fa.splice(ret_edge, &parse_block("x = x + 10;").unwrap())
            .unwrap();
        fa.daig().check_well_formed().unwrap();
        assert_eq!(exit_state(&mut fa).interval_of("x"), Interval::constant(11));
    }

    #[test]
    fn splice_into_loop_body() {
        let mut fa =
            analysis("function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }");
        let before = exit_state(&mut fa);
        assert!(!before.interval_of("i").contains(9));
        let head = fa.cfg().loop_heads()[0];
        let back = fa.cfg().back_edge(head).unwrap();
        // Insert a second increment before the back edge statement.
        fa.splice(back, &parse_block("i = i + 1;").unwrap())
            .unwrap();
        fa.daig().check_well_formed().unwrap();
        let after = exit_state(&mut fa);
        // i now increases by 2 per iteration: still converges, exit i >= 10.
        assert!(after.interval_of("i").contains(10) || after.interval_of("i").contains(11));
    }

    #[test]
    fn splice_while_into_straightline() {
        let mut fa = analysis("function f() { var x = 0; return x; }");
        let _ = exit_state(&mut fa);
        let ret_edge = fa
            .cfg()
            .edges()
            .find(|e| e.stmt.to_string().contains("__ret"))
            .unwrap()
            .id;
        fa.splice(
            ret_edge,
            &parse_block("while (x < 5) { x = x + 1; }").unwrap(),
        )
        .unwrap();
        fa.daig().check_well_formed().unwrap();
        let s = exit_state(&mut fa);
        assert!(s.interval_of("x").contains(5));
        assert!(!s.interval_of("x").contains(4));
    }

    #[test]
    fn incremental_reuse_preserves_upstream_results() {
        let mut fa =
            analysis("function f() { var a = 1; var b = 2; var c = 3; return a + b + c; }");
        let _ = exit_state(&mut fa);
        let filled_before = fa.daig().filled_count();
        // Edit the *last* assignment: upstream cells must stay filled.
        let c_edge = fa
            .cfg()
            .edges()
            .find(|e| e.stmt.to_string() == "c = 3")
            .unwrap()
            .id;
        fa.relabel(
            c_edge,
            Stmt::Assign("c".into(), dai_lang::parse_expr("4").unwrap()),
        )
        .unwrap();
        let filled_after_edit = fa.daig().filled_count();
        assert!(filled_after_edit >= filled_before - 3, "over-dirtied");
        assert!(filled_after_edit < filled_before, "nothing dirtied");
    }

    #[test]
    fn set_entry_state_dirties_everything_downstream() {
        let mut fa = analysis("function f(p) { var x = p; return x; }");
        let _ = exit_state(&mut fa);
        fa.set_entry_state(IntervalDomain::from_bindings([(
            "p".into(),
            dai_domains::interval::AbsVal::Num(Interval::of(5, 6)),
        )]));
        let s = exit_state(&mut fa);
        assert_eq!(s.interval_of("x"), Interval::of(5, 6));
    }

    #[test]
    fn dirty_everything_forces_recomputation_but_same_result() {
        let mut fa =
            analysis("function f(n) { var i = 0; while (i < 10) { i = i + 1; } return i; }");
        let before = exit_state(&mut fa);
        fa.dirty_everything();
        fa.daig().check_well_formed().unwrap();
        let after = exit_state(&mut fa);
        assert_eq!(before, after);
    }

    #[test]
    fn query_missing_location_errors() {
        let mut fa = analysis("function f() { return 0; }");
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        let err = fa
            .query_loc(&mut memo, Loc(424242), &mut IntraResolver, &mut stats)
            .unwrap_err();
        assert!(matches!(err, DaigError::NoSuchCell(_)));
    }
}
