//! DAIG construction: the paper's `Dinit` (Definition A.2) plus the shared
//! loop-region builder reused by demanded unrolling and rollback.
//!
//! The three structural cases of Fig. 7:
//!
//! 1. a forward edge to a non-join location becomes one transfer edge;
//! 2. forward edges into a join location get per-edge pre-join cells and a
//!    single join edge;
//! 3. a back edge becomes the loop structure: iterate cells `ℓ⟨0⟩, ℓ⟨1⟩`,
//!    a pre-widen cell, a widen edge, and a `fix` edge from the two
//!    greatest iterates to the fixed-point cell `ℓ`.
//!
//! The source of a DAIG edge out of location `a` follows the paper's
//! `src-nm`: the fixed-point cell when `a` is a loop head and the edge
//! leaves the loop, the current iterate when the edge stays inside, and
//! the plain state cell otherwise.

use crate::graph::{Daig, Func, Value};
use crate::name::{IterCtx, Name};
use dai_domains::AbstractDomain;
use dai_lang::cfg::{Cfg, Edge};
use dai_lang::Loc;
use dai_memo::FxBuild;
use std::collections::HashMap;

/// Iteration overrides: the current iteration for specific loop heads
/// (heads not present default to 0).
pub type Overrides = HashMap<Loc, u32>;

/// A per-region memo of iteration contexts: building a DAIG region (the
/// whole graph in `Dinit`, one iterate's body in `unroll`) asks for the
/// same location's context once per incident edge, so the region passes
/// share one computed [`IterCtx`] per location instead of re-deriving it.
struct CtxCache<'a> {
    cfg: &'a Cfg,
    overrides: &'a Overrides,
    ctxs: HashMap<Loc, IterCtx, FxBuild>,
}

impl<'a> CtxCache<'a> {
    fn new(cfg: &'a Cfg, overrides: &'a Overrides) -> CtxCache<'a> {
        CtxCache {
            cfg,
            overrides,
            ctxs: HashMap::default(),
        }
    }

    fn ctx(&mut self, loc: Loc) -> &IterCtx {
        self.ctxs
            .entry(loc)
            .or_insert_with(|| iter_ctx(self.cfg, loc, self.overrides))
    }

    fn iteration(&self, head: Loc) -> u32 {
        self.overrides.get(&head).copied().unwrap_or(0)
    }

    /// [`dest_name`] via the cache.
    fn dest(&mut self, loc: Loc) -> Name {
        let i = self.iteration(loc);
        let is_head = self.cfg.is_loop_head(loc);
        let ctx = self.ctx(loc);
        if is_head {
            Name::State {
                loc,
                ctx: ctx.push(loc, i),
            }
        } else {
            Name::State {
                loc,
                ctx: ctx.clone(),
            }
        }
    }

    /// [`src_name`] via the cache.
    fn src(&mut self, a: Loc, b: Loc) -> Name {
        if self.cfg.is_loop_head(a) {
            let into_loop = a == b || self.cfg.enclosing_chain(b).contains(&a);
            let i = self.iteration(a);
            let ctx = self.ctx(a);
            if into_loop {
                Name::State {
                    loc: a,
                    ctx: ctx.push(a, i),
                }
            } else {
                Name::State {
                    loc: a,
                    ctx: ctx.clone(),
                }
            }
        } else {
            let ctx = self.ctx(a);
            Name::State {
                loc: a,
                ctx: ctx.clone(),
            }
        }
    }
}

/// The iteration context of the state cell at `loc` (enclosing loops only,
/// not `loc`'s own loop when it is a head).
pub fn iter_ctx(cfg: &Cfg, loc: Loc, overrides: &Overrides) -> IterCtx {
    IterCtx(
        cfg.enclosing_chain(loc)
            .iter()
            .map(|&h| (h, overrides.get(&h).copied().unwrap_or(0)))
            .collect(),
    )
}

/// The name of the state cell at `loc` *as a destination* of dataflow:
/// loop heads receive into their 0th iterate (or the override iteration).
pub fn dest_name(cfg: &Cfg, loc: Loc, overrides: &Overrides) -> Name {
    let ctx = iter_ctx(cfg, loc, overrides);
    if cfg.is_loop_head(loc) {
        let i = overrides.get(&loc).copied().unwrap_or(0);
        Name::State {
            loc,
            ctx: ctx.push(loc, i),
        }
    } else {
        Name::State { loc, ctx }
    }
}

/// The name of the fixed-point cell of head `loc` (its state as read by
/// loop-exit edges).
pub fn fix_name(cfg: &Cfg, loc: Loc, overrides: &Overrides) -> Name {
    Name::State {
        loc,
        ctx: iter_ctx(cfg, loc, overrides),
    }
}

/// The paper's `src-nm(a, b)`: the cell an edge `a → b` reads from.
pub fn src_name(cfg: &Cfg, a: Loc, b: Loc, overrides: &Overrides) -> Name {
    if cfg.is_loop_head(a) {
        let ctx = iter_ctx(cfg, a, overrides);
        if a == b || cfg.enclosing_chain(b).contains(&a) {
            // Into the loop body (or the self-loop back edge): read the
            // current iterate.
            let i = overrides.get(&a).copied().unwrap_or(0);
            Name::State {
                loc: a,
                ctx: ctx.push(a, i),
            }
        } else {
            // Exiting the loop: read the fixed point.
            Name::State { loc: a, ctx }
        }
    } else {
        Name::State {
            loc: a,
            ctx: iter_ctx(cfg, a, overrides),
        }
    }
}

/// Adds the reference cells (and head-local computations) for `loc` under
/// the given iteration overrides. For loop heads this installs the initial
/// two-iterate structure of Fig. 7(3).
pub fn add_loc_cells<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    loc: Loc,
    overrides: &Overrides,
) {
    let mut ctxs = CtxCache::new(cfg, overrides);
    add_loc_cells_cached(daig, &mut ctxs, loc);
}

fn add_loc_cells_cached<D: AbstractDomain>(daig: &mut Daig<D>, ctxs: &mut CtxCache<'_>, loc: Loc) {
    let cfg = ctxs.cfg;
    let ctx = ctxs.ctx(loc).clone();
    if cfg.is_loop_head(loc) {
        let fix_cell = Name::State {
            loc,
            ctx: ctx.clone(),
        };
        let it0 = Name::State {
            loc,
            ctx: ctx.push(loc, 0),
        };
        let it1 = Name::State {
            loc,
            ctx: ctx.push(loc, 1),
        };
        let pw0 = Name::PreWiden {
            head: loc,
            ctx: ctx.push(loc, 0),
        };
        daig.add_cell(fix_cell.clone(), None);
        daig.add_cell(it0.clone(), None);
        daig.add_cell(it1.clone(), None);
        daig.add_cell(pw0.clone(), None);
        daig.add_comp(it1.clone(), Func::Widen, vec![it0.clone(), pw0]);
        daig.add_comp(fix_cell, Func::Fix, vec![it0, it1]);
    } else {
        daig.add_cell(Name::State { loc, ctx }, None);
    }
}

/// Adds the statement cell and transfer computation for edge `e` under the
/// given iteration overrides. Statement cells are shared across loop
/// unrollings ("cells containing program syntax are not duplicated").
pub fn add_edge_structure<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    e: &Edge,
    overrides: &Overrides,
) {
    let mut ctxs = CtxCache::new(cfg, overrides);
    add_edge_structure_cached(daig, &mut ctxs, e);
}

fn add_edge_structure_cached<D: AbstractDomain>(
    daig: &mut Daig<D>,
    ctxs: &mut CtxCache<'_>,
    e: &Edge,
) {
    let cfg = ctxs.cfg;
    let stmt_cell = Name::Stmt(e.id);
    if !daig.contains(&stmt_cell) {
        daig.add_cell(stmt_cell.clone(), Some(Value::Stmt(e.stmt.clone())));
    }
    let src = ctxs.src(e.src, e.dst);
    if cfg.is_back_edge(e.id) {
        // Back edge: transfer into the pre-widen cell of the head's
        // current iteration.
        let i = ctxs.iteration(e.dst);
        let pw = Name::PreWiden {
            head: e.dst,
            ctx: ctxs.ctx(e.dst).push(e.dst, i),
        };
        if !daig.contains(&pw) {
            daig.add_cell(pw.clone(), None);
        }
        daig.add_comp(pw, Func::Transfer, vec![stmt_cell, src]);
    } else if cfg.is_join(e.dst) {
        let dest_ctx = match ctxs.dest(e.dst) {
            Name::State { ctx, .. } => ctx,
            _ => unreachable!("dest returns a state name"),
        };
        let pj = Name::PreJoin {
            edge: e.id,
            ctx: dest_ctx,
        };
        if !daig.contains(&pj) {
            daig.add_cell(pj.clone(), None);
        }
        daig.add_comp(pj, Func::Transfer, vec![stmt_cell, src]);
    } else {
        let dest = ctxs.dest(e.dst);
        daig.add_comp(dest, Func::Transfer, vec![stmt_cell, src]);
    }
}

/// Adds the join computation for join location `loc` (one `⊔` edge over
/// the per-in-edge pre-join cells, in edge-id order).
pub fn add_join_comp<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    loc: Loc,
    overrides: &Overrides,
) {
    let mut ctxs = CtxCache::new(cfg, overrides);
    add_join_comp_cached(daig, &mut ctxs, loc);
}

fn add_join_comp_cached<D: AbstractDomain>(daig: &mut Daig<D>, ctxs: &mut CtxCache<'_>, loc: Loc) {
    let cfg = ctxs.cfg;
    if !cfg.is_join(loc) {
        return;
    }
    let dest = ctxs.dest(loc);
    let dest_ctx = match &dest {
        Name::State { ctx, .. } => ctx.clone(),
        _ => unreachable!("dest returns a state name"),
    };
    let srcs: Vec<Name> = cfg
        .fwd_in(loc)
        .iter()
        .map(|&e| Name::PreJoin {
            edge: e,
            ctx: dest_ctx.clone(),
        })
        .collect();
    daig.add_comp(dest, Func::Join, srcs);
}

/// The paper's `Dinit`: constructs the initial DAIG for a CFG, seeding the
/// entry cell with `φ₀`.
pub fn initial_daig<D: AbstractDomain>(cfg: &Cfg, phi0: D) -> Daig<D> {
    let mut daig = Daig::new();
    let overrides = Overrides::new();
    let mut ctxs = CtxCache::new(cfg, &overrides);
    let locs = cfg.locs();
    // Id-level `Dinit`: every cell name is constructed and interned
    // exactly once, and computations are wired by [`CellId`] — an edge
    // whose source location feeds several destinations re-uses the
    // interned id instead of re-hashing the name per reference.
    use dai_memo::FxBuild as Fx;
    let mut dest_ids: HashMap<Loc, crate::intern::CellId, Fx> = HashMap::default();
    let mut fix_ids: HashMap<Loc, crate::intern::CellId, Fx> = HashMap::default();
    for &loc in &locs {
        if cfg.is_loop_head(loc) {
            let ctx = ctxs.ctx(loc).clone();
            let fix_cell = Name::State {
                loc,
                ctx: ctx.clone(),
            };
            let it0 = Name::State {
                loc,
                ctx: ctx.push(loc, 0),
            };
            let it1 = Name::State {
                loc,
                ctx: ctx.push(loc, 1),
            };
            let pw0 = Name::PreWiden {
                head: loc,
                ctx: ctx.push(loc, 0),
            };
            let fix_id = daig.add_cell_id(fix_cell, None);
            let it0_id = daig.add_cell_id(it0, None);
            let it1_id = daig.add_cell_id(it1, None);
            let pw0_id = daig.add_cell_id(pw0, None);
            daig.add_comp_ids(it1_id, Func::Widen, vec![it0_id, pw0_id]);
            daig.add_comp_ids(fix_id, Func::Fix, vec![it0_id, it1_id]);
            dest_ids.insert(loc, it0_id);
            fix_ids.insert(loc, fix_id);
        } else {
            let id = daig.add_cell_id(
                Name::State {
                    loc,
                    ctx: ctxs.ctx(loc).clone(),
                },
                None,
            );
            dest_ids.insert(loc, id);
        }
    }
    for e in cfg.edges() {
        let stmt_id = daig.add_cell_id(Name::Stmt(e.id), Some(Value::Stmt(e.stmt.clone())));
        // src-nm: the fixed point when leaving a loop, the iterate inside.
        // This id-level shortcut must agree with the Name-level rule in
        // [`src_name`]/`CtxCache::src` (the unroll path still goes through
        // those); the debug assertion pins the two together.
        let src_id = if cfg.is_loop_head(e.src)
            && !(e.src == e.dst || cfg.enclosing_chain(e.dst).contains(&e.src))
        {
            fix_ids[&e.src]
        } else {
            dest_ids[&e.src]
        };
        debug_assert_eq!(
            daig.name_of(src_id),
            &src_name(cfg, e.src, e.dst, &overrides),
            "id-level Dinit disagrees with src-nm for edge {}",
            e.id
        );
        if cfg.is_back_edge(e.id) {
            let pw = Name::PreWiden {
                head: e.dst,
                ctx: ctxs.ctx(e.dst).push(e.dst, 0),
            };
            let pw_id = daig.id_of(&pw).expect("head installed its pre-widen cell");
            daig.add_comp_ids(pw_id, Func::Transfer, vec![stmt_id, src_id]);
        } else if cfg.is_join(e.dst) {
            // The pre-join context is the *destination* context of the
            // join — for a join that is also a loop head, that includes
            // its own 0th-iterate component.
            let mut pj_ctx = ctxs.ctx(e.dst).clone();
            if cfg.is_loop_head(e.dst) {
                pj_ctx = pj_ctx.push(e.dst, 0);
            }
            let pj = Name::PreJoin {
                edge: e.id,
                ctx: pj_ctx,
            };
            let pj_id = daig.add_cell_id(pj, None);
            daig.add_comp_ids(pj_id, Func::Transfer, vec![stmt_id, src_id]);
        } else {
            daig.add_comp_ids(dest_ids[&e.dst], Func::Transfer, vec![stmt_id, src_id]);
        }
    }
    for &loc in &locs {
        if cfg.is_join(loc) {
            let mut ctx = ctxs.ctx(loc).clone();
            if cfg.is_loop_head(loc) {
                ctx = ctx.push(loc, 0);
            }
            let srcs: Vec<crate::intern::CellId> = cfg
                .fwd_in(loc)
                .iter()
                .map(|&e| {
                    daig.id_of(&Name::PreJoin {
                        edge: e,
                        ctx: ctx.clone(),
                    })
                    .expect("pre-join cells installed")
                })
                .collect();
            daig.add_comp_ids(dest_ids[&loc], Func::Join, srcs);
        }
    }
    // Seed φ₀ at the entry (the 0th iterate when the entry is a loop head).
    daig.write_id(dest_ids[&cfg.entry()], Value::State(phi0));
    daig
}

/// The name of the `φ₀` seed cell (for entry edits by the interprocedural
/// layer).
pub fn entry_cell_name(cfg: &Cfg) -> Name {
    dest_name(cfg, cfg.entry(), &Overrides::new())
}

/// Builds one more abstract iteration of the loop at `head` whose fix edge
/// currently reads iterates `k−1` and `k` under enclosing context `sigma`:
/// fresh body cells at iteration `k`, the `k+1`-th iterate, the pre-widen
/// cell, the widen edge, and the slid fix edge. Nested loops restart at
/// their initial two-iterate structure.
///
/// Returns the ids of every structurally changed cell — the new iterate
/// subgraph plus the re-pointed fix cell — so demanded-cone schedulers can
/// patch their ready-counts for exactly this set instead of re-walking the
/// cone (`dai_engine::scheduler::evaluate_targets`).
///
/// This realizes the paper's `unroll` (§5.2): it is the `incr`-duplication
/// of the region between the two greatest iterates, with stale inner-loop
/// unrollings normalized to their initial form (a strictly smaller,
/// name-equivalent graph; see DESIGN.md).
pub fn unroll_loop<D: AbstractDomain>(
    daig: &mut Daig<D>,
    cfg: &Cfg,
    head: Loc,
    sigma: &IterCtx,
    k: u32,
) -> Vec<crate::intern::CellId> {
    daig.begin_delta();
    let mut overrides = Overrides::new();
    for (h, i) in &sigma.0 {
        overrides.insert(*h, *i);
    }
    overrides.insert(head, k);
    let mut ctxs = CtxCache::new(cfg, &overrides);

    // New iterate and pre-widen cells; widen edge.
    let it_k = Name::State {
        loc: head,
        ctx: sigma.push(head, k),
    };
    let it_k1 = Name::State {
        loc: head,
        ctx: sigma.push(head, k + 1),
    };
    let pw_k = Name::PreWiden {
        head,
        ctx: sigma.push(head, k),
    };
    daig.add_cell(it_k1.clone(), None);
    daig.add_cell(pw_k, None);
    {
        let pw_k = Name::PreWiden {
            head,
            ctx: sigma.push(head, k),
        };
        daig.add_comp(it_k1.clone(), Func::Widen, vec![it_k.clone(), pw_k]);
    }

    // Fresh body cells at iteration k (nested heads get their initial
    // structure back).
    let body: Vec<Loc> = cfg
        .natural_loop_ref(head)
        .iter()
        .copied()
        .filter(|&x| x != head)
        .collect();
    for &x in &body {
        add_loc_cells_cached(daig, &mut ctxs, x);
    }
    // Body edges (including the back edge into the new pre-widen cell and
    // inner-loop edges): exactly the in-edges of body locations plus this
    // head's own back edge — processed in ascending id order so the build
    // sequence is deterministic and id-independent.
    let mut region: Vec<dai_lang::EdgeId> = body
        .iter()
        .flat_map(|&x| cfg.in_edges(x).iter().copied())
        .chain(cfg.back_edge(head))
        .collect();
    region.sort_unstable();
    region.dedup();
    for id in region {
        let e = cfg.edge(id).expect("region edges exist").clone();
        add_edge_structure_cached(daig, &mut ctxs, &e);
    }
    for &x in &body {
        add_join_comp_cached(daig, &mut ctxs, x);
    }

    // Slide the fix edge forward.
    let fix_cell = Name::State {
        loc: head,
        ctx: sigma.clone(),
    };
    daig.add_comp(fix_cell, Func::Fix, vec![it_k, it_k1]);
    daig.take_delta()
}

/// Rolls the loop at `head` (instance `sigma`) back to its initial
/// two-iterate structure (the E-Loop rule): removes every cell and
/// computation whose context extends `sigma` with `(head, j ≥ 1)` — except
/// the first iterate itself — and resets the fix edge to read iterates 0
/// and 1.
pub fn rollback_loop<D: AbstractDomain>(daig: &mut Daig<D>, head: Loc, sigma: &IterCtx) {
    let it1 = Name::State {
        loc: head,
        ctx: sigma.push(head, 1),
    };
    let victims: Vec<Name> = daig
        .names()
        .filter(|n| {
            if **n == it1 {
                return false;
            }
            let Some(ctx) = n.ctx() else { return false };
            if ctx.0.len() <= sigma.0.len() {
                return false;
            }
            if ctx.0[..sigma.0.len()] != sigma.0[..] {
                return false;
            }
            matches!(ctx.0[sigma.0.len()], (h, j) if h == head && j >= 1)
        })
        .cloned()
        .collect();
    for v in &victims {
        daig.remove_cell(v);
    }
    let fix_cell = Name::State {
        loc: head,
        ctx: sigma.clone(),
    };
    let it0 = Name::State {
        loc: head,
        ctx: sigma.push(head, 0),
    };
    daig.add_comp(fix_cell, Func::Fix, vec![it0, it1]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::parse_program;

    type D = IntervalDomain;

    fn cfg_of(src: &str, name: &str) -> Cfg {
        lower_program(&parse_program(src).unwrap())
            .unwrap()
            .by_name(name)
            .unwrap()
            .clone()
    }

    #[test]
    fn straightline_daig_shape() {
        let cfg = cfg_of("function f() { var x = 1; x = x + 1; return x; }", "f");
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        daig.check_well_formed().unwrap();
        // One state cell per location + one stmt cell per edge.
        assert_eq!(daig.cell_count(), cfg.loc_count() + cfg.edge_count());
        // Entry holds φ₀.
        let entry = entry_cell_name(&cfg);
        assert!(daig.value(&entry).is_some());
    }

    #[test]
    fn join_gets_prejoin_cells() {
        let cfg = cfg_of(
            "function f(x) { if (x > 0) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        daig.check_well_formed().unwrap();
        let join = cfg.locs().into_iter().find(|&l| cfg.is_join(l)).unwrap();
        let jn = dest_name(&cfg, join, &Overrides::new());
        let comp = daig.comp(&jn).unwrap();
        assert_eq!(comp.func, Func::Join);
        assert_eq!(comp.srcs.len(), 2);
    }

    #[test]
    fn loop_daig_matches_fig7_case3() {
        let cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        daig.check_well_formed().unwrap();
        let head = cfg.loop_heads()[0];
        let ov = Overrides::new();
        let fix_cell = fix_name(&cfg, head, &ov);
        let comp = daig.comp(&fix_cell).unwrap();
        assert_eq!(comp.func, Func::Fix);
        // Fix reads iterates 0 and 1 initially.
        assert_eq!(
            comp.srcs[0],
            Name::State {
                loc: head,
                ctx: IterCtx::root().push(head, 0)
            }
        );
        assert_eq!(
            comp.srcs[1],
            Name::State {
                loc: head,
                ctx: IterCtx::root().push(head, 1)
            }
        );
        // The widen edge produces iterate 1.
        let it1 = Name::State {
            loc: head,
            ctx: IterCtx::root().push(head, 1),
        };
        assert_eq!(daig.comp(&it1).unwrap().func, Func::Widen);
        // Loop-exit edges read the fixed point.
        let exit_src = src_name(&cfg, head, cfg.exit(), &ov);
        assert_eq!(exit_src, fix_cell);
    }

    #[test]
    fn unroll_slides_fix_edge_like_fig4c() {
        let cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        let head = cfg.loop_heads()[0];
        let sigma = IterCtx::root();
        let before = daig.cell_count();
        unroll_loop(&mut daig, &cfg, head, &sigma, 1);
        daig.check_well_formed().unwrap();
        assert!(daig.cell_count() > before);
        let comp = daig
            .comp(&Name::State {
                loc: head,
                ctx: sigma.clone(),
            })
            .unwrap();
        assert_eq!(
            comp.srcs[0],
            Name::State {
                loc: head,
                ctx: sigma.push(head, 1)
            }
        );
        assert_eq!(
            comp.srcs[1],
            Name::State {
                loc: head,
                ctx: sigma.push(head, 2)
            }
        );
        // Statement cells were not duplicated.
        let stmt_cells = daig.names().filter(|n| n.is_stmt()).count();
        assert_eq!(stmt_cells, cfg.edge_count());
    }

    #[test]
    fn rollback_restores_initial_loop_structure() {
        let cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        let reference = initial_daig::<D>(&cfg, IntervalDomain::top());
        let head = cfg.loop_heads()[0];
        let sigma = IterCtx::root();
        unroll_loop(&mut daig, &cfg, head, &sigma, 1);
        unroll_loop(&mut daig, &cfg, head, &sigma, 2);
        rollback_loop(&mut daig, head, &sigma);
        daig.check_well_formed().unwrap();
        assert_eq!(daig.cell_count(), reference.cell_count());
        let comp = daig
            .comp(&Name::State {
                loc: head,
                ctx: sigma.clone(),
            })
            .unwrap();
        assert_eq!(
            comp.srcs[0],
            Name::State {
                loc: head,
                ctx: sigma.push(head, 0)
            }
        );
        assert_eq!(
            comp.srcs[1],
            Name::State {
                loc: head,
                ctx: sigma.push(head, 1)
            }
        );
    }

    #[test]
    fn nested_loop_initial_structure() {
        let cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { var j = 0; while (j < i) { j = j + 1; } i = i + 1; } return i; }",
            "f",
        );
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        daig.check_well_formed().unwrap();
        let heads = cfg.loop_heads();
        let (outer, inner) = (heads[0], heads[1]);
        // The inner fix cell lives inside the outer iteration-0 context.
        let inner_fix = Name::State {
            loc: inner,
            ctx: IterCtx::root().push(outer, 0),
        };
        assert_eq!(daig.comp(&inner_fix).unwrap().func, Func::Fix);
    }

    #[test]
    fn unrolling_outer_rebuilds_inner_at_new_iteration() {
        let cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { var j = 0; while (j < i) { j = j + 1; } i = i + 1; } return i; }",
            "f",
        );
        let mut daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        let heads = cfg.loop_heads();
        let (outer, inner) = (heads[0], heads[1]);
        unroll_loop(&mut daig, &cfg, outer, &IterCtx::root(), 1);
        daig.check_well_formed().unwrap();
        // Inner loop structure exists at outer iteration 1.
        let inner_fix1 = Name::State {
            loc: inner,
            ctx: IterCtx::root().push(outer, 1),
        };
        assert_eq!(daig.comp(&inner_fix1).unwrap().func, Func::Fix);
        // And rolling back the outer loop removes it again.
        rollback_loop(&mut daig, outer, &IterCtx::root());
        daig.check_well_formed().unwrap();
        assert!(!daig.contains(&inner_fix1));
    }

    #[test]
    fn self_loop_back_edge_reads_iterate() {
        let cfg = cfg_of("function f(b) { while (b == 0) { } return b; }", "f");
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        daig.check_well_formed().unwrap();
        let head = cfg.loop_heads()[0];
        let pw = Name::PreWiden {
            head,
            ctx: IterCtx::root().push(head, 0),
        };
        let comp = daig.comp(&pw).unwrap();
        assert_eq!(comp.func, Func::Transfer);
        assert_eq!(
            comp.srcs[1],
            Name::State {
                loc: head,
                ctx: IterCtx::root().push(head, 0)
            }
        );
    }

    #[test]
    fn entry_as_loop_head_seeds_iterate_zero() {
        let cfg = cfg_of(
            "function f(n) { while (n > 0) { n = n - 1; } return n; }",
            "f",
        );
        let daig = initial_daig::<D>(&cfg, IntervalDomain::top());
        daig.check_well_formed().unwrap();
        let entry = cfg.entry();
        assert!(cfg.is_loop_head(entry));
        let it0 = Name::State {
            loc: entry,
            ctx: IterCtx::root().push(entry, 0),
        };
        assert!(daig.value(&it0).is_some());
    }
}
