//! The paper's four analysis configurations (§7.3):
//!
//! 1. **Batch** — re-analyze the whole program from scratch after every
//!    edit;
//! 2. **Incremental** — dirty as little as possible on each edit, but
//!    eagerly recompute everything dirtied;
//! 3. **Demand-driven** — dirty the full DAIG after each edit, compute
//!    only what queries demand;
//! 4. **Incremental & demand-driven** — the full demanded abstract
//!    interpretation: dirty minimally, compute on demand.
//!
//! All four are expressed over the same [`InterAnalyzer`] machinery, so
//! differences in measured latency come from the edit/query semantics, not
//! from incidental implementation differences — mirroring the paper's
//! setup, where "the first three configurations were implemented atop our
//! DAIG framework".

use crate::graph::DaigError;
use crate::interproc::{ContextPolicy, InterAnalyzer};
use dai_domains::AbstractDomain;
use dai_lang::cfg::LoweredProgram;
use dai_lang::{Block, CfgError, EdgeId, Loc, Stmt, Symbol};
use std::fmt;

/// Which of the paper's four configurations a driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// Classical whole-program re-analysis per edit.
    Batch,
    /// Incremental-only: dirty minimally, recompute eagerly.
    Incremental,
    /// Demand-driven-only: dirty fully, compute lazily.
    DemandDriven,
    /// Incremental and demand-driven (full demanded AI).
    IncrementalDemandDriven,
}

impl Config {
    /// All four configurations, in the paper's order.
    pub const ALL: [Config; 4] = [
        Config::Batch,
        Config::Incremental,
        Config::DemandDriven,
        Config::IncrementalDemandDriven,
    ];

    /// Short label as used in Fig. 10.
    pub fn label(self) -> &'static str {
        match self {
            Config::Batch => "batch",
            Config::Incremental => "incr",
            Config::DemandDriven => "dd",
            Config::IncrementalDemandDriven => "incr+dd",
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A program edit, uniformly describing the §7.3 workload operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramEdit {
    /// Replace the statement on an edge.
    Relabel {
        /// Function containing the edge.
        func: Symbol,
        /// The edge.
        edge: EdgeId,
        /// The new statement.
        stmt: Stmt,
    },
    /// Insert a structured block before an edge's statement.
    Insert {
        /// Function containing the edge.
        func: Symbol,
        /// The insertion point.
        edge: EdgeId,
        /// The block to insert.
        block: Block,
    },
}

/// Errors surfaced by the driver.
#[derive(Debug)]
pub enum DriverError {
    /// A CFG-level edit failure.
    Cfg(CfgError),
    /// A DAIG-level failure.
    Daig(DaigError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Cfg(e) => write!(f, "{e}"),
            DriverError::Daig(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<CfgError> for DriverError {
    fn from(e: CfgError) -> DriverError {
        DriverError::Cfg(e)
    }
}

impl From<DaigError> for DriverError {
    fn from(e: DaigError) -> DriverError {
        DriverError::Daig(e)
    }
}

/// One of the paper's four analysis pipelines over an evolving program.
pub struct Driver<D: AbstractDomain> {
    config: Config,
    policy: ContextPolicy,
    entry_fn: Symbol,
    phi0: D,
    strategy: crate::strategy::FixStrategy,
    analyzer: InterAnalyzer<D>,
}

impl<D: AbstractDomain> Driver<D> {
    /// Creates a driver for `config` over `program` with the paper's
    /// default iteration strategy.
    pub fn new(
        config: Config,
        program: LoweredProgram,
        policy: ContextPolicy,
        entry_fn: &str,
        phi0: D,
    ) -> Driver<D> {
        Driver::with_strategy(
            config,
            program,
            policy,
            entry_fn,
            phi0,
            crate::strategy::FixStrategy::PAPER,
        )
    }

    /// Like [`Driver::new`] but with an explicit loop-head iteration
    /// strategy (see [`crate::strategy`]).
    pub fn with_strategy(
        config: Config,
        program: LoweredProgram,
        policy: ContextPolicy,
        entry_fn: &str,
        phi0: D,
        strategy: crate::strategy::FixStrategy,
    ) -> Driver<D> {
        let analyzer =
            InterAnalyzer::with_strategy(program, policy, entry_fn, phi0.clone(), strategy);
        Driver {
            config,
            policy,
            entry_fn: Symbol::new(entry_fn),
            phi0,
            strategy,
            analyzer,
        }
    }

    /// The driver's configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// The analyzer (for inspection).
    pub fn analyzer(&self) -> &InterAnalyzer<D> {
        &self.analyzer
    }

    /// Applies one edit under this configuration's semantics, including
    /// any eager recomputation the configuration mandates. Returns only
    /// after the configuration's per-edit work is complete, so wall-clock
    /// measurement of this call is the "analysis execution" latency of the
    /// exhaustive configurations.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] on malformed edits or internal failures.
    pub fn apply_edit(&mut self, edit: &ProgramEdit) -> Result<(), DriverError> {
        match self.config {
            Config::Batch => {
                // Structural update without reuse: rebuild from scratch,
                // then exhaustively analyze.
                self.apply_structural(edit)?;
                let program = self.analyzer.program().clone();
                self.analyzer = InterAnalyzer::with_strategy(
                    program,
                    self.policy,
                    self.entry_fn.as_str(),
                    self.phi0.clone(),
                    self.strategy,
                );
                self.analyzer.evaluate_everything()?;
            }
            Config::Incremental => {
                // Minimal dirtying, eager recomputation.
                self.apply_structural(edit)?;
                self.analyzer.evaluate_everything()?;
            }
            Config::DemandDriven => {
                // Full dirtying, lazy recomputation.
                self.apply_structural(edit)?;
                self.analyzer.dirty_everything();
            }
            Config::IncrementalDemandDriven => {
                // Minimal dirtying, lazy recomputation.
                self.apply_structural(edit)?;
            }
        }
        Ok(())
    }

    fn apply_structural(&mut self, edit: &ProgramEdit) -> Result<(), DriverError> {
        match edit {
            ProgramEdit::Relabel { func, edge, stmt } => {
                self.analyzer.relabel(func.as_str(), *edge, stmt.clone())?;
            }
            ProgramEdit::Insert { func, edge, block } => {
                self.analyzer.splice(func.as_str(), *edge, block)?;
            }
        }
        Ok(())
    }

    /// Answers a query for the abstract state at `loc` of `func`, joined
    /// over calling contexts. In the demand-driven configurations this is
    /// where analysis work happens; in the exhaustive ones it is a lookup
    /// plus (possibly) cheap re-derivation.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] for unknown targets or internal failures.
    pub fn query(&mut self, func: &str, loc: Loc) -> Result<D, DriverError> {
        Ok(self.analyzer.query_joined(func, loc)?)
    }

    /// The current program size in CFG edges (the Fig. 10 x-axis).
    pub fn program_size(&self) -> usize {
        self.analyzer
            .program()
            .cfgs()
            .iter()
            .map(|c| c.edge_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_domains::interval::Interval;
    use dai_domains::IntervalDomain;
    use dai_lang::cfg::lower_program;
    use dai_lang::parser::{parse_block, parse_program};

    const SRC: &str = r#"
        function inc(x) { return x + 1; }
        function main() {
            var a = 1;
            var b = inc(a);
            var s = 0;
            var i = 0;
            while (i < b) { s = s + i; i = i + 1; }
            return s;
        }
    "#;

    fn mk(config: Config) -> Driver<IntervalDomain> {
        let program = lower_program(&parse_program(SRC).unwrap()).unwrap();
        Driver::new(
            config,
            program,
            ContextPolicy::Insensitive,
            "main",
            IntervalDomain::top(),
        )
    }

    fn exit_loc(d: &Driver<IntervalDomain>) -> Loc {
        d.analyzer().program().by_name("main").unwrap().exit()
    }

    #[test]
    fn all_configs_agree_on_initial_program() {
        let mut results = Vec::new();
        for config in Config::ALL {
            let mut d = mk(config);
            let loc = exit_loc(&d);
            results.push(d.query("main", loc).unwrap());
        }
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn all_configs_agree_after_edits() {
        // Apply the same edit sequence under each configuration and check
        // the final query answers agree (from-scratch consistency across
        // configurations).
        let mut finals = Vec::new();
        for config in Config::ALL {
            let mut d = mk(config);
            let loc = exit_loc(&d);
            let _ = d.query("main", loc).unwrap();
            let a_edge = d
                .analyzer()
                .program()
                .by_name("main")
                .unwrap()
                .edges()
                .find(|e| e.stmt.to_string() == "a = 1")
                .unwrap()
                .id;
            d.apply_edit(&ProgramEdit::Relabel {
                func: Symbol::new("main"),
                edge: a_edge,
                stmt: Stmt::Assign("a".into(), dai_lang::parse_expr("3").unwrap()),
            })
            .unwrap();
            let _ = d.query("main", loc).unwrap();
            let ret_edge = d
                .analyzer()
                .program()
                .by_name("main")
                .unwrap()
                .edges()
                .find(|e| e.stmt.to_string().contains("__ret"))
                .unwrap()
                .id;
            d.apply_edit(&ProgramEdit::Insert {
                func: Symbol::new("main"),
                edge: ret_edge,
                block: parse_block("s = s + 100;").unwrap(),
            })
            .unwrap();
            finals.push(d.query("main", loc).unwrap());
        }
        for r in &finals[1..] {
            assert_eq!(*r, finals[0]);
        }
        // And the result reflects both edits: s >= 100 at exit.
        let s = finals[0].interval_of("s");
        assert!(s.contains(100), "{s}");
    }

    #[test]
    fn interprocedural_call_result_flows_back() {
        let mut d = mk(Config::IncrementalDemandDriven);
        let loc = exit_loc(&d);
        let v = d.query("main", loc).unwrap();
        // b = inc(1) = 2.
        assert_eq!(v.interval_of("b"), Interval::constant(2));
    }

    #[test]
    fn editing_callee_dirties_caller() {
        let mut d = mk(Config::IncrementalDemandDriven);
        let loc = exit_loc(&d);
        let before = d.query("main", loc).unwrap();
        assert_eq!(before.interval_of("b"), Interval::constant(2));
        // Change inc to add 10.
        let inc_edge = d
            .analyzer()
            .program()
            .by_name("inc")
            .unwrap()
            .edges()
            .find(|e| e.stmt.to_string().contains("__ret"))
            .unwrap()
            .id;
        d.apply_edit(&ProgramEdit::Relabel {
            func: Symbol::new("inc"),
            edge: inc_edge,
            stmt: Stmt::Assign(
                dai_lang::RETURN_VAR.into(),
                dai_lang::parse_expr("x + 10").unwrap(),
            ),
        })
        .unwrap();
        let after = d.query("main", loc).unwrap();
        assert_eq!(after.interval_of("b"), Interval::constant(11));
    }

    #[test]
    fn program_size_grows_with_insertions() {
        let mut d = mk(Config::IncrementalDemandDriven);
        let before = d.program_size();
        let edge = d
            .analyzer()
            .program()
            .by_name("main")
            .unwrap()
            .edges()
            .next()
            .unwrap()
            .id;
        d.apply_edit(&ProgramEdit::Insert {
            func: Symbol::new("main"),
            edge,
            block: parse_block("var z = 5; z = z + 1;").unwrap(),
        })
        .unwrap();
        assert_eq!(d.program_size(), before + 2);
    }
}
