//! Pretty-printers: AST back to parseable source, and CFG to a readable
//! edge listing.
//!
//! `parse ∘ pretty` is the identity on ASTs (checked by a property test in
//! the workspace integration suite), which the workload generator relies on
//! when persisting randomly generated programs for debugging.

use crate::ast::{AstStmt, Block, Expr, Function, Program, Stmt};
use crate::cfg::Cfg;
use std::fmt::Write as _;

/// Renders a whole program as parseable source text.
pub fn program_to_source(program: &Program) -> String {
    let mut out = String::new();
    for f in &program.functions {
        function_to_source(f, &mut out);
        out.push('\n');
    }
    out
}

fn function_to_source(f: &Function, out: &mut String) {
    let params: Vec<&str> = f.params.iter().map(|p| p.as_str()).collect();
    let _ = writeln!(out, "function {}({}) {{", f.name, params.join(", "));
    block_to_source(&f.body, 1, out);
    out.push_str("}\n");
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Renders a block's statements at the given indentation depth.
pub fn block_to_source(block: &Block, depth: usize, out: &mut String) {
    for stmt in &block.0 {
        stmt_to_source(stmt, depth, out);
    }
}

fn stmt_to_source(stmt: &AstStmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match stmt {
        AstStmt::Simple(s) => {
            let _ = writeln!(out, "{};", simple_to_source(s));
        }
        AstStmt::If { cond, then_, else_ } => {
            let _ = writeln!(out, "if ({cond}) {{");
            block_to_source(then_, depth + 1, out);
            if else_.is_empty() {
                indent(depth, out);
                out.push_str("}\n");
            } else {
                indent(depth, out);
                out.push_str("} else {\n");
                block_to_source(else_, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
        AstStmt::While { cond, body } => {
            let _ = writeln!(out, "while ({cond}) {{");
            block_to_source(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        AstStmt::Nested(block) => {
            out.push_str("{\n");
            block_to_source(block, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        AstStmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {e};");
        }
        AstStmt::Return(None) => {
            out.push_str("return;\n");
        }
    }
}

fn simple_to_source(s: &Stmt) -> String {
    match s {
        // `skip` is not surface syntax; an empty statement parses to it.
        Stmt::Skip => String::new(),
        Stmt::Assign(x, Expr::AllocNode) => format!("{x} = new Node()"),
        other => other.to_string(),
    }
}

/// Renders a CFG as one `src -[stmt]-> dst` line per edge, in edge order,
/// annotating loop heads.
pub fn cfg_to_string(cfg: &Cfg) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "function {}({}) entry={} exit={}",
        cfg.name(),
        cfg.params()
            .iter()
            .map(|p| p.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        cfg.entry(),
        cfg.exit()
    );
    for e in cfg.edges() {
        let mark = if cfg.is_back_edge(e.id) {
            " (back)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {}: {} -[{}]-> {}{}",
            e.id, e.src, e.stmt, e.dst, mark
        );
    }
    for head in cfg.loop_heads() {
        let _ = writeln!(out, "  loop head: {head}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use crate::parser::parse_program;

    #[test]
    fn roundtrip_simple_program() {
        let src = "function main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } while (x < 9) { x = x + 1; } return x; }";
        let prog = parse_program(src).unwrap();
        let printed = program_to_source(&prog);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn roundtrip_heap_and_arrays() {
        let src = "function f(p) { var n = new Node(); n.next = p; var a = [1, 2]; a[0] = len(a); var x = g(a[1], n.next); return x; } function g(i, q) { return i; }";
        let prog = parse_program(src).unwrap();
        let reparsed = parse_program(&program_to_source(&prog)).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn cfg_listing_mentions_back_edges() {
        let prog =
            parse_program("function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }")
                .unwrap();
        let lowered = lower_program(&prog).unwrap();
        let s = cfg_to_string(lowered.by_name("f").unwrap());
        assert!(s.contains("(back)"));
        assert!(s.contains("loop head"));
    }
}
