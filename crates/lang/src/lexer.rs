//! Lexer for the subject language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Identifier (also carries keywords' spellings before classification).
    Ident(String),
    /// `function`
    Function,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `do`
    Do,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `new`
    New,
    /// `print`
    Print,
    /// `len`
    Len,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(n) => write!(f, "{n}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Function => write!(f, "function"),
            Token::Var => write!(f, "var"),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::While => write!(f, "while"),
            Token::For => write!(f, "for"),
            Token::Do => write!(f, "do"),
            Token::Return => write!(f, "return"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Null => write!(f, "null"),
            Token::New => write!(f, "new"),
            Token::Print => write!(f, "print"),
            Token::Len => write!(f, "len"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
        }
    }
}

/// A token paired with its byte offset in the source, for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// An error produced during lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset at which the error occurred.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, skipping whitespace and `//` line comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters, bare `&`/`|`, or integer
/// literals that do not fit in `i64`.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text = &src[i..j];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    offset: start,
                })?;
                tokens.push(SpannedToken {
                    token: Token::Int(value),
                    offset: start,
                });
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &src[i..j];
                let token = match word {
                    "function" => Token::Function,
                    "var" => Token::Var,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "for" => Token::For,
                    "do" => Token::Do,
                    "return" => Token::Return,
                    "true" => Token::True,
                    "false" => Token::False,
                    "null" => Token::Null,
                    "new" => Token::New,
                    "print" => Token::Print,
                    "len" => Token::Len,
                    _ => Token::Ident(word.to_string()),
                };
                tokens.push(SpannedToken {
                    token,
                    offset: start,
                });
                i = j;
            }
            '(' => {
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            '{' => {
                tokens.push(SpannedToken {
                    token: Token::LBrace,
                    offset: start,
                });
                i += 1;
            }
            '}' => {
                tokens.push(SpannedToken {
                    token: Token::RBrace,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                tokens.push(SpannedToken {
                    token: Token::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                tokens.push(SpannedToken {
                    token: Token::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(SpannedToken {
                    token: Token::Semi,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(SpannedToken {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(SpannedToken {
                    token: Token::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(SpannedToken {
                    token: Token::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(SpannedToken {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(SpannedToken {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(SpannedToken {
                    token: Token::Percent,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::EqEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Assign,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Bang,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    tokens.push(SpannedToken {
                        token: Token::AndAnd,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `&&`".to_string(),
                        offset: start,
                    });
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    tokens.push(SpannedToken {
                        token: Token::OrOr,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `||`".to_string(),
                        offset: start,
                    });
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: start,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        assert_eq!(
            kinds("x = x + 1;"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Ident("x".into()),
                Token::Plus,
                Token::Int(1),
                Token::Semi
            ]
        );
    }

    #[test]
    fn lexes_keywords_vs_identifiers() {
        assert_eq!(
            kinds("while whilex if iffy"),
            vec![
                Token::While,
                Token::Ident("whilex".into()),
                Token::If,
                Token::Ident("iffy".into())
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || < > = !"),
            vec![
                Token::EqEq,
                Token::NotEq,
                Token::Le,
                Token::Ge,
                Token::AndAnd,
                Token::OrOr,
                Token::Lt,
                Token::Gt,
                Token::Assign,
                Token::Bang
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        assert_eq!(
            kinds("x // comment to end of line\n  = 2"),
            vec![Token::Ident("x".into()), Token::Assign, Token::Int(2)]
        );
    }

    #[test]
    fn rejects_stray_ampersand() {
        let err = lex("a & b").unwrap_err();
        assert!(err.message.contains("&&"));
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn rejects_out_of_range_integer() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn offsets_point_at_token_start() {
        let toks = lex("ab   ==").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 5);
    }
}
