//! Structured program edits over live CFGs.
//!
//! The paper's incremental story (§2.2, §5.3) needs three kinds of edit:
//!
//! * **relabel** — replace the statement on an edge in place (the formal
//!   `D ⊢ n ⇐ s` judgment edits a statement cell);
//! * **delete** — a relabel to `skip` (Lemma B.2's deletion convention);
//! * **insert** — splice a structured block onto an edge: the block's
//!   statements execute *before* the edge's statement. This models §7.3's
//!   workload ("insertion of a randomly generated statement, if-then-else
//!   conditional, or while loop at a randomly-sampled program location").
//!
//! A splice keeps the original edge's identity and statement but moves its
//! source to the end of the inserted chain — exactly the paper's Fig. 4b,
//! where inserting `print("p is null")` before `ret = q` leaves the
//! statement cell for `ret = q` intact (renamed `ℓ7·ℓret`) and dirties only
//! the downstream abstract states.

use crate::ast::{Block, Stmt};
use crate::cfg::{Cfg, CfgError, EdgeId, Loc, Lowerer};
use std::collections::HashSet;

/// Description of the structural effect of a splice, consumed by the DAIG
/// layer to patch its graph incrementally.
#[derive(Debug, Clone)]
pub struct SpliceInfo {
    /// The pre-existing edge whose source was moved.
    pub edge: EdgeId,
    /// The edge's source before the splice.
    pub old_src: Loc,
    /// The edge's source after the splice (end of the inserted chain).
    pub new_src: Loc,
    /// The edge's (unchanged) destination.
    pub dst: Loc,
    /// Locations created by the splice, ascending.
    pub new_locs: Vec<Loc>,
    /// Edges created by the splice, ascending.
    pub new_edges: Vec<EdgeId>,
    /// Loop heads among the new locations (inserted `while` loops).
    pub new_loop_heads: Vec<Loc>,
}

/// Replaces the statement labelling `edge`, returning the old statement.
///
/// # Errors
///
/// Returns [`CfgError::NoSuchEdge`] if the edge does not exist.
pub fn relabel_edge(cfg: &mut Cfg, edge: EdgeId, stmt: Stmt) -> Result<Stmt, CfgError> {
    let e = cfg.edge(edge).ok_or(CfgError::NoSuchEdge(edge))?;
    let old = e.stmt.clone();
    cfg.replace_edge_stmt_internal(edge, stmt);
    Ok(old)
}

/// Deletes the statement on `edge` by relabelling it `skip` (the paper's
/// deletion convention), returning the old statement.
///
/// # Errors
///
/// Returns [`CfgError::NoSuchEdge`] if the edge does not exist.
pub fn delete_edge_stmt(cfg: &mut Cfg, edge: EdgeId) -> Result<Stmt, CfgError> {
    relabel_edge(cfg, edge, Stmt::Skip)
}

/// Splices `block` onto `edge`: the block's statements run after the
/// edge's source location and before the edge's statement.
///
/// Returns a [`SpliceInfo`] describing the created structure; the CFG is
/// left validated in debug builds.
///
/// # Errors
///
/// * [`CfgError::NoSuchEdge`] if `edge` does not exist.
/// * [`CfgError::BlockNeverFallsThrough`] if every path through `block`
///   returns, which would orphan the insertion point.
pub fn splice_block_on_edge(
    cfg: &mut Cfg,
    edge: EdgeId,
    block: &Block,
) -> Result<SpliceInfo, CfgError> {
    let e = cfg.edge(edge).ok_or(CfgError::NoSuchEdge(edge))?;
    let (old_src, dst) = (e.src, e.dst);

    // Iteration context for the new locations: the loops containing both
    // endpoints (the chains are nested, so this is the shorter common
    // prefix).
    let src_chain = cfg.loops_containing(old_src);
    let dst_chain = cfg.loops_containing(dst);
    let mut ctx = Vec::new();
    for (a, b) in src_chain.iter().zip(dst_chain.iter()) {
        if a == b {
            ctx.push(*a);
        } else {
            break;
        }
    }

    let locs_before: HashSet<Loc> = cfg.locs().into_iter().collect();
    let edges_before: HashSet<EdgeId> = cfg.edges().map(|e| e.id).collect();
    let heads_before: HashSet<Loc> = cfg.loop_heads().into_iter().collect();

    let mut lowerer = Lowerer { cfg };
    let Some(new_src) = lowerer.lower_block(block, old_src, &ctx) else {
        // Roll back is unnecessary for correctness of the error path only
        // if nothing was created; conservatively reject before mutation by
        // checking fall-through on a scratch lowering would double the
        // code, so instead we forbid blocks that end in `return` at parse
        // side; reaching here means the caller violated that contract.
        return Err(CfgError::BlockNeverFallsThrough);
    };

    if new_src != old_src {
        cfg.move_edge_src_internal(edge, new_src);
    }

    let mut new_locs: Vec<Loc> = cfg
        .locs()
        .into_iter()
        .filter(|l| !locs_before.contains(l))
        .collect();
    new_locs.sort();
    let mut new_edges: Vec<EdgeId> = cfg
        .edges()
        .map(|e| e.id)
        .filter(|id| !edges_before.contains(id))
        .collect();
    new_edges.sort();
    let mut new_loop_heads: Vec<Loc> = cfg
        .loop_heads()
        .into_iter()
        .filter(|h| !heads_before.contains(h))
        .collect();
    new_loop_heads.sort();

    debug_assert_eq!(cfg.validate(), Ok(()));

    Ok(SpliceInfo {
        edge,
        old_src,
        new_src,
        dst,
        new_locs,
        new_edges,
        new_loop_heads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use crate::parser::{parse_block, parse_program};

    fn cfg_of(src: &str, name: &str) -> Cfg {
        lower_program(&parse_program(src).unwrap())
            .unwrap()
            .by_name(name)
            .unwrap()
            .clone()
    }

    #[test]
    fn relabel_preserves_structure() {
        let mut cfg = cfg_of("function f() { var x = 1; return x; }", "f");
        let edge = cfg.edges().next().unwrap().id;
        let old =
            relabel_edge(&mut cfg, edge, parse_block("x = 2;").unwrap().0[0].simple()).unwrap();
        assert_eq!(old.to_string(), "x = 1");
        assert_eq!(cfg.edge(edge).unwrap().stmt.to_string(), "x = 2");
        cfg.validate().unwrap();
    }

    #[test]
    fn delete_relabels_to_skip() {
        let mut cfg = cfg_of("function f() { var x = 1; return x; }", "f");
        let edge = cfg.edges().next().unwrap().id;
        delete_edge_stmt(&mut cfg, edge).unwrap();
        assert_eq!(cfg.edge(edge).unwrap().stmt, Stmt::Skip);
    }

    #[test]
    fn splice_statement_moves_edge_source_like_fig4b() {
        // Mirror Fig. 4b: insert a print before `return q`.
        let mut cfg = cfg_of(
            "function append(p, q) { if (p == null) { return q; } return p; }",
            "append",
        );
        let ret_q = cfg
            .edges()
            .find(|e| e.stmt.to_string().contains("= q"))
            .unwrap()
            .id;
        let before_dst = cfg.edge(ret_q).unwrap().dst;
        let info =
            splice_block_on_edge(&mut cfg, ret_q, &parse_block("print(0);").unwrap()).unwrap();
        assert_eq!(info.new_locs.len(), 1);
        assert_eq!(info.new_edges.len(), 1);
        let e = cfg.edge(ret_q).unwrap();
        assert_eq!(e.src, info.new_src);
        assert_eq!(e.dst, before_dst);
        assert!(e.stmt.to_string().contains("= q"));
        cfg.validate().unwrap();
    }

    #[test]
    fn splice_inside_loop_keeps_single_back_edge() {
        let mut cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        let head = cfg.loop_heads()[0];
        let back = cfg.back_edge(head).unwrap();
        let info =
            splice_block_on_edge(&mut cfg, back, &parse_block("print(i);").unwrap()).unwrap();
        cfg.validate().unwrap();
        assert_eq!(cfg.back_edge(head), Some(back));
        // The new location is inside the loop.
        assert_eq!(cfg.enclosing_loops(info.new_locs[0]), vec![head]);
    }

    #[test]
    fn splice_while_creates_nested_loop() {
        let mut cfg = cfg_of(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        let head = cfg.loop_heads()[0];
        let back = cfg.back_edge(head).unwrap();
        let info = splice_block_on_edge(
            &mut cfg,
            back,
            &parse_block("var j = 0; while (j < 2) { j = j + 1; }").unwrap(),
        )
        .unwrap();
        cfg.validate().unwrap();
        assert_eq!(info.new_loop_heads.len(), 1);
        let inner = info.new_loop_heads[0];
        assert_eq!(cfg.enclosing_loops(inner), vec![head]);
    }

    #[test]
    fn splice_if_creates_join() {
        let mut cfg = cfg_of("function f() { var x = 1; return x; }", "f");
        let edge = cfg
            .edges()
            .find(|e| e.stmt.to_string() == "x = 1")
            .unwrap()
            .id;
        let joins_before = cfg.locs().iter().filter(|&&l| cfg.is_join(l)).count();
        splice_block_on_edge(
            &mut cfg,
            edge,
            &parse_block("if (x > 0) { x = 2; } else { x = 3; }").unwrap(),
        )
        .unwrap();
        cfg.validate().unwrap();
        let joins_after = cfg.locs().iter().filter(|&&l| cfg.is_join(l)).count();
        assert_eq!(joins_after, joins_before + 1);
    }

    #[test]
    fn splice_empty_block_is_identity() {
        let mut cfg = cfg_of("function f() { var x = 1; return x; }", "f");
        let edge = cfg.edges().next().unwrap().id;
        let info = splice_block_on_edge(&mut cfg, edge, &Block::new()).unwrap();
        assert!(info.new_locs.is_empty());
        assert_eq!(info.new_src, info.old_src);
        cfg.validate().unwrap();
    }

    #[test]
    fn splice_on_self_loop_back_edge() {
        let mut cfg = cfg_of("function f(b) { while (b == 0) { } return b; }", "f");
        let head = cfg.loop_heads()[0];
        let back = cfg.back_edge(head).unwrap();
        splice_block_on_edge(&mut cfg, back, &parse_block("print(b);").unwrap()).unwrap();
        cfg.validate().unwrap();
        // Still exactly one back edge; the assume now routes through the
        // inserted location.
        assert!(cfg.back_edge(head).is_some());
    }

    #[test]
    fn splice_missing_edge_errors() {
        let mut cfg = cfg_of("function f() { return 0; }", "f");
        let err = splice_block_on_edge(&mut cfg, EdgeId(999), &Block::new()).unwrap_err();
        assert!(matches!(err, CfgError::NoSuchEdge(_)));
    }

    impl crate::ast::AstStmt {
        fn simple(&self) -> Stmt {
            match self {
                crate::ast::AstStmt::Simple(s) => s.clone(),
                other => panic!("not a simple statement: {other:?}"),
            }
        }
    }
}
