//! Recursive-descent parser for the subject language.
//!
//! Grammar (simplified):
//!
//! ```text
//! program   := function*
//! function  := "function" ident "(" params? ")" block
//! block     := "{" stmt* "}"
//! stmt      := ["var"] ident "=" rhs ";"
//!            | ident "[" expr "]" "=" expr ";"
//!            | ident "." ident "=" expr ";"
//!            | ident "(" args? ")" ";"
//!            | "print" "(" expr ")" ";"
//!            | "if" "(" expr ")" block ["else" block]
//!            | "while" "(" expr ")" block
//!            | "for" "(" simple ";" expr ";" simple ")" block
//!            | "do" block "while" "(" expr ")" ";"
//!            | "return" [expr] ";"
//!            | ";"
//! rhs       := "new" ident "(" ")" | ident "(" args? ")" | expr
//! simple    := ["var"] ident "=" rhs | ident "[" expr "]" "=" expr | …
//! ```
//!
//! Calls appear only as whole statements (`x = f(y);` or `f(y);`), matching
//! the paper's "function calls of the form `x = f(y)`" (§7.3); expressions
//! are otherwise pure.
//!
//! `for` and `do`-`while` are **surface sugar**, desugared at parse time to
//! the `while` core the formalism (and the CFG lowering) knows:
//! `for (init; c; upd) B` becomes `init; while (c) { B; upd; }`, and
//! `do B while (c);` becomes `B; while (c) B` (body duplicated — the
//! standard desugaring; both copies get distinct CFG edges). Every
//! construct therefore still lowers to a reducible flow graph.

use crate::ast::{AstStmt, BinOp, Block, Expr, Function, Program, Stmt, UnOp};
use crate::lexer::{lex, LexError, SpannedToken, Token};
use crate::Symbol;
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending token (source length at end-of-input).
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses a whole program (a sequence of `function` definitions).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        eof_offset: src.len(),
    };
    let mut functions = Vec::new();
    while !p.at_end() {
        functions.push(p.function()?);
    }
    Ok(Program { functions })
}

/// Parses a brace-less sequence of statements (e.g. a snippet to splice into
/// a program during an edit).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_block(src: &str) -> Result<Block, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        eof_offset: src.len(),
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.stmt()?);
    }
    Ok(Block(stmts))
}

/// Parses a single expression, requiring all input to be consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        eof_offset: src.len(),
    };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.error_here("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    eof_offset: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.eof_offset, |t| t.offset)
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            offset: self.here(),
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error_here(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.error_here(format!("expected `{want}`, found end of input"))),
        }
    }

    fn eat_if(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<Symbol, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let sym = Symbol::new(s);
                self.pos += 1;
                Ok(sym)
            }
            Some(t) => Err(self.error_here(format!("expected identifier, found `{t}`"))),
            None => Err(self.error_here("expected identifier, found end of input")),
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        self.eat(&Token::Function)?;
        let name = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.at_end() {
                return Err(self.error_here("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Token::RBrace)?;
        Ok(Block(stmts))
    }

    fn stmt(&mut self) -> Result<AstStmt, ParseError> {
        match self.peek() {
            Some(Token::Semi) => {
                self.pos += 1;
                Ok(AstStmt::Simple(Stmt::Skip))
            }
            Some(Token::If) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let then_ = self.block()?;
                let else_ = if self.eat_if(&Token::Else) {
                    self.block()?
                } else {
                    Block::new()
                };
                Ok(AstStmt::If { cond, then_, else_ })
            }
            Some(Token::While) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.block()?;
                Ok(AstStmt::While { cond, body })
            }
            Some(Token::For) => {
                // Sugar: `for (init; cond; update) B` desugars to
                // `{ init; while (cond) { B; update; } }`.
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let init = self.simple_stmt()?;
                self.eat(&Token::Semi)?;
                let cond = self.expr()?;
                self.eat(&Token::Semi)?;
                let update = self.simple_stmt()?;
                self.eat(&Token::RParen)?;
                let mut body = self.block()?;
                body.0.push(AstStmt::Simple(update));
                Ok(AstStmt::Nested(Block(vec![
                    AstStmt::Simple(init),
                    AstStmt::While { cond, body },
                ])))
            }
            Some(Token::Do) => {
                // Sugar: `do B while (c);` desugars to `{ B; while (c) B }`
                // — the body runs once, then re-runs while `c` holds (the
                // standard body-duplicating desugaring; each copy gets its
                // own CFG edges).
                self.pos += 1;
                let body = self.block()?;
                self.eat(&Token::While)?;
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                self.eat(&Token::Semi)?;
                let mut once = body.clone();
                once.0.push(AstStmt::While { cond, body });
                Ok(AstStmt::Nested(once))
            }
            Some(Token::LBrace) => Ok(AstStmt::Nested(self.block()?)),
            Some(Token::Return) => {
                self.pos += 1;
                let value = if self.peek() == Some(&Token::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Token::Semi)?;
                Ok(AstStmt::Return(value))
            }
            Some(Token::Print) | Some(Token::Var) | Some(Token::Ident(_)) => {
                let stmt = self.simple_stmt()?;
                self.eat(&Token::Semi)?;
                Ok(AstStmt::Simple(stmt))
            }
            Some(t) => Err(self.error_here(format!("expected statement, found `{t}`"))),
            None => Err(self.error_here("expected statement, found end of input")),
        }
    }

    /// Parses a semicolon-less atomic statement: assignments (with optional
    /// `var`), array/field writes, calls, and `print`. Used both for
    /// ordinary statements (the caller eats the `;`) and for `for`-loop
    /// initializers/updates (which have none).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Print) => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(Stmt::Print(e))
            }
            Some(Token::Var) => {
                self.pos += 1;
                let name = self.ident()?;
                self.eat(&Token::Assign)?;
                self.assignment_rhs(name)
            }
            Some(Token::Ident(_)) => {
                let name = self.ident()?;
                match self.peek() {
                    Some(Token::Assign) => {
                        self.pos += 1;
                        self.assignment_rhs(name)
                    }
                    Some(Token::LBracket) => {
                        self.pos += 1;
                        let index = self.expr()?;
                        self.eat(&Token::RBracket)?;
                        self.eat(&Token::Assign)?;
                        let value = self.expr()?;
                        Ok(Stmt::ArrayWrite(name, index, value))
                    }
                    Some(Token::Dot) => {
                        self.pos += 1;
                        let field = self.ident()?;
                        self.eat(&Token::Assign)?;
                        let value = self.expr()?;
                        Ok(Stmt::FieldWrite(name, field, value))
                    }
                    Some(Token::LParen) => {
                        let args = self.call_args()?;
                        Ok(Stmt::Call {
                            lhs: None,
                            callee: name,
                            args,
                        })
                    }
                    _ => Err(self.error_here("expected `=`, `[`, `.`, or `(` after identifier")),
                }
            }
            Some(t) => Err(self.error_here(format!("expected a simple statement, found `{t}`"))),
            None => Err(self.error_here("expected a simple statement, found end of input")),
        }
    }

    /// Parses the right-hand side of `x = ...`, which may be a call,
    /// an allocation, or a pure expression.
    fn assignment_rhs(&mut self, lhs: Symbol) -> Result<Stmt, ParseError> {
        match (self.peek(), self.peek2()) {
            (Some(Token::New), _) => {
                self.pos += 1;
                let _class = self.ident()?;
                self.eat(&Token::LParen)?;
                self.eat(&Token::RParen)?;
                Ok(Stmt::Assign(lhs, Expr::AllocNode))
            }
            (Some(Token::Ident(_)), Some(Token::LParen)) => {
                let callee = self.ident()?;
                let args = self.call_args()?;
                Ok(Stmt::Call {
                    lhs: Some(lhs),
                    callee,
                    args,
                })
            }
            _ => Ok(Stmt::Assign(lhs, self.expr()?)),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.eat(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_if(&Token::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_if(&Token::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::EqEq) => BinOp::Eq,
            Some(Token::NotEq) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.pos += 1;
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let e = self.unary_expr()?;
                // Fold negated literals so printing `-5` round-trips.
                match e {
                    Expr::Int(n) => Ok(Expr::Int(-n)),
                    e => Ok(Expr::Unary(UnOp::Neg, Box::new(e))),
                }
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Some(Token::LBracket) => {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.eat(&Token::RBracket)?;
                    e = Expr::ArrayRead(Box::new(e), Box::new(index));
                }
                Some(Token::Dot) => {
                    self.pos += 1;
                    let field = self.ident()?;
                    e = Expr::Field(Box::new(e), field);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(Token::Int(n)) => Ok(Expr::Int(n)),
            Some(Token::True) => Ok(Expr::Bool(true)),
            Some(Token::False) => Ok(Expr::Bool(false)),
            Some(Token::Null) => Ok(Expr::Null),
            Some(Token::Ident(s)) => Ok(Expr::Var(Symbol::new(&s))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::LBracket) => {
                let mut elems = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat_if(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.eat(&Token::RBracket)?;
                Ok(Expr::ArrayLit(elems))
            }
            Some(Token::Len) => {
                self.eat(&Token::LParen)?;
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(Expr::ArrayLen(Box::new(e)))
            }
            Some(t) => {
                self.pos -= 1;
                Err(self.error_here(format!("expected expression, found `{t}`")))
            }
            None => Err(self.error_here("expected expression, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_append_from_paper_fig1() {
        let src = r#"
            function append(p, q) {
                if (p == null) { return q; }
                var r = p;
                while (r.next != null) { r = r.next; }
                r.next = q;
                return p;
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.functions.len(), 1);
        let f = &prog.functions[0];
        assert_eq!(f.name.as_str(), "append");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 5);
        assert!(matches!(f.body.0[0], AstStmt::If { .. }));
        assert!(matches!(f.body.0[2], AstStmt::While { .. }));
    }

    #[test]
    fn parses_calls_only_at_statement_level() {
        let prog = parse_program("function main() { var x = f(1, 2); g(); }").unwrap();
        let body = &prog.functions[0].body.0;
        assert!(matches!(
            &body[0],
            AstStmt::Simple(Stmt::Call { lhs: Some(_), args, .. }) if args.len() == 2
        ));
        assert!(matches!(
            &body[1],
            AstStmt::Simple(Stmt::Call { lhs: None, args, .. }) if args.is_empty()
        ));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn precedence_cmp_below_arith_above_bool() {
        let e = parse_expr("a + 1 < b && c == d").unwrap();
        assert_eq!(e.to_string(), "(((a + 1) < b) && (c == d))");
    }

    #[test]
    fn parses_array_forms() {
        let prog =
            parse_program("function main() { var a = [1, 2, 3]; a[0] = a[1] + len(a); }").unwrap();
        let body = &prog.functions[0].body.0;
        assert!(
            matches!(&body[0], AstStmt::Simple(Stmt::Assign(_, Expr::ArrayLit(v))) if v.len() == 3)
        );
        assert!(matches!(&body[1], AstStmt::Simple(Stmt::ArrayWrite(..))));
    }

    #[test]
    fn parses_heap_forms() {
        let prog =
            parse_program("function main() { var n = new Node(); n.next = null; var m = n.next; }")
                .unwrap();
        let body = &prog.functions[0].body.0;
        assert!(matches!(
            &body[0],
            AstStmt::Simple(Stmt::Assign(_, Expr::AllocNode))
        ));
        assert!(matches!(&body[1], AstStmt::Simple(Stmt::FieldWrite(..))));
        assert!(matches!(
            &body[2],
            AstStmt::Simple(Stmt::Assign(_, Expr::Field(..)))
        ));
    }

    #[test]
    fn parses_nested_control_flow() {
        let prog = parse_program(
            "function f(n) { var i = 0; while (i < n) { if (i % 2 == 0) { i = i + 1; } else { i = i + 2; } } return i; }",
        )
        .unwrap();
        match &prog.functions[0].body.0[1] {
            AstStmt::While { body, .. } => {
                assert!(matches!(body.0[0], AstStmt::If { .. }));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn empty_statement_is_skip() {
        let b = parse_block(";;").unwrap();
        assert_eq!(
            b.0,
            vec![AstStmt::Simple(Stmt::Skip), AstStmt::Simple(Stmt::Skip)]
        );
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_program("function f() { x = 1 }").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_expr("1 + ").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn parse_expr_rejects_trailing_tokens() {
        assert!(parse_expr("1 + 2 3").is_err());
    }

    #[test]
    fn unary_chains() {
        let e = parse_expr("!!b").unwrap();
        assert_eq!(e.to_string(), "!(!(b))");
        let e = parse_expr("--x").unwrap();
        assert_eq!(e.to_string(), "-(-(x))");
    }

    #[test]
    fn postfix_chains() {
        let e = parse_expr("m[i][j].next").unwrap();
        assert!(matches!(e, Expr::Field(..)));
    }

    #[test]
    fn for_loop_desugars_to_init_plus_while() {
        let b = parse_block("for (var i = 0; i < 10; i = i + 1) { s = s + i; }").unwrap();
        let AstStmt::Nested(inner) = &b.0[0] else {
            panic!("expected nested block")
        };
        assert_eq!(inner.0.len(), 2);
        assert!(matches!(&inner.0[0], AstStmt::Simple(Stmt::Assign(x, _)) if x.as_str() == "i"));
        let AstStmt::While { cond, body } = &inner.0[1] else {
            panic!("expected while")
        };
        assert_eq!(cond.to_string(), "(i < 10)");
        // Body carries the update as its last statement.
        assert_eq!(body.0.len(), 2);
        assert!(matches!(&body.0[1], AstStmt::Simple(Stmt::Assign(x, _)) if x.as_str() == "i"));
    }

    #[test]
    fn for_loop_update_may_be_array_or_field_write() {
        let b = parse_block("for (i = 0; i < 3; a[i] = 1) { ; }").unwrap();
        let AstStmt::Nested(inner) = &b.0[0] else {
            panic!()
        };
        let AstStmt::While { body, .. } = &inner.0[1] else {
            panic!()
        };
        assert!(matches!(
            body.0.last(),
            Some(AstStmt::Simple(Stmt::ArrayWrite(..)))
        ));
    }

    #[test]
    fn do_while_desugars_to_body_then_while() {
        let b = parse_block("do { x = x + 1; } while (x < 5);").unwrap();
        let AstStmt::Nested(inner) = &b.0[0] else {
            panic!("expected nested block")
        };
        assert_eq!(inner.0.len(), 2, "one unrolled body statement + the while");
        assert!(matches!(&inner.0[0], AstStmt::Simple(Stmt::Assign(..))));
        let AstStmt::While { body, .. } = &inner.0[1] else {
            panic!("expected while")
        };
        assert_eq!(body.0.len(), 1);
    }

    #[test]
    fn bare_blocks_parse_as_nested() {
        let b = parse_block("{ var x = 1; { x = 2; } }").unwrap();
        let AstStmt::Nested(outer) = &b.0[0] else {
            panic!()
        };
        assert!(matches!(&outer.0[1], AstStmt::Nested(_)));
    }

    #[test]
    fn for_loop_errors_are_reported() {
        assert!(
            parse_block("for (var i = 0; i < 10) { }").is_err(),
            "missing update"
        );
        assert!(
            parse_block("for (; i < 10; i = i + 1) { }").is_err(),
            "missing init"
        );
        assert!(parse_block("do { } while (x);").is_ok());
        assert!(
            parse_block("do { } while (x)").is_err(),
            "missing semicolon"
        );
    }
}
