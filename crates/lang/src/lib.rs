//! # dai-lang — the subject language for demanded abstract interpretation
//!
//! This crate provides everything the DAIG framework (crate `dai-core`)
//! needs from a "program under analysis", mirroring the generic language of
//! the paper's Fig. 5:
//!
//! * an [`ast`] for a JavaScript-like imperative subset (assignments,
//!   arrays, conditionals, `while` loops — with `for`, `do`-`while`, and
//!   lexical blocks as parse-time sugar — non-recursive first-order calls,
//!   and heap list nodes),
//! * a hand-written [`lexer`] and recursive-descent [`parser`],
//! * edge-labelled control-flow graphs ([`cfg`](mod@cfg)) with the standard
//!   structural analyses (dominators, back edges, natural loops) in
//!   [`loops`],
//! * a concrete interpreter and location-indexed collecting semantics
//!   ([`interp`]) used to *test* analysis soundness, and
//! * structured program-edit primitives ([`edit`]) that keep CFGs and their
//!   loop structure consistent under the random edit workload of §7.3.
//!
//! ## Quick example
//!
//! ```
//! use dai_lang::parse_program;
//!
//! let program = parse_program(
//!     "function main() { var i = 0; while (i < 10) { i = i + 1; } return i; }",
//! )?;
//! let cfgs = dai_lang::cfg::lower_program(&program)?;
//! let main = &cfgs.by_name("main").unwrap();
//! assert!(main.edge_count() >= 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod cfg;
pub mod edit;
pub mod interp;
pub mod lexer;
pub mod loops;
pub mod parser;
pub mod pretty;

pub use ast::{AstStmt, BinOp, Block, Expr, Function, Program, Stmt, UnOp};
pub use cfg::{Cfg, CfgError, EdgeId, Loc, LoweredProgram};
pub use parser::{parse_block, parse_expr, parse_program, ParseError};

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An interned-ish string: cheap to clone, hash, and compare.
///
/// Variable, field, and function names are `Symbol`s. Backed by an
/// `Arc<str>` so cloning a symbol is a reference-count bump; abstract
/// domain states clone names heavily during joins and widenings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from a string.
    pub fn new(s: impl AsRef<str>) -> Symbol {
        Symbol(Arc::from(s.as_ref()))
    }

    /// Views the symbol as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol(Arc::from(s.as_str()))
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// The distinguished variable receiving a function's return value.
///
/// Lowering turns `return e;` into the atomic assignment `__ret = e` on an
/// edge into the function's exit location, exactly as `ret = p;` in the
/// paper's Fig. 2.
pub const RETURN_VAR: &str = "__ret";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_equality_and_borrow() {
        let a = Symbol::new("foo");
        let b: Symbol = "foo".into();
        assert_eq!(a, b);
        let set: std::collections::HashSet<Symbol> = [a.clone()].into_iter().collect();
        assert!(set.contains("foo"));
        assert_eq!(a.to_string(), "foo");
    }

    #[test]
    fn symbol_ordering_is_lexicographic() {
        let mut v = [Symbol::new("b"), Symbol::new("a"), Symbol::new("c")];
        v.sort();
        assert_eq!(
            v.iter().map(Symbol::as_str).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }
}
