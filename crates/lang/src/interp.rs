//! Concrete semantics: a definitional interpreter over CFGs, plus a bounded
//! collecting semantics.
//!
//! The paper (Fig. 5) assumes a denotational statement semantics
//! `⟦·⟧ : Stmt → Σ → Σ⊥` and its transitive closure, the collecting
//! semantics `⟦ℓ⟧*` — the set of concrete states witnessed at each
//! location. That collecting semantics is uncomputable in general; here we
//! compute a *bounded under-approximation* by exhaustive exploration with a
//! step budget, which is exactly what is needed to **test** analysis
//! soundness: every concrete state we witness at `ℓ` must be modelled by
//! the abstract state a DAIG query returns for `ℓ`.
//!
//! Semantics notes:
//!
//! * Arrays are **values** (copied on assignment); heap `Node`s are
//!   **references** into an explicit heap. The abstract domains make the
//!   matching choices.
//! * `assume e` blocks (yields no successor state) unless `e` evaluates to
//!   `true`; both branch edges are explored, so exploration covers all
//!   executions.
//! * Runtime errors (null dereference, out-of-bounds access, division by
//!   zero, type confusion) halt that execution path — they are `⊥` in the
//!   paper's partial concrete semantics.

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::cfg::{Cfg, Loc, LoweredProgram};
use crate::{Symbol, RETURN_VAR};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A concrete runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Null reference.
    Null,
    /// Array of values (value semantics).
    Arr(Vec<Value>),
    /// Reference to a heap node.
    Node(NodeId),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
            Value::Arr(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Node(id) => write!(f, "node#{}", id.0),
        }
    }
}

/// Identity of a heap node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A concrete program state: environment plus heap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ConcreteState {
    /// Variable environment (sorted for deterministic comparison).
    pub env: BTreeMap<Symbol, Value>,
    /// Heap: node id → field map.
    pub heap: BTreeMap<NodeId, BTreeMap<Symbol, Value>>,
    /// Next fresh node id.
    next_node: u32,
}

impl ConcreteState {
    /// Creates an empty state.
    pub fn new() -> ConcreteState {
        ConcreteState::default()
    }

    /// Allocates a fresh node with all fields `null`-defaulted (reads of
    /// unset fields yield `null`).
    pub fn alloc_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.heap.insert(id, BTreeMap::new());
        id
    }

    /// Reads field `f` of node `id`.
    pub fn read_field(&self, id: NodeId, f: &Symbol) -> Option<Value> {
        self.heap
            .get(&id)
            .map(|fields| fields.get(f).cloned().unwrap_or(Value::Null))
    }
}

/// Why a concrete execution path halted abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Read of an undefined variable.
    UndefinedVariable(Symbol),
    /// Dereference (`.f` or `.f =`) of a non-node value.
    NullDereference,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Division or modulo by zero.
    DivisionByZero,
    /// Arithmetic overflow (the language traps rather than wrapping).
    ArithmeticOverflow,
    /// Operand of the wrong runtime type.
    TypeError(String),
    /// Call to a function not present in the program.
    UnknownFunction(Symbol),
    /// The step budget was exhausted (possibly diverging program).
    OutOfFuel,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UndefinedVariable(v) => write!(f, "undefined variable `{v}`"),
            RuntimeError::NullDereference => write!(f, "null dereference"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::ArithmeticOverflow => write!(f, "arithmetic overflow"),
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::UnknownFunction(s) => write!(f, "unknown function `{s}`"),
            RuntimeError::OutOfFuel => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Evaluates a pure expression in a state.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for undefined variables, bad indexing, null
/// dereference, division by zero, or operand type confusion.
pub fn eval(state: &ConcreteState, expr: &Expr) -> Result<Value, RuntimeError> {
    match expr {
        Expr::Int(n) => Ok(Value::Int(*n)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Null => Ok(Value::Null),
        Expr::Var(v) => state
            .env
            .get(v)
            .cloned()
            .ok_or_else(|| RuntimeError::UndefinedVariable(v.clone())),
        Expr::Unary(UnOp::Neg, e) => match eval(state, e)? {
            Value::Int(n) => n
                .checked_neg()
                .map(Value::Int)
                .ok_or(RuntimeError::ArithmeticOverflow),
            other => Err(RuntimeError::TypeError(format!("cannot negate {other}"))),
        },
        Expr::Unary(UnOp::Not, e) => match eval(state, e)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(RuntimeError::TypeError(format!(
                "cannot logically negate {other}"
            ))),
        },
        Expr::Binary(op, l, r) => {
            let lv = eval(state, l)?;
            let rv = eval(state, r)?;
            eval_binop(*op, lv, rv)
        }
        Expr::ArrayLit(es) => {
            let mut vs = Vec::with_capacity(es.len());
            for e in es {
                vs.push(eval(state, e)?);
            }
            Ok(Value::Arr(vs))
        }
        Expr::ArrayRead(a, i) => {
            let arr = eval(state, a)?;
            let idx = eval(state, i)?;
            match (arr, idx) {
                (Value::Arr(vs), Value::Int(n)) => {
                    if n < 0 || n as usize >= vs.len() {
                        Err(RuntimeError::IndexOutOfBounds {
                            index: n,
                            len: vs.len(),
                        })
                    } else {
                        Ok(vs[n as usize].clone())
                    }
                }
                (a, i) => Err(RuntimeError::TypeError(format!(
                    "cannot index {a} with {i}"
                ))),
            }
        }
        Expr::ArrayLen(a) => match eval(state, a)? {
            Value::Arr(vs) => Ok(Value::Int(vs.len() as i64)),
            other => Err(RuntimeError::TypeError(format!("len of non-array {other}"))),
        },
        Expr::Field(e, f) => match eval(state, e)? {
            Value::Node(id) => state.read_field(id, f).ok_or(RuntimeError::NullDereference),
            Value::Null => Err(RuntimeError::NullDereference),
            other => Err(RuntimeError::TypeError(format!("field read on {other}"))),
        },
        Expr::AllocNode => Err(RuntimeError::TypeError(
            "allocation outside assignment".to_string(),
        )),
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let out = match op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    Mul => a.checked_mul(b),
                    Div => {
                        if b == 0 {
                            return Err(RuntimeError::DivisionByZero);
                        }
                        a.checked_div(b)
                    }
                    Mod => {
                        if b == 0 {
                            return Err(RuntimeError::DivisionByZero);
                        }
                        a.checked_rem(b)
                    }
                    _ => unreachable!(),
                };
                out.map(Value::Int).ok_or(RuntimeError::ArithmeticOverflow)
            }
            (l, r) => Err(RuntimeError::TypeError(format!(
                "arithmetic on {l} and {r}"
            ))),
        },
        Lt | Le | Gt | Ge => match (l, r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Bool(match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            })),
            (l, r) => Err(RuntimeError::TypeError(format!(
                "comparison of {l} and {r}"
            ))),
        },
        Eq | Ne => {
            let eq = values_equal(&l, &r)?;
            Ok(Value::Bool(if op == Eq { eq } else { !eq }))
        }
        And | Or => match (l, r) {
            (Value::Bool(a), Value::Bool(b)) => {
                Ok(Value::Bool(if op == And { a && b } else { a || b }))
            }
            (l, r) => Err(RuntimeError::TypeError(format!(
                "boolean op on {l} and {r}"
            ))),
        },
    }
}

fn values_equal(l: &Value, r: &Value) -> Result<bool, RuntimeError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(a == b),
        (Value::Bool(a), Value::Bool(b)) => Ok(a == b),
        (Value::Null, Value::Null) => Ok(true),
        (Value::Null, Value::Node(_)) | (Value::Node(_), Value::Null) => Ok(false),
        (Value::Node(a), Value::Node(b)) => Ok(a == b),
        (Value::Arr(a), Value::Arr(b)) => {
            if a.len() != b.len() {
                return Ok(false);
            }
            for (x, y) in a.iter().zip(b) {
                if !values_equal(x, y)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        (l, r) => Err(RuntimeError::TypeError(format!(
            "cannot compare {l} and {r}"
        ))),
    }
}

/// Outcome of applying a statement to a state.
pub enum StepOutcome {
    /// The statement produced a successor state.
    Next(ConcreteState),
    /// An `assume` was false: the path is infeasible.
    Blocked,
}

/// Applies a non-call atomic statement to a state.
///
/// # Errors
///
/// Returns a [`RuntimeError`] on runtime failure; calls must be handled by
/// the caller (see [`collect`]).
///
/// # Panics
///
/// Panics if given a [`Stmt::Call`]; the interprocedural driver handles
/// calls before reaching this function.
pub fn step(state: &ConcreteState, stmt: &Stmt) -> Result<StepOutcome, RuntimeError> {
    let mut next = state.clone();
    match stmt {
        Stmt::Skip | Stmt::Print(_) => {}
        Stmt::Assign(x, Expr::AllocNode) => {
            let id = next.alloc_node();
            next.env.insert(x.clone(), Value::Node(id));
        }
        Stmt::Assign(x, e) => {
            let v = eval(state, e)?;
            next.env.insert(x.clone(), v);
        }
        Stmt::ArrayWrite(a, i, e) => {
            let idx = match eval(state, i)? {
                Value::Int(n) => n,
                other => {
                    return Err(RuntimeError::TypeError(format!("index {other}")));
                }
            };
            let v = eval(state, e)?;
            match next.env.get_mut(a) {
                Some(Value::Arr(vs)) => {
                    if idx < 0 || idx as usize >= vs.len() {
                        return Err(RuntimeError::IndexOutOfBounds {
                            index: idx,
                            len: vs.len(),
                        });
                    }
                    vs[idx as usize] = v;
                }
                Some(other) => {
                    return Err(RuntimeError::TypeError(format!("array write to {other}")));
                }
                None => return Err(RuntimeError::UndefinedVariable(a.clone())),
            }
        }
        Stmt::FieldWrite(x, f, e) => {
            let v = eval(state, e)?;
            match state.env.get(x) {
                Some(Value::Node(id)) => {
                    let id = *id;
                    next.heap
                        .get_mut(&id)
                        .expect("live node")
                        .insert(f.clone(), v);
                }
                Some(Value::Null) | None => return Err(RuntimeError::NullDereference),
                Some(other) => {
                    return Err(RuntimeError::TypeError(format!("field write on {other}")));
                }
            }
        }
        Stmt::Assume(e) => match eval(state, e)? {
            Value::Bool(true) => {}
            Value::Bool(false) => return Ok(StepOutcome::Blocked),
            other => {
                return Err(RuntimeError::TypeError(format!("assume on {other}")));
            }
        },
        Stmt::Call { .. } => panic!("step: calls are handled by the collector"),
    }
    Ok(StepOutcome::Next(next))
}

/// Result of running a whole program concretely.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Value of [`RETURN_VAR`] in the entry function's exit state, if the
    /// function returned a value.
    pub return_value: Option<Value>,
    /// All states witnessed, per `(function, location)` — the bounded
    /// collecting semantics `⟦ℓ⟧*`.
    pub collected: HashMap<(Symbol, Loc), Vec<ConcreteState>>,
    /// Runtime errors encountered on some explored path.
    pub errors: Vec<(Symbol, Loc, RuntimeError)>,
    /// Membership mirror of `collected` (hashed, for O(1) dedup while the
    /// `Vec` keeps witness order).
    seen: HashMap<(Symbol, Loc), HashSet<ConcreteState>>,
}

impl RunResult {
    /// States witnessed at `(function, loc)`.
    pub fn states_at(&self, function: &str, loc: Loc) -> &[ConcreteState] {
        self.collected
            .get(&(Symbol::new(function), loc))
            .map_or(&[], Vec::as_slice)
    }
}

/// Exhaustively explores the executions of `program` starting at `function`
/// with arguments `args`, up to `fuel` statement applications in total.
///
/// Exploration is a worklist over `(loc, state)` pairs within each function
/// activation; calls are evaluated by recursively collecting the callee.
/// Duplicate states at a location are explored once.
pub fn collect(program: &LoweredProgram, function: &str, args: Vec<Value>, fuel: u64) -> RunResult {
    let mut result = RunResult {
        return_value: None,
        collected: HashMap::new(),
        errors: Vec::new(),
        seen: HashMap::new(),
    };
    let mut fuel = fuel;
    let Some(cfg) = program.by_name(function) else {
        result.errors.push((
            Symbol::new(function),
            Loc(0),
            RuntimeError::UnknownFunction(Symbol::new(function)),
        ));
        return result;
    };
    let mut init = ConcreteState::new();
    for (p, v) in cfg.params().iter().zip(args) {
        init.env.insert(p.clone(), v);
    }
    let exits = run_function(program, cfg, init, &mut fuel, &mut result);
    if let Some(final_state) = exits.first() {
        result.return_value = final_state.env.get(RETURN_VAR).cloned();
    }
    result
}

/// Runs one function activation; returns the states reaching the exit.
fn run_function(
    program: &LoweredProgram,
    cfg: &Cfg,
    init: ConcreteState,
    fuel: &mut u64,
    result: &mut RunResult,
) -> Vec<ConcreteState> {
    let fname = cfg.name().clone();
    let mut exits: Vec<ConcreteState> = Vec::new();
    let mut worklist: Vec<(Loc, ConcreteState)> = vec![(cfg.entry(), init)];
    while let Some((loc, state)) = worklist.pop() {
        let seen = result.seen.entry((fname.clone(), loc)).or_default();
        if !seen.insert(state.clone()) {
            continue;
        }
        result
            .collected
            .entry((fname.clone(), loc))
            .or_default()
            .push(state.clone());
        if loc == cfg.exit() {
            exits.push(state.clone());
            continue;
        }
        for &eid in cfg.out_edges(loc) {
            if *fuel == 0 {
                result
                    .errors
                    .push((fname.clone(), loc, RuntimeError::OutOfFuel));
                return exits;
            }
            *fuel -= 1;
            let edge = cfg.edge(eid).expect("edge exists");
            match &edge.stmt {
                Stmt::Call { lhs, callee, args } => {
                    let Some(callee_cfg) = program.by_name(callee.as_str()) else {
                        result.errors.push((
                            fname.clone(),
                            loc,
                            RuntimeError::UnknownFunction(callee.clone()),
                        ));
                        continue;
                    };
                    let mut callee_init = ConcreteState::new();
                    callee_init.heap = state.heap.clone();
                    callee_init.next_node = state.next_node;
                    let mut arg_err = None;
                    for (p, a) in callee_cfg.params().iter().zip(args) {
                        match eval(&state, a) {
                            Ok(v) => {
                                callee_init.env.insert(p.clone(), v);
                            }
                            Err(e) => {
                                arg_err = Some(e);
                                break;
                            }
                        }
                    }
                    if let Some(e) = arg_err {
                        result.errors.push((fname.clone(), loc, e));
                        continue;
                    }
                    let callee_exits = run_function(program, callee_cfg, callee_init, fuel, result);
                    for cs in callee_exits {
                        let mut next = state.clone();
                        next.heap = cs.heap.clone();
                        next.next_node = cs.next_node;
                        if let Some(lhs) = lhs {
                            let rv = cs.env.get(RETURN_VAR).cloned().unwrap_or(Value::Null);
                            next.env.insert(lhs.clone(), rv);
                        }
                        worklist.push((edge.dst, next));
                    }
                }
                stmt => match step(&state, stmt) {
                    Ok(StepOutcome::Next(next)) => worklist.push((edge.dst, next)),
                    Ok(StepOutcome::Blocked) => {}
                    Err(e) => result.errors.push((fname.clone(), loc, e)),
                },
            }
        }
    }
    exits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use crate::parser::parse_program;

    fn run(src: &str, args: Vec<Value>) -> RunResult {
        let prog = lower_program(&parse_program(src).unwrap()).unwrap();
        let entry = prog.cfgs().last().expect("nonempty").name().clone();
        // By convention the entry function is `main` if present.
        let entry = if prog.by_name("main").is_some() {
            Symbol::new("main")
        } else {
            entry
        };
        collect(&prog, entry.as_str(), args, 100_000)
    }

    #[test]
    fn straightline_arithmetic() {
        let r = run(
            "function main() { var x = 2; var y = x * 21; return y; }",
            vec![],
        );
        assert_eq!(r.return_value, Some(Value::Int(42)));
        assert!(r.errors.is_empty());
    }

    #[test]
    fn loop_computes_sum() {
        let r = run(
            "function main() { var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }",
            vec![],
        );
        assert_eq!(r.return_value, Some(Value::Int(10)));
    }

    #[test]
    fn branches_both_explored_only_feasible_taken() {
        let r = run(
            "function main() { var x = 3; if (x > 0) { x = 1; } else { x = 2; } return x; }",
            vec![],
        );
        assert_eq!(r.return_value, Some(Value::Int(1)));
    }

    #[test]
    fn call_passes_arguments_and_returns() {
        let r = run(
            "function double(x) { return x + x; } function main() { var y = double(21); return y; }",
            vec![],
        );
        assert_eq!(r.return_value, Some(Value::Int(42)));
    }

    #[test]
    fn arrays_are_values() {
        let r = run(
            "function main() { var a = [1, 2, 3]; var b = a; b[0] = 9; return a[0]; }",
            vec![],
        );
        assert_eq!(r.return_value, Some(Value::Int(1)));
    }

    #[test]
    fn array_out_of_bounds_is_error() {
        let r = run("function main() { var a = [1]; return a[3]; }", vec![]);
        assert!(r
            .errors
            .iter()
            .any(|(_, _, e)| matches!(e, RuntimeError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn nodes_are_references() {
        let r = run(
            "function main() { var n = new Node(); var m = n; m.data = 7; return n.data; }",
            vec![],
        );
        assert_eq!(r.return_value, Some(Value::Int(7)));
    }

    #[test]
    fn append_concretely_links_lists() {
        let src = r#"
            function append(p, q) {
                if (p == null) { return q; }
                var r = p;
                while (r.next != null) { r = r.next; }
                r.next = q;
                return p;
            }
            function main() {
                var a = new Node();
                var b = new Node();
                a.next = null;
                b.next = null;
                var c = append(a, b);
                return c.next == b;
            }
        "#;
        let r = run(src, vec![]);
        assert_eq!(r.return_value, Some(Value::Bool(true)));
        assert!(r.errors.is_empty(), "{:?}", r.errors);
    }

    #[test]
    fn null_dereference_reported() {
        let r = run("function main() { var n = null; return n.next; }", vec![]);
        assert!(r
            .errors
            .iter()
            .any(|(_, _, e)| matches!(e, RuntimeError::NullDereference)));
    }

    #[test]
    fn division_by_zero_reported() {
        let r = run("function main() { var x = 1 / 0; return x; }", vec![]);
        assert!(r
            .errors
            .iter()
            .any(|(_, _, e)| matches!(e, RuntimeError::DivisionByZero)));
    }

    #[test]
    fn fuel_limits_divergence() {
        let r = run(
            "function main() { var i = 0; while (i >= 0) { i = i + 1; } return i; }",
            vec![],
        );
        assert!(r
            .errors
            .iter()
            .any(|(_, _, e)| matches!(e, RuntimeError::OutOfFuel)));
    }

    #[test]
    fn collecting_semantics_witnesses_loop_states() {
        let r = run(
            "function main() { var i = 0; while (i < 3) { i = i + 1; } return i; }",
            vec![],
        );
        // The loop head sees i = 0, 1, 2, 3.
        let prog = lower_program(
            &parse_program("function main() { var i = 0; while (i < 3) { i = i + 1; } return i; }")
                .unwrap(),
        )
        .unwrap();
        let head = prog.by_name("main").unwrap().loop_heads()[0];
        let states = r.states_at("main", head);
        assert_eq!(states.len(), 4);
    }

    #[test]
    fn print_is_noop() {
        let r = run("function main() { var x = 1; print(x); return x; }", vec![]);
        assert_eq!(r.return_value, Some(Value::Int(1)));
    }
}
