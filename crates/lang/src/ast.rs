//! Abstract syntax for the subject language.
//!
//! The language is the JavaScript-like imperative subset used by the paper's
//! evaluation (§7.3): assignment, arrays, conditional branching, `while`
//! loops, and non-recursive first-order function calls of the form
//! `x = f(y, ...)`. To support the shape-analysis experiments (§7.2) it also
//! has heap nodes with `next`/`data` fields (`new Node()`, `x.next = y`,
//! `x = y.next`).
//!
//! Structured statements ([`AstStmt`]) are lowered to edge-labelled
//! control-flow graphs over *atomic* statements ([`Stmt`]) by
//! [`crate::cfg`]; branch conditions become [`Stmt::Assume`] edge labels as
//! in the paper's Fig. 2.

use crate::Symbol;
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; division by zero halts the concrete semantics)
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (non-short-circuit at the atomic-statement level)
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Returns `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// The comparison with negated truth value (`==` ↔ `!=`, `<` ↔ `>=`, ...).
    ///
    /// Returns `None` for non-comparison operators.
    pub fn negate_comparison(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            _ => return None,
        })
    }

    /// The comparison with operands swapped (`<` ↔ `>`, `==` ↔ `==`, ...).
    pub fn flip_comparison(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Eq,
            BinOp::Ne => BinOp::Ne,
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Expressions.
///
/// Expressions are side-effect free except [`Expr::AllocNode`], which the
/// parser only accepts as the entire right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The `null` reference.
    Null,
    /// Variable read.
    Var(Symbol),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Array literal `[e1, ..., ek]`.
    ArrayLit(Vec<Expr>),
    /// Array read `a[i]`.
    ArrayRead(Box<Expr>, Box<Expr>),
    /// Array length `len(a)`.
    ArrayLen(Box<Expr>),
    /// Field read `e.f` (heap nodes; `f` is `next` or `data`).
    Field(Box<Expr>, Symbol),
    /// Heap allocation `new Node()`.
    AllocNode,
}

impl Expr {
    /// Convenience constructor for a variable read.
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Logical negation with comparisons pushed inward, so that
    /// `assume`-labelled CFG edges read naturally (`p == null` negates to
    /// `p != null` rather than `!(p == null)`), matching the paper's Fig. 2.
    pub fn negate(&self) -> Expr {
        match self {
            Expr::Bool(b) => Expr::Bool(!b),
            Expr::Unary(UnOp::Not, inner) => (**inner).clone(),
            Expr::Binary(op, l, r) => match op.negate_comparison() {
                Some(neg) => Expr::Binary(neg, l.clone(), r.clone()),
                None => Expr::Unary(UnOp::Not, Box::new(self.clone())),
            },
            other => Expr::Unary(UnOp::Not, Box::new(other.clone())),
        }
    }

    /// All variables read by this expression, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::AllocNode => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Unary(_, e) | Expr::ArrayLen(e) | Expr::Field(e, _) => e.collect_vars(out),
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::ArrayLit(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            Expr::ArrayRead(a, i) => {
                a.collect_vars(out);
                i.collect_vars(out);
            }
        }
    }

    /// Returns every array-read subexpression `(array, index)` in
    /// left-to-right order. Used by the array-bounds-checking client (§7.2).
    pub fn array_reads(&self) -> Vec<(&Expr, &Expr)> {
        let mut out = Vec::new();
        self.collect_array_reads(&mut out);
        out
    }

    fn collect_array_reads<'a>(&'a self, out: &mut Vec<(&'a Expr, &'a Expr)>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) | Expr::AllocNode => {}
            Expr::Unary(_, e) | Expr::ArrayLen(e) | Expr::Field(e, _) => e.collect_array_reads(out),
            Expr::Binary(_, l, r) => {
                l.collect_array_reads(out);
                r.collect_array_reads(out);
            }
            Expr::ArrayLit(es) => {
                for e in es {
                    e.collect_array_reads(out);
                }
            }
            Expr::ArrayRead(a, i) => {
                a.collect_array_reads(out);
                i.collect_array_reads(out);
                out.push((a, i));
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Null => write!(f, "null"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Unary(op, e) => write!(f, "{op}({e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::ArrayLit(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::ArrayRead(a, i) => write!(f, "{a}[{i}]"),
            Expr::ArrayLen(a) => write!(f, "len({a})"),
            Expr::Field(e, fld) => write!(f, "{e}.{fld}"),
            Expr::AllocNode => write!(f, "new Node()"),
        }
    }
}

/// Atomic statements: the edge labels of control-flow graphs (paper Fig. 5's
/// unspecified statement language, instantiated).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// No-op. Deleted statements become `skip` (paper §B, Lemma B.2).
    Skip,
    /// `x = e`
    Assign(Symbol, Expr),
    /// `a[i] = e`
    ArrayWrite(Symbol, Expr, Expr),
    /// `x.f = e`
    FieldWrite(Symbol, Symbol, Expr),
    /// Branch-condition guard `assume e` (introduced by CFG lowering).
    Assume(Expr),
    /// `print(e)` — observationally a no-op for the analyses.
    Print(Expr),
    /// `x = f(a1, ..., ak)` or bare `f(a1, ..., ak)`.
    Call {
        /// Variable receiving the return value, if any.
        lhs: Option<Symbol>,
        /// Name of the (statically resolved) callee.
        callee: Symbol,
        /// Actual arguments.
        args: Vec<Expr>,
    },
}

impl Stmt {
    /// Returns `true` if this statement is a call.
    pub fn is_call(&self) -> bool {
        matches!(self, Stmt::Call { .. })
    }

    /// The callee name, if this statement is a call.
    pub fn callee(&self) -> Option<&Symbol> {
        match self {
            Stmt::Call { callee, .. } => Some(callee),
            _ => None,
        }
    }

    /// Every array-read `(array, index)` pair evaluated by this statement,
    /// plus the write target of an `ArrayWrite` (also a bounds obligation).
    pub fn array_accesses(&self) -> Vec<(Expr, Expr)> {
        let mut out: Vec<(Expr, Expr)> = Vec::new();
        let push_expr = |e: &Expr, out: &mut Vec<(Expr, Expr)>| {
            for (a, i) in e.array_reads() {
                out.push((a.clone(), i.clone()));
            }
        };
        match self {
            Stmt::Skip => {}
            Stmt::Assign(_, e) | Stmt::Assume(e) | Stmt::Print(e) => push_expr(e, &mut out),
            Stmt::ArrayWrite(a, i, e) => {
                push_expr(i, &mut out);
                push_expr(e, &mut out);
                out.push((Expr::Var(a.clone()), i.clone()));
            }
            Stmt::FieldWrite(_, _, e) => push_expr(e, &mut out),
            Stmt::Call { args, .. } => {
                for a in args {
                    push_expr(a, &mut out);
                }
            }
        }
        out
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Skip => write!(f, "skip"),
            Stmt::Assign(x, e) => write!(f, "{x} = {e}"),
            Stmt::ArrayWrite(a, i, e) => write!(f, "{a}[{i}] = {e}"),
            Stmt::FieldWrite(x, fld, e) => write!(f, "{x}.{fld} = {e}"),
            Stmt::Assume(e) => write!(f, "assume {e}"),
            Stmt::Print(e) => write!(f, "print({e})"),
            Stmt::Call { lhs, callee, args } => {
                if let Some(lhs) = lhs {
                    write!(f, "{lhs} = ")?;
                }
                write!(f, "{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Structured (tree-shaped) statements, prior to CFG lowering.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AstStmt {
    /// An atomic statement.
    Simple(Stmt),
    /// `if (cond) { then_ } else { else_ }`
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken branch.
        then_: Block,
        /// Fallthrough branch (possibly empty).
        else_: Block,
    },
    /// `while (cond) { body }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// A lexical block `{ … }`, lowered by splicing its statements inline
    /// (no CFG structure of its own). Also the desugaring target of the
    /// `for` and `do`-`while` surface forms.
    Nested(Block),
    /// `return e;` / `return;`
    Return(Option<Expr>),
}

/// A sequence of structured statements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Block(pub Vec<AstStmt>);

impl Block {
    /// An empty block.
    pub fn new() -> Block {
        Block(Vec::new())
    }

    /// Number of structured statements directly in this block.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the block contains no statements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<AstStmt> for Block {
    fn from_iter<T: IntoIterator<Item = AstStmt>>(iter: T) -> Block {
        Block(iter.into_iter().collect())
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Function {
    /// Function name.
    pub name: Symbol,
    /// Formal parameter names.
    pub params: Vec<Symbol>,
    /// Function body.
    pub body: Block,
}

/// A whole program: an ordered collection of functions.
///
/// Analysis starts from the function named `main` when present, otherwise
/// from the first function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name.as_str() == name)
    }

    /// The entry function: `main` if present, otherwise the first function.
    pub fn entry_function(&self) -> Option<&Function> {
        self.function("main").or_else(|| self.functions.first())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negate_pushes_into_comparisons() {
        let e = Expr::binary(BinOp::Eq, Expr::var("p"), Expr::Null);
        assert_eq!(
            e.negate(),
            Expr::binary(BinOp::Ne, Expr::var("p"), Expr::Null)
        );
        let lt = Expr::binary(BinOp::Lt, Expr::var("i"), Expr::var("n"));
        assert_eq!(
            lt.negate(),
            Expr::binary(BinOp::Ge, Expr::var("i"), Expr::var("n"))
        );
    }

    #[test]
    fn negate_is_involutive_on_comparisons() {
        let e = Expr::binary(BinOp::Le, Expr::var("x"), Expr::Int(3));
        assert_eq!(e.negate().negate(), e);
    }

    #[test]
    fn negate_bool_literals() {
        assert_eq!(Expr::Bool(true).negate(), Expr::Bool(false));
        assert_eq!(Expr::Bool(false).negate(), Expr::Bool(true));
    }

    #[test]
    fn negate_falls_back_to_not() {
        let v = Expr::var("b");
        assert_eq!(v.negate(), Expr::Unary(UnOp::Not, Box::new(v.clone())));
        // double negation cancels
        assert_eq!(v.negate().negate(), v);
    }

    #[test]
    fn free_vars_dedup_and_order() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::var("x"), Expr::var("y")),
            Expr::var("x"),
        );
        let vars = e.free_vars();
        assert_eq!(
            vars.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            vec!["x", "y"]
        );
    }

    #[test]
    fn array_accesses_include_write_target() {
        let s = Stmt::ArrayWrite(
            "a".into(),
            Expr::var("i"),
            Expr::ArrayRead(Box::new(Expr::var("b")), Box::new(Expr::Int(0))),
        );
        let acc = s.array_accesses();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[1].0, Expr::var("a"));
    }

    #[test]
    fn display_roundtrips_reasonably() {
        let s = Stmt::Assign(
            "r".into(),
            Expr::Field(Box::new(Expr::var("r")), "next".into()),
        );
        assert_eq!(s.to_string(), "r = r.next");
    }

    #[test]
    fn comparison_flip_and_negate_tables_are_total_on_comparisons() {
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            assert!(op.is_comparison());
            assert!(op.negate_comparison().is_some());
            assert!(op.flip_comparison().is_some());
            // negation and flipping are involutions
            assert_eq!(
                op.negate_comparison().unwrap().negate_comparison(),
                Some(op)
            );
            assert_eq!(op.flip_comparison().unwrap().flip_comparison(), Some(op));
        }
        assert!(BinOp::Add.negate_comparison().is_none());
    }
}
