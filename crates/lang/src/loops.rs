//! Dominators, back edges, natural loops, and reducibility.
//!
//! [`crate::cfg`] maintains loop structure incrementally (it knows the
//! lexical nesting because programs are structured), but the paper's
//! definitions (Appendix A) are stated in terms of dominators over arbitrary
//! reducible flow graphs. This module implements those textbook definitions
//! from scratch — iterative dominator analysis, back-edge partitioning,
//! natural-loop computation, and a reducibility check — so that tests can
//! assert the incremental structure always agrees with the from-scratch one.

use crate::cfg::{Cfg, EdgeId, Loc};
use std::collections::{HashMap, HashSet};

/// The result of from-scratch loop analysis of a CFG.
#[derive(Debug, Clone)]
pub struct LoopAnalysis {
    /// Immediate dominator of each reachable location (entry maps to itself).
    pub idom: HashMap<Loc, Loc>,
    /// Edges whose destination dominates their source.
    pub back_edges: Vec<EdgeId>,
    /// Natural loop of each back-edge target: all locations that reach the
    /// back edge's source without passing through the head, plus the head.
    pub natural_loops: HashMap<Loc, HashSet<Loc>>,
    /// Locations in reverse postorder of the forward-edge DAG.
    pub rpo: Vec<Loc>,
}

impl LoopAnalysis {
    /// Runs the analysis. Only locations reachable from the entry are
    /// considered (the CFG keeps all locations reachable by construction).
    pub fn of(cfg: &Cfg) -> LoopAnalysis {
        let rpo = reverse_postorder(cfg);
        let idom = dominators(cfg, &rpo);
        let mut back_edges = Vec::new();
        for e in cfg.edges() {
            if dominates(&idom, e.dst, e.src) {
                back_edges.push(e.id);
            }
        }
        back_edges.sort();
        let mut natural_loops: HashMap<Loc, HashSet<Loc>> = HashMap::new();
        for &be in &back_edges {
            let e = cfg.edge(be).expect("edge exists");
            let set = natural_loops.entry(e.dst).or_default();
            set.insert(e.dst);
            // Walk predecessors from the back edge's source, not crossing
            // the head.
            let mut stack = vec![e.src];
            while let Some(l) = stack.pop() {
                if l == e.dst || !set.insert(l) {
                    continue;
                }
                for &in_e in cfg.in_edges(l) {
                    stack.push(cfg.edge(in_e).expect("edge exists").src);
                }
            }
        }
        LoopAnalysis {
            idom,
            back_edges,
            natural_loops,
            rpo,
        }
    }

    /// The loop heads found by the from-scratch analysis, ascending.
    pub fn heads(&self) -> Vec<Loc> {
        let mut v: Vec<Loc> = self.natural_loops.keys().copied().collect();
        v.sort();
        v
    }

    /// Is the CFG reducible? True iff removing all back edges leaves an
    /// acyclic graph and every back edge's target dominates its source
    /// (the second condition holds by construction of `back_edges`; this
    /// checks the first).
    pub fn is_reducible(&self, cfg: &Cfg) -> bool {
        // Kahn's algorithm on forward edges only.
        let back: HashSet<EdgeId> = self.back_edges.iter().copied().collect();
        let locs = cfg.locs();
        let mut indeg: HashMap<Loc, usize> = locs.iter().map(|&l| (l, 0)).collect();
        for e in cfg.edges() {
            if !back.contains(&e.id) {
                *indeg.get_mut(&e.dst).expect("live loc") += 1;
            }
        }
        let mut queue: Vec<Loc> = locs.iter().copied().filter(|l| indeg[l] == 0).collect();
        let mut seen = 0usize;
        while let Some(l) = queue.pop() {
            seen += 1;
            for &eid in cfg.out_edges(l) {
                let e = cfg.edge(eid).expect("edge exists");
                if back.contains(&eid) {
                    continue;
                }
                let d = indeg.get_mut(&e.dst).expect("live loc");
                *d -= 1;
                if *d == 0 {
                    queue.push(e.dst);
                }
            }
        }
        seen == locs.len()
    }

    /// The innermost loop head whose natural loop contains `loc`, computed
    /// from scratch (excluding `loc`'s own loop when `loc` is a head).
    pub fn innermost_enclosing(&self, loc: Loc) -> Option<Loc> {
        // Innermost = the containing loop with the smallest natural loop.
        self.natural_loops
            .iter()
            .filter(|(&h, set)| h != loc && set.contains(&loc))
            .min_by_key(|(_, set)| set.len())
            .map(|(&h, _)| h)
    }

    /// All heads whose natural loops contain `loc`, outermost (largest loop)
    /// first, excluding `loc` itself.
    pub fn enclosing_chain(&self, loc: Loc) -> Vec<Loc> {
        let mut chain: Vec<(&Loc, &HashSet<Loc>)> = self
            .natural_loops
            .iter()
            .filter(|(&h, set)| h != loc && set.contains(&loc))
            .collect();
        chain.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));
        chain.into_iter().map(|(&h, _)| h).collect()
    }
}

/// Locations in reverse postorder of the CFG's depth-first forest
/// (deterministic: out-edges visited in ascending edge-id order).
pub fn reverse_postorder(cfg: &Cfg) -> Vec<Loc> {
    let mut post = Vec::new();
    let mut seen: HashSet<Loc> = HashSet::new();
    // Iterative DFS with an explicit (loc, next-out-edge-index) stack.
    let mut stack: Vec<(Loc, usize)> = vec![(cfg.entry(), 0)];
    seen.insert(cfg.entry());
    while let Some(&(loc, idx)) = stack.last() {
        let outs = cfg.out_edges(loc);
        if idx < outs.len() {
            stack.last_mut().expect("stack nonempty").1 += 1;
            let dst = cfg.edge(outs[idx]).expect("edge exists").dst;
            if seen.insert(dst) {
                stack.push((dst, 0));
            }
        } else {
            post.push(loc);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Iterative dominator computation (Cooper–Harvey–Kennedy style fixed point
/// over reverse postorder).
fn dominators(cfg: &Cfg, rpo: &[Loc]) -> HashMap<Loc, Loc> {
    let rpo_index: HashMap<Loc, usize> = rpo.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let mut idom: HashMap<Loc, Loc> = HashMap::new();
    idom.insert(cfg.entry(), cfg.entry());
    let mut changed = true;
    while changed {
        changed = false;
        for &l in rpo.iter().skip(1) {
            let mut new_idom: Option<Loc> = None;
            for &eid in cfg.in_edges(l) {
                let p = cfg.edge(eid).expect("edge exists").src;
                if !idom.contains_key(&p) {
                    continue; // predecessor not yet processed
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_index, cur, p),
                });
            }
            if let Some(n) = new_idom {
                if idom.get(&l) != Some(&n) {
                    idom.insert(l, n);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    idom: &HashMap<Loc, Loc>,
    rpo_index: &HashMap<Loc, usize>,
    mut a: Loc,
    mut b: Loc,
) -> Loc {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Does `a` dominate `b` (reflexively)?
pub fn dominates(idom: &HashMap<Loc, Loc>, a: Loc, b: Loc) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom.get(&cur) {
            Some(&d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use crate::parser::parse_program;

    fn analyze(src: &str, name: &str) -> (Cfg, LoopAnalysis) {
        let prog = lower_program(&parse_program(src).unwrap()).unwrap();
        let cfg = prog.by_name(name).unwrap().clone();
        let la = LoopAnalysis::of(&cfg);
        (cfg, la)
    }

    #[test]
    fn straightline_has_no_loops() {
        let (cfg, la) = analyze("function f() { var x = 1; return x; }", "f");
        assert!(la.back_edges.is_empty());
        assert!(la.is_reducible(&cfg));
        assert_eq!(la.rpo[0], cfg.entry());
    }

    #[test]
    fn single_loop_identified() {
        let (cfg, la) = analyze(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        assert_eq!(la.back_edges.len(), 1);
        assert_eq!(la.heads(), cfg.loop_heads());
        assert!(la.is_reducible(&cfg));
    }

    #[test]
    fn dominators_of_diamond() {
        let (cfg, la) = analyze(
            "function f(x) { if (x > 0) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        // The join is dominated by the entry, not by either branch arm.
        let join = cfg.locs().into_iter().find(|&l| cfg.is_join(l)).unwrap();
        assert_eq!(la.idom[&join], cfg.entry());
    }

    #[test]
    fn nested_loops_chain_matches_cfg_bookkeeping() {
        let (cfg, la) = analyze(
            "function f(n) { var i = 0; while (i < n) { var j = 0; while (j < i) { j = j + 1; } i = i + 1; } return i; }",
            "f",
        );
        assert_eq!(la.heads(), cfg.loop_heads());
        for l in cfg.locs() {
            assert_eq!(
                la.enclosing_chain(l),
                cfg.enclosing_loops(l),
                "enclosing chain mismatch at {l}"
            );
        }
        assert!(la.is_reducible(&cfg));
    }

    #[test]
    fn sequential_loops_do_not_nest() {
        let (cfg, la) = analyze(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } var j = 0; while (j < n) { j = j + 1; } return j; }",
            "f",
        );
        assert_eq!(la.heads().len(), 2);
        for h in la.heads() {
            assert!(la.enclosing_chain(h).is_empty());
        }
        for l in cfg.locs() {
            assert_eq!(la.enclosing_chain(l), cfg.enclosing_loops(l));
        }
    }

    #[test]
    fn natural_loop_matches_cfg() {
        let (cfg, la) = analyze(
            "function f(n) { var i = 0; while (i < n) { if (i > 2) { i = i + 1; } else { i = i + 2; } } return i; }",
            "f",
        );
        let head = cfg.loop_heads()[0];
        let mut expected: Vec<Loc> = la.natural_loops[&head].iter().copied().collect();
        expected.sort();
        assert_eq!(cfg.natural_loop(head), expected);
    }

    #[test]
    fn self_loop_natural_loop_is_singleton() {
        let (cfg, la) = analyze("function f(b) { while (b == 0) { } return b; }", "f");
        let head = cfg.loop_heads()[0];
        assert_eq!(la.natural_loops[&head].len(), 1);
        assert!(la.natural_loops[&head].contains(&head));
    }
}
