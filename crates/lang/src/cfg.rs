//! Edge-labelled control-flow graphs (paper Fig. 5) and lowering from
//! structured ASTs.
//!
//! A program `⟨L, E, ℓ0⟩` is a set of locations, a set of directed
//! statement-labelled edges, and an initial location. Lowering structured
//! `if`/`while` syntax guarantees the well-formedness conditions the paper
//! assumes:
//!
//! * the CFG is **reducible** (every back edge's destination dominates its
//!   source) — guaranteed by construction from structured syntax;
//! * every loop head has **exactly one back edge** (paper Appendix A,
//!   footnote 7) — lowering funnels multi-predecessor loop-body exits
//!   through a fresh `skip` edge;
//! * loops are exited **only at their head** (no `break`/`goto`), so a
//!   DAIG edge out of a loop always reads the head's fixed-point cell;
//! * all locations are reachable from the entry: statements after a
//!   `return` are dropped during lowering, and a `while` whose body never
//!   falls through is lowered as a non-loop.
//!
//! The CFG also tracks each location's chain of enclosing loop heads
//! (outermost first). `dai-core` uses this to assign iteration contexts to
//! DAIG names, and [`crate::loops`] re-derives the same structure from
//! dominators to cross-check it in tests.

use crate::ast::{AstStmt, Block, Function, Program, Stmt};
use crate::{Symbol, RETURN_VAR};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A control-flow location `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub u32);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A stable identifier for a CFG edge.
///
/// Edge identities survive program edits (a [`crate::edit`] splice moves an
/// edge's source but keeps its identity), which is what lets DAIG statement
/// cells be reused across program versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A statement-labelled control-flow edge `ℓ —[s]→ ℓ'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Stable identity.
    pub id: EdgeId,
    /// Source location.
    pub src: Loc,
    /// Destination location.
    pub dst: Loc,
    /// Statement label.
    pub stmt: Stmt,
}

/// Errors arising while building or editing CFGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// The program calls an undefined function.
    UndefinedFunction(Symbol),
    /// The (static) call graph contains a cycle; the framework supports
    /// non-recursive programs only (paper §7.1).
    RecursiveCall(Symbol),
    /// A function was defined twice.
    DuplicateFunction(Symbol),
    /// An edit referred to an edge that does not exist.
    NoSuchEdge(EdgeId),
    /// An edit tried to splice a block that never falls through (e.g. it
    /// unconditionally returns), which would orphan the insertion point.
    BlockNeverFallsThrough,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UndefinedFunction(s) => write!(f, "call to undefined function `{s}`"),
            CfgError::RecursiveCall(s) => {
                write!(f, "recursive call cycle through `{s}` (unsupported)")
            }
            CfgError::DuplicateFunction(s) => write!(f, "duplicate function `{s}`"),
            CfgError::NoSuchEdge(e) => write!(f, "no such edge `{e}`"),
            CfgError::BlockNeverFallsThrough => {
                write!(
                    f,
                    "spliced block never falls through to the insertion point"
                )
            }
        }
    }
}

impl std::error::Error for CfgError {}

/// Loop/join structure derived from a CFG's adjacency — computed once per
/// structural version of the graph and shared by clones
/// ([`std::sync::OnceLock`]`<`[`std::sync::Arc`]`>`): DAIG construction and
/// demanded unrolling query these relations per edge, so deriving them on
/// every call (the previous implementation) made graph building the
/// dominant cost of cold queries.
#[derive(Debug, Default)]
struct Derived {
    /// Edges whose destination is a loop head dominating their source.
    back_edges: HashSet<EdgeId>,
    /// Incoming non-back edges per live location, ascending.
    fwd_in: HashMap<Loc, Vec<EdgeId>>,
    /// Locations with forward in-degree ≥ 2.
    joins: HashSet<Loc>,
    /// Chain of enclosing loop heads per live location, outermost first
    /// (the location itself excluded even when it is a head).
    enclosing: HashMap<Loc, Vec<Loc>>,
    /// Natural-loop membership per head (head included), ascending.
    natural: HashMap<Loc, Vec<Loc>>,
}

/// The control-flow graph of a single function.
#[derive(Debug, Clone)]
pub struct Cfg {
    name: Symbol,
    params: Vec<Symbol>,
    entry: Loc,
    exit: Loc,
    next_loc: u32,
    next_edge: u32,
    edges: BTreeMap<EdgeId, Edge>,
    out_edges: HashMap<Loc, Vec<EdgeId>>,
    in_edges: HashMap<Loc, Vec<EdgeId>>,
    /// Innermost enclosing loop head of each live location (a lexical
    /// parent chain; only members of `loop_heads` count as real loops).
    loop_parent: HashMap<Loc, Option<Loc>>,
    /// Locations that are the destination of a back edge.
    loop_heads: HashSet<Loc>,
    /// Lazily derived loop/join structure; reset by structural mutation.
    /// Clones share the cache (the `Arc`) until either side mutates.
    derived: std::sync::OnceLock<std::sync::Arc<Derived>>,
}

impl Cfg {
    /// Creates an empty CFG (entry and exit only, no edges) for a function.
    pub fn empty(name: Symbol, params: Vec<Symbol>) -> Cfg {
        let mut cfg = Cfg {
            name,
            params,
            entry: Loc(0),
            exit: Loc(1),
            next_loc: 2,
            next_edge: 0,
            edges: BTreeMap::new(),
            out_edges: HashMap::new(),
            in_edges: HashMap::new(),
            loop_parent: HashMap::new(),
            loop_heads: HashSet::new(),
            derived: std::sync::OnceLock::new(),
        };
        cfg.loop_parent.insert(cfg.entry, None);
        cfg.loop_parent.insert(cfg.exit, None);
        cfg
    }

    /// Lowers a function's structured body into a CFG.
    pub fn from_function(func: &Function) -> Cfg {
        let mut cfg = Cfg::empty(func.name.clone(), func.params.clone());
        let mut lowerer = Lowerer { cfg: &mut cfg };
        let entry = lowerer.cfg.entry;
        if let Some(end) = lowerer.lower_block(&func.body, entry, &[]) {
            lowerer.finish_at_exit(end);
        }
        cfg.prune_dead_exit();
        cfg
    }

    /// Function name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// Formal parameters.
    pub fn params(&self) -> &[Symbol] {
        &self.params
    }

    /// Entry location `ℓ0`.
    pub fn entry(&self) -> Loc {
        self.entry
    }

    /// Exit location `ℓ_ret`.
    pub fn exit(&self) -> Loc {
        self.exit
    }

    /// Number of live locations.
    pub fn loc_count(&self) -> usize {
        self.loop_parent.len()
    }

    /// Number of edges (= atomic statements).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All live locations, in ascending id order.
    pub fn locs(&self) -> Vec<Loc> {
        let mut v: Vec<Loc> = self.loop_parent.keys().copied().collect();
        v.sort();
        v
    }

    /// All edges in ascending id order.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.values()
    }

    /// Looks up an edge by id.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(&id)
    }

    /// Outgoing edge ids of `loc`, ascending.
    pub fn out_edges(&self, loc: Loc) -> &[EdgeId] {
        self.out_edges.get(&loc).map_or(&[], Vec::as_slice)
    }

    /// Incoming edge ids of `loc`, ascending.
    pub fn in_edges(&self, loc: Loc) -> &[EdgeId] {
        self.in_edges.get(&loc).map_or(&[], Vec::as_slice)
    }

    /// Is `loc` a loop head (the destination of a back edge)?
    pub fn is_loop_head(&self, loc: Loc) -> bool {
        self.loop_heads.contains(&loc)
    }

    /// All loop heads, ascending.
    pub fn loop_heads(&self) -> Vec<Loc> {
        let mut v: Vec<Loc> = self.loop_heads.iter().copied().collect();
        v.sort();
        v
    }

    /// Is edge `id` a back edge (its destination is a loop head whose
    /// natural loop contains the source)?
    pub fn is_back_edge(&self, id: EdgeId) -> bool {
        self.derived().back_edges.contains(&id)
    }

    /// The unique back edge of loop head `head`, if `head` is a loop head.
    pub fn back_edge(&self, head: Loc) -> Option<EdgeId> {
        if !self.loop_heads.contains(&head) {
            return None;
        }
        self.in_edges(head)
            .iter()
            .copied()
            .find(|&e| self.is_back_edge(e))
    }

    /// Incoming *forward* (non-back) edges of `loc`, ascending.
    ///
    /// The paper's `fwd-edges-to`: join points are locations where this has
    /// length ≥ 2. Borrowing variant of [`Cfg::fwd_in_edges`].
    pub fn fwd_in(&self, loc: Loc) -> &[EdgeId] {
        self.derived().fwd_in.get(&loc).map_or(&[], Vec::as_slice)
    }

    /// Incoming *forward* (non-back) edges of `loc`, ascending (owned).
    pub fn fwd_in_edges(&self, loc: Loc) -> Vec<EdgeId> {
        self.fwd_in(loc).to_vec()
    }

    /// Is `loc` a join point (forward in-degree ≥ 2)?
    pub fn is_join(&self, loc: Loc) -> bool {
        self.derived().joins.contains(&loc)
    }

    /// The chain of loop heads whose natural loops contain `loc`, outermost
    /// first. A loop head is *not* a member of its own chain (matching the
    /// paper's naming convention where the head's fixed-point cell lives
    /// outside its own loop). Borrowing variant of
    /// [`Cfg::enclosing_loops`].
    pub fn enclosing_chain(&self, loc: Loc) -> &[Loc] {
        self.derived()
            .enclosing
            .get(&loc)
            .map_or(&[], Vec::as_slice)
    }

    /// The chain of enclosing loop heads (owned; see
    /// [`Cfg::enclosing_chain`]).
    pub fn enclosing_loops(&self, loc: Loc) -> Vec<Loc> {
        self.enclosing_chain(loc).to_vec()
    }

    /// Like [`Cfg::enclosing_loops`] but including `loc` itself when it is a
    /// loop head (i.e. the loops whose bodies contain `loc`).
    pub fn loops_containing(&self, loc: Loc) -> Vec<Loc> {
        let mut chain = self.enclosing_loops(loc);
        if self.loop_heads.contains(&loc) {
            chain.push(loc);
        }
        chain
    }

    /// All locations in the natural loop of `head` (including `head`),
    /// ascending. Borrowing variant of [`Cfg::natural_loop`].
    pub fn natural_loop_ref(&self, head: Loc) -> &[Loc] {
        self.derived().natural.get(&head).map_or(&[], Vec::as_slice)
    }

    /// All locations in the natural loop of `head` (owned; see
    /// [`Cfg::natural_loop_ref`]).
    pub fn natural_loop(&self, head: Loc) -> Vec<Loc> {
        self.natural_loop_ref(head).to_vec()
    }

    /// The derived loop/join structure, computed on first use after a
    /// structural change.
    fn derived(&self) -> &Derived {
        self.derived
            .get_or_init(|| std::sync::Arc::new(self.compute_derived()))
    }

    /// Drops the derived cache; every structural mutation calls this.
    fn invalidate_derived(&mut self) {
        self.derived = std::sync::OnceLock::new();
    }

    /// One pass over the graph computing every derived relation the DAIG
    /// builder queries per edge.
    fn compute_derived(&self) -> Derived {
        let mut d = Derived::default();
        for &l in self.loop_parent.keys() {
            let mut chain = Vec::new();
            let mut cur = self.loop_parent.get(&l).copied().flatten();
            while let Some(h) = cur {
                if self.loop_heads.contains(&h) {
                    chain.push(h);
                }
                cur = self.loop_parent.get(&h).copied().flatten();
            }
            chain.reverse();
            d.enclosing.insert(l, chain);
        }
        let containing = |l: Loc| -> Vec<Loc> {
            let mut c = d.enclosing.get(&l).cloned().unwrap_or_default();
            if self.loop_heads.contains(&l) {
                c.push(l);
            }
            c
        };
        for (id, e) in &self.edges {
            if self.loop_heads.contains(&e.dst)
                && (e.src == e.dst || containing(e.src).contains(&e.dst))
            {
                d.back_edges.insert(*id);
            }
        }
        for &l in self.loop_parent.keys() {
            let fwd: Vec<EdgeId> = self
                .in_edges(l)
                .iter()
                .copied()
                .filter(|e| !d.back_edges.contains(e))
                .collect();
            if fwd.len() >= 2 {
                d.joins.insert(l);
            }
            d.fwd_in.insert(l, fwd);
        }
        d.natural = self.loop_heads.iter().map(|&h| (h, Vec::new())).collect();
        for &l in self.loop_parent.keys() {
            for h in containing(l) {
                d.natural
                    .get_mut(&h)
                    .expect("containing heads exist")
                    .push(l);
            }
        }
        for (&h, body) in d.natural.iter_mut() {
            if !body.contains(&h) {
                body.push(h);
            }
            body.sort();
        }
        d
    }

    fn fresh_loc(&mut self, parent: Option<Loc>) -> Loc {
        self.invalidate_derived();
        let l = Loc(self.next_loc);
        self.next_loc += 1;
        self.loop_parent.insert(l, parent);
        l
    }

    fn add_edge(&mut self, src: Loc, dst: Loc, stmt: Stmt) -> EdgeId {
        self.invalidate_derived();
        let id = EdgeId(self.next_edge);
        self.next_edge += 1;
        self.edges.insert(id, Edge { id, src, dst, stmt });
        self.out_edges.entry(src).or_default().push(id);
        self.out_edges.entry(src).or_default().sort();
        self.in_edges.entry(dst).or_default().push(id);
        self.in_edges.entry(dst).or_default().sort();
        id
    }

    /// Replaces the statement on an edge (used by [`crate::edit`]).
    pub(crate) fn replace_edge_stmt_internal(&mut self, id: EdgeId, stmt: Stmt) {
        if let Some(e) = self.edges.get_mut(&id) {
            e.stmt = stmt;
        }
    }

    /// Moves an edge's source to `new_src`, updating adjacency
    /// (used by [`crate::edit`] splices).
    pub(crate) fn move_edge_src_internal(&mut self, id: EdgeId, new_src: Loc) {
        self.invalidate_derived();
        let Some(e) = self.edges.get_mut(&id) else {
            return;
        };
        let old_src = e.src;
        e.src = new_src;
        if let Some(v) = self.out_edges.get_mut(&old_src) {
            v.retain(|x| *x != id);
        }
        let outs = self.out_edges.entry(new_src).or_default();
        outs.push(id);
        outs.sort();
    }

    /// Redirects all in-edges of `from` to `into` and deletes `from`.
    /// `from` must have no out-edges.
    fn merge_locs(&mut self, from: Loc, into: Loc) {
        self.invalidate_derived();
        debug_assert!(from != into);
        debug_assert!(self.out_edges(from).is_empty());
        let incoming: Vec<EdgeId> = self.in_edges(from).to_vec();
        for id in incoming {
            if let Some(e) = self.edges.get_mut(&id) {
                e.dst = into;
            }
            self.in_edges.entry(into).or_default().push(id);
        }
        self.in_edges.entry(into).or_default().sort();
        self.in_edges.remove(&from);
        self.out_edges.remove(&from);
        self.loop_parent.remove(&from);
    }

    /// Drops the exit location if nothing reaches it (a function whose body
    /// cannot fall through and has no `return` would otherwise leave an
    /// isolated exit violating "all locations reachable").
    fn prune_dead_exit(&mut self) {
        self.invalidate_derived();
        if self.exit != self.entry && self.in_edges(self.exit).is_empty() {
            // Keep a reachable exit: collapse it onto the entry's last
            // reachable location is not meaningful; instead retain the exit
            // only if reachable. An unreachable exit can only arise from an
            // infinite loop covering all paths; the exit is then vestigial.
            self.loop_parent.remove(&self.exit);
        }
    }

    /// Checks internal adjacency/loop-structure invariants, returning a
    /// description of the first violation. Used by tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        // Adjacency agrees with the edge map.
        for (id, e) in &self.edges {
            if e.id != *id {
                return Err(format!("edge {id} has mismatched id {}", e.id));
            }
            if !self.out_edges(e.src).contains(id) {
                return Err(format!("edge {id} missing from out_edges of {}", e.src));
            }
            if !self.in_edges(e.dst).contains(id) {
                return Err(format!("edge {id} missing from in_edges of {}", e.dst));
            }
            if !self.loop_parent.contains_key(&e.src) || !self.loop_parent.contains_key(&e.dst) {
                return Err(format!("edge {id} touches a dead location"));
            }
        }
        for (loc, ids) in &self.out_edges {
            for id in ids {
                let e = self
                    .edges
                    .get(id)
                    .ok_or(format!("dangling out edge {id}"))?;
                if e.src != *loc {
                    return Err(format!("out_edges of {loc} lists {id} with src {}", e.src));
                }
            }
        }
        for (loc, ids) in &self.in_edges {
            for id in ids {
                let e = self.edges.get(id).ok_or(format!("dangling in edge {id}"))?;
                if e.dst != *loc {
                    return Err(format!("in_edges of {loc} lists {id} with dst {}", e.dst));
                }
            }
        }
        // Every live non-entry location is reachable from the entry.
        let mut seen = HashSet::new();
        let mut stack = vec![self.entry];
        while let Some(l) = stack.pop() {
            if !seen.insert(l) {
                continue;
            }
            for id in self.out_edges(l) {
                stack.push(self.edges[id].dst);
            }
        }
        for l in self.loop_parent.keys() {
            if !seen.contains(l) {
                return Err(format!("location {l} unreachable from entry"));
            }
        }
        // Loop heads have exactly one back edge; non-heads have none.
        for l in self.loop_parent.keys() {
            let back: Vec<EdgeId> = self
                .in_edges(*l)
                .iter()
                .copied()
                .filter(|&e| self.is_back_edge(e))
                .collect();
            if self.loop_heads.contains(l) {
                if back.len() != 1 {
                    return Err(format!("loop head {l} has {} back edges", back.len()));
                }
            } else if !back.is_empty() {
                return Err(format!("non-head {l} has a back edge"));
            }
        }
        // Exit has no out-edges.
        if self.loop_parent.contains_key(&self.exit) && !self.out_edges(self.exit).is_empty() {
            return Err("exit has outgoing edges".to_string());
        }
        Ok(())
    }
}

/// Shared lowering machinery, also used by [`crate::edit`] to splice blocks
/// into an existing CFG.
pub(crate) struct Lowerer<'a> {
    pub(crate) cfg: &'a mut Cfg,
}

impl Lowerer<'_> {
    /// Lowers `block` starting at `cur` under enclosing-loop context `ctx`
    /// (innermost last). Returns the fall-through location, or `None` if
    /// every path returns.
    pub(crate) fn lower_block(&mut self, block: &Block, cur: Loc, ctx: &[Loc]) -> Option<Loc> {
        let mut cur = cur;
        for stmt in &block.0 {
            match self.lower_stmt(stmt, cur, ctx) {
                Some(next) => cur = next,
                None => return None, // paths all return; drop unreachable rest
            }
        }
        Some(cur)
    }

    fn lower_stmt(&mut self, stmt: &AstStmt, cur: Loc, ctx: &[Loc]) -> Option<Loc> {
        let parent = ctx.last().copied();
        match stmt {
            AstStmt::Simple(s) => {
                let next = self.cfg.fresh_loc(parent);
                self.cfg.add_edge(cur, next, s.clone());
                Some(next)
            }
            AstStmt::Nested(block) => self.lower_block(block, cur, ctx),
            AstStmt::Return(value) => {
                let s = match value {
                    Some(e) => Stmt::Assign(Symbol::new(RETURN_VAR), e.clone()),
                    None => Stmt::Skip,
                };
                let exit = self.cfg.exit;
                self.cfg.add_edge(cur, exit, s);
                None
            }
            AstStmt::If { cond, then_, else_ } => {
                let t0 = self.cfg.fresh_loc(parent);
                self.cfg.add_edge(cur, t0, Stmt::Assume(cond.clone()));
                let e0 = self.cfg.fresh_loc(parent);
                self.cfg.add_edge(cur, e0, Stmt::Assume(cond.negate()));
                let t_end = self.lower_block(then_, t0, ctx);
                let e_end = self.lower_block(else_, e0, ctx);
                match (t_end, e_end) {
                    (None, None) => None,
                    (Some(t), None) => Some(t),
                    (None, Some(e)) => Some(e),
                    (Some(t), Some(e)) => {
                        let join = self.cfg.fresh_loc(parent);
                        self.cfg.merge_locs(t, join);
                        self.cfg.merge_locs(e, join);
                        Some(join)
                    }
                }
            }
            AstStmt::While { cond, body } => {
                let head = cur;
                let mut body_ctx = ctx.to_vec();
                body_ctx.push(head);
                let first_body_loc = self.cfg.next_loc;
                let b0 = self.cfg.fresh_loc(Some(head));
                self.cfg.add_edge(head, b0, Stmt::Assume(cond.clone()));
                match self.lower_block(body, b0, &body_ctx) {
                    Some(b_end) => {
                        // Exactly one back edge per head (paper fn. 7): fuse
                        // a unique predecessor, otherwise funnel via `skip`.
                        if self.cfg.in_edges(b_end).len() == 1 && b_end != head {
                            self.cfg.merge_locs(b_end, head);
                        } else {
                            self.cfg.add_edge(b_end, head, Stmt::Skip);
                        }
                        self.cfg.loop_heads.insert(head);
                        self.cfg.invalidate_derived();
                    }
                    None => {
                        // The body always returns: `head` is not a loop head.
                        // Re-parent locations that optimistically claimed it.
                        let created: Vec<Loc> = self
                            .cfg
                            .loop_parent
                            .keys()
                            .copied()
                            .filter(|l| l.0 >= first_body_loc)
                            .collect();
                        for l in created {
                            if self.cfg.loop_parent[&l] == Some(head) {
                                self.cfg.loop_parent.insert(l, parent);
                                self.cfg.invalidate_derived();
                            }
                        }
                    }
                }
                let x0 = self.cfg.fresh_loc(parent);
                self.cfg.add_edge(head, x0, Stmt::Assume(cond.negate()));
                Some(x0)
            }
        }
    }

    /// Routes the fall-through location `end` into the function exit
    /// (the implicit `return`).
    pub(crate) fn finish_at_exit(&mut self, end: Loc) {
        let exit = self.cfg.exit;
        if end == exit {
            return;
        }
        if end == self.cfg.entry || !self.cfg.out_edges(end).is_empty() {
            // Cannot merge the entry (or a loop head that already has
            // out-edges) into the exit; add an explicit skip edge.
            self.cfg.add_edge(end, exit, Stmt::Skip);
        } else {
            self.cfg.merge_locs(end, exit);
        }
    }
}

/// The CFGs of a whole program, plus its call graph in topological order.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    cfgs: Vec<Cfg>,
    index: HashMap<Symbol, usize>,
    /// Function names in reverse topological (callees-first) order.
    topo_order: Vec<Symbol>,
}

impl LoweredProgram {
    /// Looks up a function's CFG by name.
    pub fn by_name(&self, name: &str) -> Option<&Cfg> {
        self.index.get(name).map(|&i| &self.cfgs[i])
    }

    /// The analysis entry CFG: `main` when present, otherwise the first
    /// function — the same rule as [`crate::ast::Program::entry_function`],
    /// shared here so every consumer (REPL, engine sessions, drivers)
    /// resolves the entry identically.
    pub fn entry_cfg(&self) -> Option<&Cfg> {
        self.by_name("main").or_else(|| self.cfgs().first())
    }

    /// Mutable access to a function's CFG by name.
    pub fn by_name_mut(&mut self, name: &str) -> Option<&mut Cfg> {
        self.index
            .get(name)
            .copied()
            .map(move |i| &mut self.cfgs[i])
    }

    /// All CFGs in definition order.
    pub fn cfgs(&self) -> &[Cfg] {
        &self.cfgs
    }

    /// Function names, callees before callers.
    pub fn topo_order(&self) -> &[Symbol] {
        &self.topo_order
    }

    /// Direct callees of `name` (deduplicated, in edge order).
    pub fn callees(&self, name: &str) -> Vec<Symbol> {
        let Some(cfg) = self.by_name(name) else {
            return Vec::new();
        };
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for e in cfg.edges() {
            if let Some(c) = e.stmt.callee() {
                if seen.insert(c.clone()) {
                    out.push(c.clone());
                }
            }
        }
        out
    }

    /// All call sites `(caller, edge)` whose callee is `name`.
    pub fn call_sites_of(&self, name: &str) -> Vec<(Symbol, EdgeId)> {
        let mut out = Vec::new();
        for cfg in &self.cfgs {
            for e in cfg.edges() {
                if e.stmt.callee().map(Symbol::as_str) == Some(name) {
                    out.push((cfg.name().clone(), e.id));
                }
            }
        }
        out
    }

    /// Recomputes the call graph after an edit, re-validating that the
    /// program is call-closed and non-recursive.
    ///
    /// # Errors
    ///
    /// See [`check_call_graph`].
    pub fn refresh_call_graph(&mut self) -> Result<(), CfgError> {
        self.topo_order = check_call_graph(&self.cfgs)?;
        Ok(())
    }
}

/// Lowers every function of `program` and validates the call graph.
///
/// # Errors
///
/// Returns [`CfgError::DuplicateFunction`], [`CfgError::UndefinedFunction`],
/// or [`CfgError::RecursiveCall`] for ill-formed programs.
pub fn lower_program(program: &Program) -> Result<LoweredProgram, CfgError> {
    let mut cfgs = Vec::new();
    let mut index = HashMap::new();
    for func in &program.functions {
        if index.contains_key(&func.name) {
            return Err(CfgError::DuplicateFunction(func.name.clone()));
        }
        index.insert(func.name.clone(), cfgs.len());
        cfgs.push(Cfg::from_function(func));
    }
    let topo_order = check_call_graph(&cfgs)?;
    Ok(LoweredProgram {
        cfgs,
        index,
        topo_order,
    })
}

/// Validates that all calls resolve and the call graph is acyclic; returns
/// function names callees-first.
///
/// # Errors
///
/// Returns [`CfgError::UndefinedFunction`] or [`CfgError::RecursiveCall`].
pub fn check_call_graph(cfgs: &[Cfg]) -> Result<Vec<Symbol>, CfgError> {
    let names: HashSet<&str> = cfgs.iter().map(|c| c.name().as_str()).collect();
    let mut callees: HashMap<&str, Vec<Symbol>> = HashMap::new();
    for cfg in cfgs {
        let mut cs = Vec::new();
        for e in cfg.edges() {
            if let Some(c) = e.stmt.callee() {
                if !names.contains(c.as_str()) {
                    return Err(CfgError::UndefinedFunction(c.clone()));
                }
                cs.push(c.clone());
            }
        }
        callees.insert(cfg.name().as_str(), cs);
    }
    // Iterative DFS three-color cycle detection + postorder.
    let mut color: HashMap<&str, u8> = HashMap::new(); // 0 white, 1 grey, 2 black
    let mut order: Vec<Symbol> = Vec::new();
    for cfg in cfgs {
        let root = cfg.name().as_str();
        if color.get(root).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        color.insert(root, 1);
        while let Some(&(node, next)) = stack.last() {
            let cs = &callees[node];
            if next < cs.len() {
                stack.last_mut().expect("stack nonempty").1 += 1;
                let child = cs[next].as_str();
                match color.get(child).copied().unwrap_or(0) {
                    0 => {
                        color.insert(child, 1);
                        stack.push((child, 0));
                    }
                    1 => return Err(CfgError::RecursiveCall(Symbol::new(child))),
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                order.push(Symbol::new(node));
                stack.pop();
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn lower(src: &str) -> LoweredProgram {
        lower_program(&parse_program(src).unwrap()).unwrap()
    }

    const APPEND: &str = r#"
        function append(p, q) {
            if (p == null) { return q; }
            var r = p;
            while (r.next != null) { r = r.next; }
            r.next = q;
            return p;
        }
    "#;

    #[test]
    fn append_cfg_matches_paper_fig2() {
        let prog = lower(APPEND);
        let cfg = prog.by_name("append").unwrap();
        cfg.validate().unwrap();
        // Fig. 2 has 8 locations (ℓ0..ℓ6, ℓret) and 9 edges.
        assert_eq!(cfg.loc_count(), 8);
        assert_eq!(cfg.edge_count(), 9);
        assert_eq!(cfg.loop_heads().len(), 1);
        let head = cfg.loop_heads()[0];
        // The loop body is the single-statement `r = r.next` back edge.
        let back = cfg.back_edge(head).unwrap();
        assert_eq!(cfg.edge(back).unwrap().stmt.to_string(), "r = r.next");
        // The exit location joins the two returns.
        assert_eq!(cfg.fwd_in_edges(cfg.exit()).len(), 2);
    }

    #[test]
    fn straightline_chain() {
        let prog = lower("function f() { var x = 1; x = x + 1; return x; }");
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        assert_eq!(cfg.edge_count(), 3);
        assert_eq!(cfg.loc_count(), 4);
        assert!(cfg.loop_heads().is_empty());
    }

    #[test]
    fn if_produces_join() {
        let prog = lower("function f(x) { if (x > 0) { x = 1; } else { x = 2; } return x; }");
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        let joins: Vec<Loc> = cfg.locs().into_iter().filter(|&l| cfg.is_join(l)).collect();
        assert_eq!(joins.len(), 1);
    }

    #[test]
    fn while_produces_single_back_edge_even_with_if_body() {
        let prog = lower(
            "function f(n) { var i = 0; while (i < n) { if (i % 2 == 0) { i = i + 1; } else { i = i + 3; } } return i; }",
        );
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        let head = cfg.loop_heads()[0];
        let backs: Vec<EdgeId> = cfg
            .in_edges(head)
            .iter()
            .copied()
            .filter(|&e| cfg.is_back_edge(e))
            .collect();
        assert_eq!(backs.len(), 1);
        // The funnel edge is a skip.
        assert_eq!(cfg.edge(backs[0]).unwrap().stmt, Stmt::Skip);
    }

    #[test]
    fn empty_while_body_self_loop() {
        let prog = lower("function f(b) { while (b == 0) { } return b; }");
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        let head = cfg.loop_heads()[0];
        let back = cfg.back_edge(head).unwrap();
        let e = cfg.edge(back).unwrap();
        assert_eq!(e.src, e.dst);
    }

    #[test]
    fn nested_loops_have_nested_contexts() {
        let prog = lower(
            "function f(n) { var i = 0; while (i < n) { var j = 0; while (j < i) { j = j + 1; } i = i + 1; } return i; }",
        );
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        let heads = cfg.loop_heads();
        assert_eq!(heads.len(), 2);
        let (outer, inner) = (heads[0], heads[1]);
        assert_eq!(cfg.enclosing_loops(outer), Vec::<Loc>::new());
        assert_eq!(cfg.enclosing_loops(inner), vec![outer]);
        assert!(cfg.natural_loop(outer).contains(&inner));
    }

    #[test]
    fn while_whose_body_always_returns_is_not_a_loop() {
        let prog = lower("function f(n) { while (n > 0) { return 1; } return 0; }");
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        assert!(cfg.loop_heads().is_empty());
        for l in cfg.locs() {
            assert!(cfg.enclosing_loops(l).is_empty());
        }
    }

    #[test]
    fn statements_after_return_are_dropped() {
        let prog = lower("function f() { return 1; var x = 2; }");
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        assert_eq!(cfg.edge_count(), 1);
    }

    #[test]
    fn loop_as_first_statement_makes_entry_a_head() {
        let prog = lower("function f(n) { while (n > 0) { n = n - 1; } return n; }");
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        assert!(cfg.is_loop_head(cfg.entry()));
    }

    #[test]
    fn call_graph_topological_order() {
        let prog = lower(
            "function h() { return 1; } function g() { var x = h(); return x; } function main() { var y = g(); return y; }",
        );
        let order = prog.topo_order();
        let pos = |n: &str| order.iter().position(|s| s.as_str() == n).unwrap();
        assert!(pos("h") < pos("g"));
        assert!(pos("g") < pos("main"));
    }

    #[test]
    fn recursion_rejected() {
        let err =
            lower_program(&parse_program("function f(n) { var x = f(n); return x; }").unwrap())
                .unwrap_err();
        assert!(matches!(err, CfgError::RecursiveCall(_)));
    }

    #[test]
    fn mutual_recursion_rejected() {
        let err = lower_program(
            &parse_program(
                "function f(n) { var x = g(n); return x; } function g(n) { var y = f(n); return y; }",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, CfgError::RecursiveCall(_)));
    }

    #[test]
    fn undefined_callee_rejected() {
        let err =
            lower_program(&parse_program("function main() { var x = nope(); return x; }").unwrap())
                .unwrap_err();
        assert!(matches!(err, CfgError::UndefinedFunction(_)));
    }

    #[test]
    fn call_sites_found() {
        let prog = lower(
            "function g(x) { return x; } function main() { var a = g(1); var b = g(2); return a + b; }",
        );
        assert_eq!(prog.call_sites_of("g").len(), 2);
        assert_eq!(prog.callees("main"), vec![Symbol::new("g")]);
    }

    #[test]
    fn empty_function_body() {
        let prog = lower("function f() { }");
        let cfg = prog.by_name("f").unwrap();
        // Entry falls straight to exit via a skip edge.
        cfg.validate().unwrap();
        assert_eq!(cfg.edge_count(), 1);
    }

    #[test]
    fn edge_ids_are_stable_and_ordered() {
        let prog = lower("function f() { var a = 1; var b = 2; return a; }");
        let cfg = prog.by_name("f").unwrap();
        let ids: Vec<u32> = cfg.edges().map(|e| e.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
    #[test]
    fn for_loop_lowers_to_while_core() {
        let prog = lower(
            "function f(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { s = s + i; } return s; }",
        );
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        assert_eq!(cfg.loop_heads().len(), 1, "for produces exactly one loop");
        let head = cfg.loop_heads()[0];
        // The update statement is inside the loop body (last before the
        // back edge).
        let back = cfg.back_edge(head).unwrap();
        assert_eq!(cfg.edge(back).unwrap().stmt.to_string(), "i = (i + 1)");
    }

    #[test]
    fn do_while_lowers_to_unrolled_body_plus_loop() {
        let prog = lower("function f() { var x = 0; do { x = x + 1; } while (x < 5); return x; }");
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        assert_eq!(cfg.loop_heads().len(), 1);
        // The body statement appears twice: the unrolled first run and the
        // loop copy (distinct CFG edges).
        let copies = cfg
            .edges()
            .filter(|e| e.stmt.to_string() == "x = (x + 1)")
            .count();
        assert_eq!(copies, 2);
    }

    #[test]
    fn nested_bare_blocks_add_no_structure() {
        let flat = lower("function f() { var x = 1; x = x + 1; return x; }");
        let nested = lower("function f() { { var x = 1; { x = x + 1; } } return x; }");
        let (a, b) = (flat.by_name("f").unwrap(), nested.by_name("f").unwrap());
        assert_eq!(a.loc_count(), b.loc_count(), "lexical blocks are free");
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn nested_for_loops_have_nested_contexts() {
        let prog = lower(
            "function f() { var t = 0; for (var i = 0; i < 3; i = i + 1) { for (var j = 0; j < 2; j = j + 1) { t = t + 1; } } return t; }",
        );
        let cfg = prog.by_name("f").unwrap();
        cfg.validate().unwrap();
        let heads = cfg.loop_heads();
        assert_eq!(heads.len(), 2);
        // One head encloses the other.
        let nested = heads.iter().any(|&h| cfg.enclosing_loops(h).len() == 1);
        assert!(nested, "inner for must sit inside the outer one");
    }
}
