//! The typed blocking client: a [`Client<D>`] is a socket connection
//! that implements [`Service<D>`], so code written against the service
//! trait — the REPL's sweep printer, the benches, the equality tests —
//! runs over a socket without changing a line.
//!
//! The client is *typed* where the wire is not: the wire carries opaque
//! state blobs, and `Client<D>` decodes them under `D` after the hello
//! exchange has pinned the server to the same domain tag — a connection
//! to a server analyzing a different domain fails at [`Client::connect`]
//! with a structured [`WireError::DomainMismatch`], never with a
//! misdecoded state.
//!
//! One client is one connection; calls serialize on an internal lock
//! (one in-flight request per connection), so a shared `&Client` is safe
//! from many threads, and *concurrency* comes from opening more
//! connections — exactly the many-clients shape the server is built for.
//! A whole sweep is still one frame ([`Service::query_sweep`]), so a
//! single client gets the engine's coalesced lock/cone profile without
//! needing in-flight pipelining.

use dai_core::driver::ProgramEdit;
use dai_engine::{
    EditOutcome, EngineError, EngineStats, ExplainReport, PersistOutcome, Service, SessionId,
    SessionSnapshot, TraceDump, TraceOp,
};
use dai_lang::Loc;
use dai_persist::frame::{read_frame, write_frame, FrameReadError};
use dai_persist::PersistDomain;
use std::io::Write;
use std::marker::PhantomData;
use std::sync::Mutex;

use crate::proto::{
    decode_message, encode_message, WireError, WireRequest, WireResponse, WireState, MAX_FRAME_LEN,
    PROTOCOL_VERSION, TAG_REQUEST, TAG_RESPONSE,
};
use crate::server::{Addr, Stream};

/// A blocking connection to a [`crate::Server`] for domain `D`.
pub struct Client<D: PersistDomain> {
    stream: Mutex<Stream>,
    _domain: PhantomData<fn() -> D>,
}

fn transport_err(detail: impl std::fmt::Display) -> EngineError {
    EngineError::Remote {
        code: "transport",
        message: detail.to_string(),
    }
}

impl<D: PersistDomain> Client<D> {
    /// Connects to `addr` (any form [`Addr::parse`] accepts) and performs
    /// the hello exchange, pinning the connection to `D`'s domain tag.
    ///
    /// # Errors
    ///
    /// Transport failures as [`EngineError::Remote`] (code `transport`);
    /// a server speaking another protocol version (code `version`) or
    /// analyzing another domain (code `domain`) as the mapped wire error.
    pub fn connect(addr: &str) -> Result<Client<D>, EngineError> {
        let addr = Addr::parse(addr).map_err(transport_err)?;
        Client::connect_addr(&addr)
    }

    /// [`Client::connect`] over an already-parsed address.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_addr(addr: &Addr) -> Result<Client<D>, EngineError> {
        let stream = Stream::connect(addr).map_err(transport_err)?;
        let client = Client {
            stream: Mutex::new(stream),
            _domain: PhantomData,
        };
        match client.call(&WireRequest::Hello {
            domain: D::domain_tag(),
        })? {
            WireResponse::HelloOk { .. } => Ok(client),
            WireResponse::Error(e) => Err(e.into_engine()),
            other => Err(transport_err(format!(
                "unexpected hello response {other:?}"
            ))),
        }
    }

    /// Sends one request frame and reads one response frame.
    fn call(&self, request: &WireRequest) -> Result<WireResponse, EngineError> {
        let mut stream = self.stream.lock().expect("client connection poisoned");
        let payload = encode_message(request);
        // The server rejects oversized frames from the header alone and
        // would then parse the payload bytes we sent as garbage frames —
        // never put such a frame on the wire in the first place.
        if payload.len() > MAX_FRAME_LEN {
            return Err(EngineError::Remote {
                code: "protocol",
                message: format!(
                    "request of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame bound",
                    payload.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(payload.len() + 32);
        write_frame(&mut out, TAG_REQUEST, PROTOCOL_VERSION, &payload);
        stream.write_all(&out).map_err(transport_err)?;
        stream.flush().map_err(transport_err)?;
        let frame = read_frame(&mut *stream, MAX_FRAME_LEN).map_err(|e| match e {
            FrameReadError::Eof | FrameReadError::Truncated => {
                transport_err("server closed the connection")
            }
            other => transport_err(other),
        })?;
        if frame.header.tag != TAG_RESPONSE {
            return Err(transport_err(format!(
                "unexpected response frame tag {:?}",
                frame.header.tag
            )));
        }
        if frame.header.version != PROTOCOL_VERSION {
            return Err(WireError::UnsupportedVersion {
                got: frame.header.version,
                want: PROTOCOL_VERSION,
            }
            .into_engine());
        }
        let payload = frame
            .payload
            .ok_or_else(|| transport_err("response frame checksum mismatch"))?;
        decode_message::<WireResponse>(&payload)
            .map_err(|e| transport_err(format!("undecodable response: {e}")))
    }

    /// As [`Client::call`], but a `WireResponse::Error` becomes `Err`.
    fn call_ok(&self, request: &WireRequest) -> Result<WireResponse, EngineError> {
        match self.call(request)? {
            WireResponse::Error(e) => Err(e.into_engine()),
            other => Ok(other),
        }
    }

    fn decode_state(blob: &WireState) -> Result<D, EngineError> {
        blob.decode::<D>().map_err(|e| EngineError::Remote {
            code: "protocol",
            message: format!("state blob does not decode under {}: {e}", D::domain_tag()),
        })
    }

    fn states_of(&self, request: &WireRequest, expected: usize) -> Vec<Result<D, EngineError>> {
        match self.call_ok(request) {
            Ok(WireResponse::States(members)) if members.len() == expected => members
                .into_iter()
                .map(|m| match m {
                    Ok(blob) => Self::decode_state(&blob),
                    Err(e) => Err(e.into_engine()),
                })
                .collect(),
            Ok(other) => {
                let err =
                    || transport_err(format!("expected {expected} member answers, got {other:?}"));
                (0..expected).map(|_| Err(err())).collect()
            }
            Err(e) => (0..expected)
                .map(|_| {
                    Err(match &e {
                        EngineError::Remote { code, message } => EngineError::Remote {
                            code,
                            message: message.clone(),
                        },
                        other => transport_err(other),
                    })
                })
                .collect(),
        }
    }

    /// Releases `session` from this connection's server-side ownership,
    /// so it survives this connection (the explicit handoff). Returns
    /// `true` when this connection owned it.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn handoff(&self, session: SessionId) -> Result<bool, EngineError> {
        match self.call_ok(&WireRequest::Handoff { session: session.0 })? {
            WireResponse::Released { owned } => Ok(owned),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Sends one trace op to the server. Every op answers with a dump;
    /// enable/disable answer an empty one.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace(&self, op: TraceOp) -> Result<TraceDump, EngineError> {
        match self.call_ok(&WireRequest::Trace { op })? {
            WireResponse::Trace(dump) => Ok(dump),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Turns the server's runtime trace recording on.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_enable(&self) -> Result<(), EngineError> {
        self.trace(TraceOp::Enable).map(|_| ())
    }

    /// Turns the server's runtime trace recording off.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_disable(&self) -> Result<(), EngineError> {
        self.trace(TraceOp::Disable).map(|_| ())
    }

    /// Drains the server's recorded trace.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_dump(&self) -> Result<TraceDump, EngineError> {
        self.trace(TraceOp::Dump)
    }

    /// The server's Prometheus metrics exposition (live engine stats
    /// are published into gauges before rendering).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&self) -> Result<String, EngineError> {
        match self.call_ok(&WireRequest::Metrics)? {
            WireResponse::Metrics { text } => Ok(text),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }
}

impl<D: PersistDomain> Service<D> for Client<D> {
    fn open(&self, name: &str, source: &str) -> Result<SessionId, EngineError> {
        match self.call_ok(&WireRequest::Open {
            name: name.to_string(),
            source: source.to_string(),
        })? {
            WireResponse::Opened { session } => Ok(SessionId(session)),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn close(&self, session: SessionId) -> Result<bool, EngineError> {
        match self.call_ok(&WireRequest::Close { session: session.0 })? {
            WireResponse::Closed { existed } => Ok(existed),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn query(&self, session: SessionId, func: &str, loc: Loc) -> Result<D, EngineError> {
        match self.call_ok(&WireRequest::Query {
            session: session.0,
            func: func.to_string(),
            loc,
        })? {
            WireResponse::State(blob) => Self::decode_state(&blob),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn query_batch(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Result<D, EngineError>> {
        self.states_of(
            &WireRequest::QueryBatch {
                session: session.0,
                func: func.to_string(),
                locs: locs.to_vec(),
            },
            locs.len(),
        )
    }

    fn query_sweep(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Vec<Result<D, EngineError>> {
        self.states_of(
            &WireRequest::Sweep {
                session: session.0,
                targets: targets.to_vec(),
            },
            targets.len(),
        )
    }

    fn edit(&self, session: SessionId, edit: &ProgramEdit) -> Result<EditOutcome, EngineError> {
        match self.call_ok(&WireRequest::Edit {
            session: session.0,
            edit: edit.clone(),
        })? {
            WireResponse::Edited(outcome) => Ok(outcome),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn snapshot(&self, session: SessionId) -> Result<SessionSnapshot, EngineError> {
        match self.call_ok(&WireRequest::Snapshot { session: session.0 })? {
            WireResponse::Snapshot(snap) => Ok(snap),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn save(&self, session: SessionId, path: &str) -> Result<PersistOutcome, EngineError> {
        match self.call_ok(&WireRequest::Save {
            session: session.0,
            path: path.to_string(),
        })? {
            WireResponse::Saved(outcome) => Ok(outcome),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn load(&self, path: &str) -> Result<(SessionId, PersistOutcome), EngineError> {
        match self.call_ok(&WireRequest::Load {
            path: path.to_string(),
        })? {
            WireResponse::Loaded { session, outcome } => Ok((SessionId(session), outcome)),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn stats(&self) -> Result<EngineStats, EngineError> {
        match self.call_ok(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn explain(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Result<ExplainReport, EngineError> {
        match self.call_ok(&WireRequest::Explain {
            session: session.0,
            targets: targets.to_vec(),
        })? {
            WireResponse::Explain(report) => Ok(report),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }
}
