//! The typed blocking client: a [`Client<D>`] is a socket connection
//! that implements [`Service<D>`], so code written against the service
//! trait — the REPL's sweep printer, the benches, the equality tests —
//! runs over a socket without changing a line.
//!
//! The client is *typed* where the wire is not: the wire carries opaque
//! state blobs, and `Client<D>` decodes them under `D` after the hello
//! exchange has pinned the server to the same domain tag — a connection
//! to a server analyzing a different domain fails at [`Client::connect`]
//! with a structured [`WireError::DomainMismatch`], never with a
//! misdecoded state.
//!
//! ## Protocol negotiation
//!
//! [`Client::connect`] speaks [`PROTOCOL_VERSION`] and **downshifts by
//! reconnecting** when the server answers
//! [`WireError::UnsupportedVersion`] naming an older version it does
//! speak; [`ClientOptions::protocol`] pins the version instead (the
//! compatibility tests use it to drive a genuine v3 client against a v4
//! server). On a ≥ 4 connection every request frame carries a fresh
//! request id and the response's echoed id is verified.
//!
//! ## Pipelining
//!
//! Service calls serialize on an internal lock — one in-flight request
//! per connection — so a shared `&Client` is safe from many threads. A
//! whole sweep is still one frame ([`Service::query_sweep`]); and on
//! protocol ≥ 4, [`Client::pipeline_queries`] writes **many single-query
//! frames back-to-back** before reading any response, which the server's
//! event loop coalesces into one engine batch (one session-lock
//! acquisition, one union cone) while answering each id individually —
//! the in-process lock profile, reproduced by pipelining alone.
//!
//! If a call panics mid-frame (poisoning the connection lock), later
//! calls do not cascade the panic: they fail with a structured
//! [`EngineError::Remote`] (code `disconnected`), because the stream
//! position is unknowable and the connection is unrecoverable.

use dai_core::driver::ProgramEdit;
use dai_engine::{
    EditOutcome, EngineError, EngineStats, ExplainReport, PersistOutcome, Service, SessionId,
    SessionSnapshot, TraceDump, TraceOp,
};
use dai_lang::Loc;
use dai_persist::frame::{read_frame_expecting, write_frame_id, FrameReadError, StreamFrame};
use dai_persist::PersistDomain;
use std::collections::HashMap;
use std::io::Write;
use std::marker::PhantomData;
use std::sync::{Mutex, MutexGuard};

use crate::proto::{
    decode_message, encode_message, WireError, WireRequest, WireResponse, WireState, MAX_FRAME_LEN,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, TAG_REQUEST, TAG_RESPONSE,
};
use crate::server::{Addr, Stream};

/// Client-side connection options for [`Client::connect_with`].
#[derive(Debug, Clone, Default)]
pub struct ClientOptions {
    /// The auth token to present in the hello, for servers configured to
    /// require one. Requires protocol ≥ 4 (the v3 hello layout cannot
    /// carry a token), so a token plus a v3 downshift is a hard error
    /// rather than a silently-dropped credential.
    pub auth: Option<String>,
    /// Pins the protocol version instead of negotiating. `None` tries
    /// [`PROTOCOL_VERSION`] and downshifts on
    /// [`WireError::UnsupportedVersion`].
    pub protocol: Option<u16>,
}

struct ClientInner {
    stream: Stream,
    /// The negotiated (or pinned) protocol version of this connection.
    proto: u16,
    /// The next request id (protocol ≥ 4; ids start at 1 — id 0 is the
    /// server's "unattributable frame" sentinel).
    next_id: u64,
}

/// A blocking connection to a [`crate::Server`] for domain `D`.
pub struct Client<D: PersistDomain> {
    inner: Mutex<ClientInner>,
    /// Memoizes state-blob decoding: the server's warm answers repeat
    /// byte-for-byte (its own encode cache hands back identical blobs),
    /// so repeated demands decode once and then clone. Keyed by blob
    /// bytes, so this is a pure memoization of [`WireState::decode`] —
    /// a hit and a fresh decode are indistinguishable.
    decode_cache: Mutex<HashMap<Vec<u8>, D, dai_memo::FxBuild>>,
    _domain: PhantomData<fn() -> D>,
}

/// [`Client::decode_cache`] entry bound; the map is dropped whole when
/// it fills.
const DECODE_CACHE_CAP: usize = 4096;

fn transport_err(detail: impl std::fmt::Display) -> EngineError {
    EngineError::Remote {
        code: "transport",
        message: detail.to_string(),
    }
}

/// The structured failure every call on a poisoned connection gets: a
/// prior call panicked mid-frame, so the stream position is unknowable.
fn poisoned_err() -> EngineError {
    EngineError::Remote {
        code: "disconnected",
        message: "connection unusable: a prior call on it panicked mid-frame".to_string(),
    }
}

/// Duplicates a failure for fan-out to several member results
/// (`EngineError` is not `Clone`; the remote variants carry strings).
fn refail(e: &EngineError) -> EngineError {
    match e {
        EngineError::Remote { code, message } => EngineError::Remote {
            code,
            message: message.clone(),
        },
        other => transport_err(other),
    }
}

impl<D: PersistDomain> Client<D> {
    /// Connects to `addr` (any form [`Addr::parse`] accepts) and performs
    /// the hello exchange, pinning the connection to `D`'s domain tag.
    ///
    /// # Errors
    ///
    /// Transport failures as [`EngineError::Remote`] (code `transport`);
    /// a server speaking no common protocol version (code `version`),
    /// requiring an auth token (code `unauthorized`), or analyzing
    /// another domain (code `domain`) as the mapped wire error.
    pub fn connect(addr: &str) -> Result<Client<D>, EngineError> {
        let addr = Addr::parse(addr).map_err(transport_err)?;
        Client::connect_addr(&addr)
    }

    /// [`Client::connect`] over an already-parsed address.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_addr(addr: &Addr) -> Result<Client<D>, EngineError> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// [`Client::connect_addr`] with explicit [`ClientOptions`] (auth
    /// token, pinned protocol version).
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with(addr: &Addr, options: ClientOptions) -> Result<Client<D>, EngineError> {
        let mut version = options.protocol.unwrap_or(PROTOCOL_VERSION);
        loop {
            if options.auth.is_some() && version < 4 {
                return Err(EngineError::Remote {
                    code: "unauthorized",
                    message: format!(
                        "cannot present an auth token at protocol {version} (tokens need ≥ 4)"
                    ),
                });
            }
            let stream = Stream::connect(addr).map_err(transport_err)?;
            let mut inner = ClientInner {
                stream,
                proto: version,
                next_id: 1,
            };
            let hello = WireRequest::Hello {
                domain: D::domain_tag(),
                auth: options.auth.clone(),
            };
            match call_on(&mut inner, &hello)? {
                WireResponse::HelloOk { .. } => {
                    return Ok(Client {
                        inner: Mutex::new(inner),
                        decode_cache: Mutex::new(HashMap::default()),
                        _domain: PhantomData,
                    })
                }
                WireResponse::Error(WireError::UnsupportedVersion { want, .. })
                    if options.protocol.is_none()
                        && want < version
                        && want >= MIN_PROTOCOL_VERSION =>
                {
                    // The server speaks an older protocol: reconnect at
                    // its version (frame layouts differ, so a fresh
                    // stream keeps both sides at a frame boundary).
                    version = want;
                }
                WireResponse::Error(e) => return Err(e.into_engine()),
                other => {
                    return Err(transport_err(format!(
                        "unexpected hello response {other:?}"
                    )))
                }
            }
        }
    }

    /// The connection's negotiated protocol version.
    pub fn protocol(&self) -> u16 {
        self.inner.lock().map(|g| g.proto).unwrap_or(0)
    }

    fn lock_inner(&self) -> Result<MutexGuard<'_, ClientInner>, EngineError> {
        self.inner.lock().map_err(|_| poisoned_err())
    }

    /// Sends one request frame and reads one response frame.
    fn call(&self, request: &WireRequest) -> Result<WireResponse, EngineError> {
        let mut inner = self.lock_inner()?;
        call_on(&mut inner, request)
    }

    /// As [`Client::call`], but a `WireResponse::Error` becomes `Err`.
    fn call_ok(&self, request: &WireRequest) -> Result<WireResponse, EngineError> {
        match self.call(request)? {
            WireResponse::Error(e) => Err(e.into_engine()),
            other => Ok(other),
        }
    }

    fn decode_state(&self, blob: &WireState) -> Result<D, EngineError> {
        let mut cache = match self.decode_cache.lock() {
            Ok(g) => g,
            // A panic mid-decode leaves no partial entry worth keeping;
            // just decode uncached from then on.
            Err(_) => return Self::decode_state_uncached(blob),
        };
        if let Some(d) = cache.get(blob.0.as_slice()) {
            return Ok(d.clone());
        }
        let d = Self::decode_state_uncached(blob)?;
        if cache.len() >= DECODE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(blob.0.clone(), d.clone());
        Ok(d)
    }

    fn decode_state_uncached(blob: &WireState) -> Result<D, EngineError> {
        blob.decode::<D>().map_err(|e| EngineError::Remote {
            code: "protocol",
            message: format!("state blob does not decode under {}: {e}", D::domain_tag()),
        })
    }

    fn states_of(&self, request: &WireRequest, expected: usize) -> Vec<Result<D, EngineError>> {
        match self.call_ok(request) {
            Ok(WireResponse::States(members)) if members.len() == expected => members
                .into_iter()
                .map(|m| match m {
                    Ok(blob) => self.decode_state(&blob),
                    Err(e) => Err(e.into_engine()),
                })
                .collect(),
            Ok(other) => {
                let err =
                    || transport_err(format!("expected {expected} member answers, got {other:?}"));
                (0..expected).map(|_| Err(err())).collect()
            }
            Err(e) => (0..expected).map(|_| Err(refail(&e))).collect(),
        }
    }

    /// Demands many locations of one function as **pipelined single-query
    /// frames**: on protocol ≥ 4, every frame is written before any
    /// response is read, and answers are matched back by request id (the
    /// server may complete them out of order). The server coalesces the
    /// adjacent frames into one engine batch, so this reproduces
    /// [`Service::query_batch`]'s lock/cone profile from plain `Query`
    /// frames. On a v3 connection it degrades to serial round trips.
    ///
    /// Answers come back in `locs` order, each member succeeding or
    /// failing on its own.
    pub fn pipeline_queries(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Result<D, EngineError>> {
        if locs.is_empty() {
            return Vec::new();
        }
        let mut inner = match self.lock_inner() {
            Ok(g) => g,
            Err(e) => return locs.iter().map(|_| Err(refail(&e))).collect(),
        };
        if inner.proto < 4 {
            // v3 has no request ids, so in-flight frames cannot be told
            // apart; fall back to one round trip per query.
            drop(inner);
            return locs
                .iter()
                .map(|&loc| Service::query(self, session, func, loc))
                .collect();
        }
        // Write every request frame back-to-back, then read the answers.
        let mut out = Vec::new();
        let mut ids = Vec::with_capacity(locs.len());
        for &loc in locs {
            let request = WireRequest::Query {
                session: session.0,
                func: func.to_string(),
                loc,
            };
            let id = inner.next_id;
            inner.next_id += 1;
            ids.push(id);
            write_frame_id(
                &mut out,
                TAG_REQUEST,
                inner.proto,
                Some(id),
                &encode_message(&request),
            );
        }
        if let Err(e) = inner
            .stream
            .write_all(&out)
            .and_then(|()| inner.stream.flush())
            .map_err(transport_err)
        {
            return locs.iter().map(|_| Err(refail(&e))).collect();
        }
        let mut by_id: HashMap<u64, Result<D, EngineError>> = HashMap::new();
        for _ in 0..locs.len() {
            match read_response(&mut inner) {
                Ok((Some(id), response)) => {
                    let member = match response {
                        WireResponse::State(blob) => self.decode_state(&blob),
                        WireResponse::Error(e) => Err(e.into_engine()),
                        other => Err(transport_err(format!("unexpected response {other:?}"))),
                    };
                    by_id.insert(id, member);
                }
                Ok((None, response)) => {
                    let e = transport_err(format!("response frame without an id: {response:?}"));
                    return fill_by_id(&ids, by_id, &e);
                }
                Err(e) => return fill_by_id(&ids, by_id, &e),
            }
        }
        fill_by_id(&ids, by_id, &transport_err("response id never arrived"))
    }

    /// Demands `depth` whole sweeps as **pipelined sweep frames**: on
    /// protocol ≥ 4, all `depth` frames are written before any response
    /// is read, so syscall and scheduling round-trip costs amortize
    /// across the in-flight window — the shape a client repeating a
    /// sweep (or issuing several independent ones) should use for
    /// throughput. On a v3 connection it degrades to serial sweeps.
    ///
    /// Returns one answer vector per sweep, in issue order.
    pub fn pipeline_sweeps(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
        depth: usize,
    ) -> Vec<Vec<Result<D, EngineError>>> {
        let depth = depth.max(1);
        let sweep_err = |e: &EngineError| -> Vec<Result<D, EngineError>> {
            targets.iter().map(|_| Err(refail(e))).collect()
        };
        let mut inner = match self.lock_inner() {
            Ok(g) => g,
            Err(e) => return (0..depth).map(|_| sweep_err(&e)).collect(),
        };
        if inner.proto < 4 {
            drop(inner);
            return (0..depth)
                .map(|_| Service::query_sweep(self, session, targets))
                .collect();
        }
        let request = WireRequest::Sweep {
            session: session.0,
            targets: targets.to_vec(),
        };
        let payload = encode_message(&request);
        let mut out = Vec::with_capacity(depth * (payload.len() + 32));
        let mut ids = Vec::with_capacity(depth);
        for _ in 0..depth {
            let id = inner.next_id;
            inner.next_id += 1;
            ids.push(id);
            write_frame_id(&mut out, TAG_REQUEST, inner.proto, Some(id), &payload);
        }
        if let Err(e) = inner
            .stream
            .write_all(&out)
            .and_then(|()| inner.stream.flush())
            .map_err(transport_err)
        {
            return (0..depth).map(|_| sweep_err(&e)).collect();
        }
        let mut by_id: HashMap<u64, Vec<Result<D, EngineError>>> = HashMap::new();
        for _ in 0..depth {
            match read_response(&mut inner) {
                Ok((Some(id), WireResponse::States(members))) => {
                    let answers = members
                        .into_iter()
                        .map(|m| match m {
                            Ok(blob) => self.decode_state(&blob),
                            Err(e) => Err(e.into_engine()),
                        })
                        .collect();
                    by_id.insert(id, answers);
                }
                Ok((Some(id), WireResponse::Error(e))) => {
                    by_id.insert(id, sweep_err(&e.into_engine()));
                }
                Ok((Some(id), other)) => {
                    let e = transport_err(format!("unexpected response {other:?}"));
                    by_id.insert(id, sweep_err(&e));
                }
                Ok((None, response)) => {
                    let e = transport_err(format!("response frame without an id: {response:?}"));
                    return ids
                        .iter()
                        .map(|id| by_id.remove(id).unwrap_or_else(|| sweep_err(&e)))
                        .collect();
                }
                Err(e) => {
                    return ids
                        .iter()
                        .map(|id| by_id.remove(id).unwrap_or_else(|| sweep_err(&e)))
                        .collect();
                }
            }
        }
        let missing = transport_err("response id never arrived");
        ids.iter()
            .map(|id| by_id.remove(id).unwrap_or_else(|| sweep_err(&missing)))
            .collect()
    }

    /// Releases `session` from this connection's server-side ownership,
    /// so it survives this connection (the explicit handoff). Returns
    /// `true` when this connection owned it.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn handoff(&self, session: SessionId) -> Result<bool, EngineError> {
        match self.call_ok(&WireRequest::Handoff { session: session.0 })? {
            WireResponse::Released { owned } => Ok(owned),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Sends one trace op to the server. Every op answers with a dump;
    /// enable/disable answer an empty one.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace(&self, op: TraceOp) -> Result<TraceDump, EngineError> {
        match self.call_ok(&WireRequest::Trace { op })? {
            WireResponse::Trace(dump) => Ok(dump),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Turns the server's runtime trace recording on.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_enable(&self) -> Result<(), EngineError> {
        self.trace(TraceOp::Enable).map(|_| ())
    }

    /// Turns the server's runtime trace recording off.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_disable(&self) -> Result<(), EngineError> {
        self.trace(TraceOp::Disable).map(|_| ())
    }

    /// Drains the server's recorded trace.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn trace_dump(&self) -> Result<TraceDump, EngineError> {
        self.trace(TraceOp::Dump)
    }

    /// The server's Prometheus metrics exposition (live engine stats
    /// are published into gauges before rendering).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&self) -> Result<String, EngineError> {
        match self.call_ok(&WireRequest::Metrics)? {
            WireResponse::Metrics { text } => Ok(text),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Pulls journal frames for replication: every frame with sequence
    /// number strictly greater than `after`, at most `max` per call,
    /// verbatim off the server's journal (disk format == wire format).
    /// [`crate::Replica`] drives this in a loop; call it directly to
    /// tail a leader by hand.
    ///
    /// # Errors
    ///
    /// `rejected` (kind `no-journal`) when the server has no journal
    /// attached; transport failures.
    pub fn subscribe(&self, after: u64, max: u32) -> Result<StreamBatch, EngineError> {
        match self.call_ok(&WireRequest::Subscribe { after, max })? {
            WireResponse::Stream {
                head_seq,
                last_seq,
                count,
                frames,
            } => Ok(StreamBatch {
                head_seq,
                last_seq,
                count,
                frames,
            }),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }
}

/// One [`Client::subscribe`] answer: a batch of journal frames plus the
/// leader's head sequence number at answer time (lag = `head_seq` minus
/// the last applied sequence).
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// The leader's journal head when the batch was cut.
    pub head_seq: u64,
    /// Sequence number of the final frame in `frames` (0 when empty).
    pub last_seq: u64,
    /// Number of frames in `frames`.
    pub count: u32,
    /// The frames, concatenated verbatim as they sit on the leader's
    /// disk.
    pub frames: Vec<u8>,
}

/// Orders pipelined answers back into request order, filling the ids a
/// failure cut off with copies of that failure.
fn fill_by_id<D>(
    ids: &[u64],
    mut by_id: HashMap<u64, Result<D, EngineError>>,
    missing: &EngineError,
) -> Vec<Result<D, EngineError>> {
    ids.iter()
        .map(|id| by_id.remove(id).unwrap_or_else(|| Err(refail(missing))))
        .collect()
}

/// One round trip on a locked connection: write the request frame (with
/// a fresh id on protocol ≥ 4), read one response frame, verify the id
/// echo, decode.
fn call_on(inner: &mut ClientInner, request: &WireRequest) -> Result<WireResponse, EngineError> {
    let payload = encode_message(request);
    // The server rejects oversized frames from the header alone and
    // would then parse the payload bytes we sent as garbage frames —
    // never put such a frame on the wire in the first place.
    if payload.len() > MAX_FRAME_LEN {
        return Err(EngineError::Remote {
            code: "protocol",
            message: format!(
                "request of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame bound",
                payload.len()
            ),
        });
    }
    let id = (inner.proto >= 4).then(|| {
        let id = inner.next_id;
        inner.next_id += 1;
        id
    });
    let mut out = Vec::with_capacity(payload.len() + 32);
    write_frame_id(&mut out, TAG_REQUEST, inner.proto, id, &payload);
    inner.stream.write_all(&out).map_err(transport_err)?;
    inner.stream.flush().map_err(transport_err)?;
    let (got_id, response) = read_response(inner)?;
    if let Some(id) = id {
        if got_id != Some(id) {
            return Err(transport_err(format!(
                "response id {got_id:?} does not echo request id {id}"
            )));
        }
    }
    Ok(response)
}

/// Reads and decodes one response frame, returning its echoed id (`None`
/// on a v3 connection, whose frames carry no id field).
fn read_response(inner: &mut ClientInner) -> Result<(Option<u64>, WireResponse), EngineError> {
    let proto = inner.proto;
    let frame: StreamFrame = read_frame_expecting(&mut inner.stream, MAX_FRAME_LEN, |h| {
        h.tag == TAG_RESPONSE && h.version >= 4
    })
    .map_err(|e| match e {
        FrameReadError::Eof | FrameReadError::Truncated => {
            transport_err("server closed the connection")
        }
        other => transport_err(other),
    })?;
    if frame.header.tag != TAG_RESPONSE {
        return Err(transport_err(format!(
            "unexpected response frame tag {:?}",
            frame.header.tag
        )));
    }
    if frame.header.version != proto {
        return Err(WireError::UnsupportedVersion {
            got: frame.header.version,
            want: proto,
        }
        .into_engine());
    }
    let payload = frame
        .payload
        .ok_or_else(|| transport_err("response frame checksum mismatch"))?;
    let response = decode_message::<WireResponse>(&payload)
        .map_err(|e| transport_err(format!("undecodable response: {e}")))?;
    Ok((frame.id, response))
}

impl<D: PersistDomain> Service<D> for Client<D> {
    fn open(&self, name: &str, source: &str) -> Result<SessionId, EngineError> {
        match self.call_ok(&WireRequest::Open {
            name: name.to_string(),
            source: source.to_string(),
        })? {
            WireResponse::Opened { session } => Ok(SessionId(session)),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn close(&self, session: SessionId) -> Result<bool, EngineError> {
        match self.call_ok(&WireRequest::Close { session: session.0 })? {
            WireResponse::Closed { existed } => Ok(existed),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn query(&self, session: SessionId, func: &str, loc: Loc) -> Result<D, EngineError> {
        match self.call_ok(&WireRequest::Query {
            session: session.0,
            func: func.to_string(),
            loc,
        })? {
            WireResponse::State(blob) => self.decode_state(&blob),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn query_batch(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Result<D, EngineError>> {
        self.states_of(
            &WireRequest::QueryBatch {
                session: session.0,
                func: func.to_string(),
                locs: locs.to_vec(),
            },
            locs.len(),
        )
    }

    fn query_sweep(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Vec<Result<D, EngineError>> {
        self.states_of(
            &WireRequest::Sweep {
                session: session.0,
                targets: targets.to_vec(),
            },
            targets.len(),
        )
    }

    fn edit(&self, session: SessionId, edit: &ProgramEdit) -> Result<EditOutcome, EngineError> {
        match self.call_ok(&WireRequest::Edit {
            session: session.0,
            edit: edit.clone(),
        })? {
            WireResponse::Edited(outcome) => Ok(outcome),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn snapshot(&self, session: SessionId) -> Result<SessionSnapshot, EngineError> {
        match self.call_ok(&WireRequest::Snapshot { session: session.0 })? {
            WireResponse::Snapshot(snap) => Ok(snap),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn save(&self, session: SessionId, path: &str) -> Result<PersistOutcome, EngineError> {
        match self.call_ok(&WireRequest::Save {
            session: session.0,
            path: path.to_string(),
        })? {
            WireResponse::Saved(outcome) => Ok(outcome),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn load(&self, path: &str) -> Result<(SessionId, PersistOutcome), EngineError> {
        match self.call_ok(&WireRequest::Load {
            path: path.to_string(),
        })? {
            WireResponse::Loaded { session, outcome } => Ok((SessionId(session), outcome)),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn stats(&self) -> Result<EngineStats, EngineError> {
        match self.call_ok(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }

    fn explain(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Result<ExplainReport, EngineError> {
        match self.call_ok(&WireRequest::Explain {
            session: session.0,
            targets: targets.to_vec(),
        })? {
            WireResponse::Explain(report) => Ok(report),
            other => Err(transport_err(format!("unexpected response {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use dai_domains::IntervalDomain;
    use dai_engine::Engine;
    use std::sync::Arc;

    /// A panic while a thread holds the client's stream lock must not
    /// cascade: later calls on the client get a structured
    /// `disconnected` error, not a poisoned-mutex panic of their own.
    #[test]
    fn poisoned_stream_lock_degrades_to_a_structured_error() {
        let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
        let path = std::env::temp_dir()
            .join(format!("dai-rpc-poison-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let server = Server::bind(&Addr::Unix(path), engine).unwrap();
        let client: Arc<Client<IntervalDomain>> =
            Arc::new(Client::connect(&server.addr().to_string()).unwrap());

        // Poison the lock: a thread panics while holding it, as a panic
        // mid-frame would.
        let victim = Arc::clone(&client);
        let panicked = std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(move || {
                let _guard = victim.inner.lock().unwrap();
                panic!("mid-frame panic");
            })
            .unwrap()
            .join();
        assert!(panicked.is_err(), "the poisoner must have panicked");

        match client.open("after-poison", "function f() { return 1; }") {
            Err(EngineError::Remote { code, message }) => {
                assert_eq!(code, "disconnected");
                assert!(message.contains("panicked"), "{message}");
            }
            other => panic!("expected a structured disconnect, got {other:?}"),
        }
        server.shutdown();
    }
}
