//! The wire protocol: versioned, domain-erased request/response messages
//! and the structured error they fail with.
//!
//! Every message is **one** [`dai_persist::frame`] frame — the same
//! tag + version + length + payload + FxHash64-checksum layout snapshot
//! sections use on disk:
//!
//! ```text
//! [u8;4]  tag        "RPCQ" (request) | "RPCS" (response)
//! u16     version    PROTOCOL_VERSION
//! u64     length     payload length
//! bytes   payload    one Persist-encoded WireRequest / WireResponse
//! u64     checksum   FxHash64 over payload + length
//! ```
//!
//! ## Domain erasure
//!
//! The messages are not generic over the abstract domain: states travel
//! as **opaque byte blobs** ([`WireState`]) holding the domain's
//! [`Persist`] encoding, and the domain is *named* — once per connection
//! — in the [`WireRequest::Hello`] exchange. A server for domain `D`
//! rejects a hello naming any other tag with
//! [`WireError::DomainMismatch`], so blobs can never be misdecoded under
//! the wrong domain; after the hello, neither side re-sends the tag.
//!
//! ## Version negotiation
//!
//! The frame header's `version` field carries the protocol version. The
//! server speaks [`PROTOCOL_VERSION`] but accepts every version down to
//! [`MIN_PROTOCOL_VERSION`]: the **first valid-versioned frame pins the
//! connection** (normally the hello; even a *rejected* hello is answered
//! in its own frame layout) — a v3 hello gets a v3 connection (serial,
//! in-order, id-less responses), a v4 hello gets a multiplexed
//! connection whose frames carry request ids and whose responses may
//! complete out of order. A frame outside the supported range (or, after the hello,
//! differing from the pinned version) answers
//! [`WireError::UnsupportedVersion`] naming the version the server
//! speaks (the frame is still fully consumed, so the connection stays
//! usable); the v4 client downshifts by reconnecting at v3.
//!
//! ## Request ids (protocol ≥ 4)
//!
//! v4 frames carry a `u64` request id between the frame header's length
//! field and the payload ([`dai_persist::frame::write_frame_id`]); the
//! checksum covers it. The server echoes each request's id on its
//! response, so one connection can keep many requests in flight and
//! match answers out of order. v3 frames have no id field — both layouts
//! are parsed off the same stream by header `(tag, version)`.
//!
//! ## Error codes
//!
//! [`WireError::code`] gives every failure a stable, machine-readable
//! code (documented in `crates/rpc/README.md`); remote clients map codes
//! with in-process counterparts back onto [`dai_engine::EngineError`]
//! variants and the rest onto [`dai_engine::EngineError::Remote`].

use dai_core::driver::ProgramEdit;
use dai_engine::{
    EditOutcome, EngineError, EngineStats, ExplainReport, PersistOutcome, SessionSnapshot,
    TraceDump, TraceOp,
};
use dai_lang::Loc;
use dai_persist::{Persist, PersistError, Reader, Writer};

/// The wire protocol version spoken by this build. Bumped when message
/// layouts change; the frame header carries it on every message.
/// Version 2: `QueryStats` gained the compiled/interpreted transfer
/// counters. Version 3: the `Explain` request/response pair, and
/// `EngineStats` gained the explain totals. Version 4: the request-id
/// frame field (multiplexed pipelining), the hello auth token, and the
/// `unauthorized`/`overload` error codes.
pub const PROTOCOL_VERSION: u16 = 4;

/// The oldest protocol version the server still accepts. A v3 hello
/// pins its connection to the v3 framing (no request ids, in-order
/// responses) and the v3 message layouts (no auth field, the v4-only
/// error variants downgraded — see [`WireError::downgrade_for`]).
pub const MIN_PROTOCOL_VERSION: u16 = 3;

/// Frame tag of client → server messages.
pub const TAG_REQUEST: [u8; 4] = *b"RPCQ";

/// Frame tag of server → client messages.
pub const TAG_RESPONSE: [u8; 4] = *b"RPCS";

/// Upper bound on a frame payload either side will read. A header
/// declaring more fails fast ([`WireError::Protocol`]) without the
/// payload being allocated or consumed — one lying header cannot make a
/// peer allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// An abstract state as it travels: the domain's [`Persist`] encoding,
/// opaque to the transport. The domain it decodes under was pinned by
/// the connection's hello exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireState(pub Vec<u8>);

impl WireState {
    /// Encodes a state.
    pub fn encode<D: Persist>(state: &D) -> WireState {
        let mut w = Writer::new();
        state.put(&mut w);
        WireState(w.into_bytes())
    }

    /// Decodes the blob under `D`, requiring every byte to be consumed.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the blob does not decode (or has trailing
    /// bytes) under `D` — a domain-mismatch symptom the hello exchange
    /// exists to prevent.
    pub fn decode<D: Persist>(&self) -> Result<D, PersistError> {
        let mut r = Reader::new(&self.0);
        let d = D::get(&mut r)?;
        if !r.is_exhausted() {
            return Err(PersistError::Corrupt(format!(
                "abstract state blob has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(d)
    }
}

impl Persist for WireState {
    fn put(&self, w: &mut Writer) {
        w.u64(self.0.len() as u64);
        w.bytes(&self.0);
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n = r.len_prefix()?;
        Ok(WireState(r.take(n)?.to_vec()))
    }
}

/// One client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// The mandatory first message on a connection: names the abstract
    /// domain the client will decode states under, and (protocol ≥ 4)
    /// optionally presents an auth token.
    Hello {
        /// The client's [`dai_persist::PersistDomain::domain_tag`].
        domain: String,
        /// The auth token, when the server is configured to require one
        /// (compared constant-time server-side; a mismatch or absence
        /// answers [`WireError::Unauthorized`]). Encoded only when
        /// `Some`, so a token-less v4 hello is byte-identical to a v3
        /// hello and decodes on either side; a v3 server receiving a
        /// token rejects the trailing bytes in protocol.
        auth: Option<String>,
    },
    /// Open a session by parsing `source` server-side.
    Open {
        /// Session name.
        name: String,
        /// Program source text.
        source: String,
    },
    /// Close a session.
    Close {
        /// Target session.
        session: u64,
    },
    /// Demand the state at one location.
    Query {
        /// Target session.
        session: u64,
        /// Function name.
        func: String,
        /// Program location.
        loc: Loc,
    },
    /// Demand a batch of locations against one function — lands in the
    /// engine's coalescing path as **one** batch.
    QueryBatch {
        /// Target session.
        session: u64,
        /// Function name.
        func: String,
        /// Program locations.
        locs: Vec<Loc>,
    },
    /// Demand a whole `(function, location)` sweep — lands in
    /// `Engine::submit_query_sweep`, one coalesced batch per contiguous
    /// function run, so the wire preserves the in-process lock/cone
    /// profile.
    Sweep {
        /// Target session.
        session: u64,
        /// Sweep targets (sort for one batch per function).
        targets: Vec<(String, Loc)>,
    },
    /// Apply a program edit (fences later-submitted queries engine-side).
    Edit {
        /// Target session.
        session: u64,
        /// The edit.
        edit: ProgramEdit,
    },
    /// Export the session's deterministic DOT snapshot.
    Snapshot {
        /// Target session.
        session: u64,
    },
    /// Persist a session to a path on the serving host.
    Save {
        /// Target session.
        session: u64,
        /// Destination path (server filesystem).
        path: String,
    },
    /// Restore a snapshot file (server filesystem) into a fresh session.
    Load {
        /// Source path (server filesystem).
        path: String,
    },
    /// Read engine-wide statistics.
    Stats,
    /// Release a session from this connection's ownership so it survives
    /// the connection: the explicit handoff. Without it, sessions a
    /// connection opened or loaded are closed when the connection ends.
    Handoff {
        /// The session to release.
        session: u64,
    },
    /// Control the server's trace recorder: flip the runtime switch or
    /// drain the recorded spans/events. Every op is answered with
    /// [`WireResponse::Trace`] (an empty dump for enable/disable).
    Trace {
        /// What to do.
        op: TraceOp,
    },
    /// Read the server's metrics registry as Prometheus text (the
    /// engine's live stats are published into gauges first).
    Metrics,
    /// Serve a `(function, location)` sweep with cost attribution and
    /// return the capture ([`WireResponse::Explain`]): per-cell outcomes
    /// and wall times, the demanded cone's work/span parallelism, lock
    /// wait vs. held time. The answers themselves are not returned —
    /// use [`WireRequest::Sweep`] to keep them.
    Explain {
        /// Target session.
        session: u64,
        /// Sweep targets (sort for one batch per function).
        targets: Vec<(String, Loc)>,
    },
    /// Pull journal frames for replication: every frame with sequence
    /// number strictly greater than `after`, at most `max` of them,
    /// verbatim as they sit on the leader's disk. Answered with
    /// [`WireResponse::Stream`]; a server with no journal attached
    /// answers [`WireError::Rejected`] (kind `no-journal`). Protocol ≥ 4
    /// (a v3 decoder rejects the tag).
    Subscribe {
        /// Return only frames with `seq > after` (0 pulls from genesis).
        after: u64,
        /// Batch bound: at most this many frames per response.
        max: u32,
    },
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// The hello was accepted; the connection is established.
    HelloOk {
        /// The server's domain tag (equal to the client's, by check).
        domain: String,
        /// The server's protocol version.
        protocol: u16,
    },
    /// A session was opened.
    Opened {
        /// The new session's id.
        session: u64,
    },
    /// A close completed.
    Closed {
        /// `false` when the id was unknown.
        existed: bool,
    },
    /// A single query's answer.
    State(WireState),
    /// A batch or sweep's answers, one per member in request order; each
    /// member succeeds or fails individually.
    States(Vec<Result<WireState, WireError>>),
    /// An edit was applied.
    Edited(EditOutcome),
    /// A snapshot export.
    Snapshot(SessionSnapshot),
    /// A save completed.
    Saved(PersistOutcome),
    /// A load completed.
    Loaded {
        /// The restored session's id.
        session: u64,
        /// What was restored and dropped.
        outcome: PersistOutcome,
    },
    /// Engine statistics (the full [`EngineStats`], batch and persist
    /// counters included).
    Stats(EngineStats),
    /// A handoff completed.
    Released {
        /// `true` when this connection owned the session (it no longer
        /// does); `false` when it was already engine-owned.
        owned: bool,
    },
    /// The request failed.
    Error(WireError),
    /// A trace op completed; [`WireRequest::Trace`] with
    /// [`TraceOp::Dump`] carries the drained records, enable/disable an
    /// empty dump.
    Trace(TraceDump),
    /// The metrics exposition.
    Metrics {
        /// Prometheus text exposition.
        text: String,
    },
    /// An explain capture (already domain-erased — cell names and the
    /// domain tag are strings, so it travels whole).
    Explain(ExplainReport),
    /// A replication batch: `count` journal frames, byte-for-byte as the
    /// leader's journal holds them (the disk format *is* the wire
    /// format). `head_seq` is the leader's journal head at answer time,
    /// so a follower computes its lag as `head_seq - applied_seq`;
    /// `last_seq` is the last frame in this batch (0 when empty).
    Stream {
        /// The leader's journal head sequence number.
        head_seq: u64,
        /// Sequence number of the final frame in `frames` (0 if none).
        last_seq: u64,
        /// Number of frames in `frames`.
        count: u32,
        /// The frames, concatenated verbatim.
        frames: Vec<u8>,
    },
}

/// A structured wire failure. Every variant has a stable [`code`]
/// (see `crates/rpc/README.md` for the full table).
///
/// [`code`]: WireError::code
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer's bytes violated the protocol: damaged frame (checksum
    /// mismatch), oversized declared length, undecodable or trailing
    /// payload bytes, or a first message that was not a hello.
    Protocol(String),
    /// The frame's protocol version is not the one this peer speaks.
    UnsupportedVersion {
        /// The version received.
        got: u16,
        /// The version spoken here.
        want: u16,
    },
    /// The hello named a different domain than the server analyzes.
    DomainMismatch {
        /// The client's domain tag.
        client: String,
        /// The server's domain tag.
        server: String,
    },
    /// Unknown session id.
    NoSuchSession(u64),
    /// Unknown function within the session.
    NoSuchFunction(String),
    /// The request was structurally valid but rejected (failed edit,
    /// unparseable source, session not saveable, …).
    Rejected {
        /// A sub-code naming the rejection kind ("cfg", "parse",
        /// "not-replayable", "daig").
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// A persistence failure (save/load I/O or snapshot codec).
    Persist(String),
    /// The serving engine dropped the request (worker failure).
    Disconnected,
    /// The hello's auth token was missing or wrong (the server is
    /// configured to require one). Protocol ≥ 4; downgraded to
    /// [`WireError::Rejected`] (kind `unauthorized`) for v3 clients.
    Unauthorized,
    /// The connection's write queue hit its hard bound — the peer reads
    /// too slowly for the responses it keeps requesting. The response
    /// this error replaces is dropped; the request id still gets an
    /// answer. Protocol ≥ 4; downgraded to [`WireError::Rejected`]
    /// (kind `overload`) for v3 clients.
    Overloaded,
}

impl WireError {
    /// The stable, machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Protocol(_) => "protocol",
            WireError::UnsupportedVersion { .. } => "version",
            WireError::DomainMismatch { .. } => "domain",
            WireError::NoSuchSession(_) => "no-session",
            WireError::NoSuchFunction(_) => "no-function",
            WireError::Rejected { .. } => "rejected",
            WireError::Persist(_) => "persist",
            WireError::Disconnected => "disconnected",
            WireError::Unauthorized => "unauthorized",
            WireError::Overloaded => "overload",
        }
    }

    /// Rewrites the v4-only variants into forms a `version`-speaking
    /// peer can decode: v3 predates `Unauthorized`/`Overloaded` (its
    /// decoder rejects their tags), so they travel as
    /// [`WireError::Rejected`] with the v4 code as the rejection kind.
    /// At v4+ (and for every other variant) this is the identity.
    pub fn downgrade_for(self, version: u16) -> WireError {
        if version >= 4 {
            return self;
        }
        match self {
            WireError::Unauthorized => WireError::Rejected {
                kind: "unauthorized".to_string(),
                message: "hello auth token missing or wrong".to_string(),
            },
            WireError::Overloaded => WireError::Rejected {
                kind: "overload".to_string(),
                message: "connection write queue full (slow reader)".to_string(),
            },
            other => other,
        }
    }

    /// Maps an engine failure into its wire form.
    pub fn from_engine(e: &EngineError) -> WireError {
        match e {
            EngineError::NoSuchSession(id) => WireError::NoSuchSession(id.0),
            EngineError::NoSuchFunction(f) => WireError::NoSuchFunction(f.clone()),
            EngineError::Daig(d) => WireError::Rejected {
                kind: "daig".to_string(),
                message: d.to_string(),
            },
            EngineError::Cfg(c) => WireError::Rejected {
                kind: "cfg".to_string(),
                message: c.to_string(),
            },
            EngineError::Parse(m) => WireError::Rejected {
                kind: "parse".to_string(),
                message: m.clone(),
            },
            EngineError::NotReplayable(name) => WireError::Rejected {
                kind: "not-replayable".to_string(),
                message: name.clone(),
            },
            EngineError::ReadOnly(id) => WireError::Rejected {
                kind: "read-only".to_string(),
                message: format!("session s{} is a replica (read-only)", id.0),
            },
            EngineError::Persist(p) => WireError::Persist(p.to_string()),
            EngineError::Disconnected => WireError::Disconnected,
            // A server is never itself a remote client, but the mapping
            // must be total: pass the code through as a protocol error.
            EngineError::Remote { code, message } => {
                WireError::Protocol(format!("relayed remote failure [{code}]: {message}"))
            }
        }
    }

    /// Maps a wire failure back onto the engine error a local caller
    /// would have seen: variants with in-process counterparts map
    /// exactly; the transport-only ones become
    /// [`EngineError::Remote`] with this error's [`WireError::code`].
    pub fn into_engine(self) -> EngineError {
        match self {
            WireError::NoSuchSession(id) => EngineError::NoSuchSession(dai_engine::SessionId(id)),
            WireError::NoSuchFunction(f) => EngineError::NoSuchFunction(f),
            WireError::Disconnected => EngineError::Disconnected,
            other => EngineError::Remote {
                code: other.code(),
                message: other.to_string(),
            },
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WireError::UnsupportedVersion { got, want } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this side speaks {want})"
                )
            }
            WireError::DomainMismatch { client, server } => write!(
                f,
                "domain mismatch: client decodes `{client}`, server analyzes `{server}`"
            ),
            WireError::NoSuchSession(id) => write!(f, "no such session s{id}"),
            WireError::NoSuchFunction(name) => write!(f, "no such function `{name}`"),
            WireError::Rejected { kind, message } => write!(f, "rejected ({kind}): {message}"),
            WireError::Persist(m) => write!(f, "persistence failure: {m}"),
            WireError::Disconnected => write!(f, "engine dropped the request (worker failure)"),
            WireError::Unauthorized => write!(f, "hello auth token missing or wrong"),
            WireError::Overloaded => {
                write!(
                    f,
                    "connection write queue full (slow reader); response dropped"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl Persist for WireError {
    fn put(&self, w: &mut Writer) {
        match self {
            WireError::Protocol(m) => {
                w.u8(0);
                m.put(w);
            }
            WireError::UnsupportedVersion { got, want } => {
                w.u8(1);
                w.u16(*got);
                w.u16(*want);
            }
            WireError::DomainMismatch { client, server } => {
                w.u8(2);
                client.put(w);
                server.put(w);
            }
            WireError::NoSuchSession(id) => {
                w.u8(3);
                w.u64(*id);
            }
            WireError::NoSuchFunction(f) => {
                w.u8(4);
                f.put(w);
            }
            WireError::Rejected { kind, message } => {
                w.u8(5);
                kind.put(w);
                message.put(w);
            }
            WireError::Persist(m) => {
                w.u8(6);
                m.put(w);
            }
            WireError::Disconnected => w.u8(7),
            WireError::Unauthorized => w.u8(8),
            WireError::Overloaded => w.u8(9),
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => WireError::Protocol(String::get(r)?),
            1 => WireError::UnsupportedVersion {
                got: r.u16()?,
                want: r.u16()?,
            },
            2 => WireError::DomainMismatch {
                client: String::get(r)?,
                server: String::get(r)?,
            },
            3 => WireError::NoSuchSession(r.u64()?),
            4 => WireError::NoSuchFunction(String::get(r)?),
            5 => WireError::Rejected {
                kind: String::get(r)?,
                message: String::get(r)?,
            },
            6 => WireError::Persist(String::get(r)?),
            7 => WireError::Disconnected,
            8 => WireError::Unauthorized,
            9 => WireError::Overloaded,
            t => return Err(PersistError::Corrupt(format!("unknown wire-error tag {t}"))),
        })
    }
}

impl Persist for WireRequest {
    fn put(&self, w: &mut Writer) {
        match self {
            WireRequest::Hello { domain, auth } => {
                w.u8(0);
                domain.put(w);
                // The auth field is encoded only when present: a
                // token-less hello keeps the exact v3 byte layout, so it
                // decodes under either protocol version.
                if let Some(token) = auth {
                    w.u8(1);
                    token.put(w);
                }
            }
            WireRequest::Open { name, source } => {
                w.u8(1);
                name.put(w);
                source.put(w);
            }
            WireRequest::Close { session } => {
                w.u8(2);
                w.u64(*session);
            }
            WireRequest::Query { session, func, loc } => {
                w.u8(3);
                w.u64(*session);
                func.put(w);
                loc.put(w);
            }
            WireRequest::QueryBatch {
                session,
                func,
                locs,
            } => {
                w.u8(4);
                w.u64(*session);
                func.put(w);
                locs.put(w);
            }
            WireRequest::Sweep { session, targets } => {
                w.u8(5);
                w.u64(*session);
                targets.put(w);
            }
            WireRequest::Edit { session, edit } => {
                w.u8(6);
                w.u64(*session);
                edit.put(w);
            }
            WireRequest::Snapshot { session } => {
                w.u8(7);
                w.u64(*session);
            }
            WireRequest::Save { session, path } => {
                w.u8(8);
                w.u64(*session);
                path.put(w);
            }
            WireRequest::Load { path } => {
                w.u8(9);
                path.put(w);
            }
            WireRequest::Stats => w.u8(10),
            WireRequest::Handoff { session } => {
                w.u8(11);
                w.u64(*session);
            }
            WireRequest::Trace { op } => {
                w.u8(12);
                op.put(w);
            }
            WireRequest::Metrics => w.u8(13),
            WireRequest::Explain { session, targets } => {
                w.u8(14);
                w.u64(*session);
                targets.put(w);
            }
            WireRequest::Subscribe { after, max } => {
                w.u8(15);
                w.u64(*after);
                w.u32(*max);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => {
                let domain = String::get(r)?;
                // Tolerant decode: a legacy (v3) hello ends after the
                // domain; a v4 hello may carry a tagged auth token.
                let auth = if r.is_exhausted() {
                    None
                } else {
                    match r.u8()? {
                        0 => None,
                        1 => Some(String::get(r)?),
                        t => {
                            return Err(PersistError::Corrupt(format!(
                                "unknown hello auth tag {t}"
                            )))
                        }
                    }
                };
                WireRequest::Hello { domain, auth }
            }
            1 => WireRequest::Open {
                name: String::get(r)?,
                source: String::get(r)?,
            },
            2 => WireRequest::Close { session: r.u64()? },
            3 => WireRequest::Query {
                session: r.u64()?,
                func: String::get(r)?,
                loc: Loc::get(r)?,
            },
            4 => WireRequest::QueryBatch {
                session: r.u64()?,
                func: String::get(r)?,
                locs: Vec::<Loc>::get(r)?,
            },
            5 => WireRequest::Sweep {
                session: r.u64()?,
                targets: Vec::<(String, Loc)>::get(r)?,
            },
            6 => WireRequest::Edit {
                session: r.u64()?,
                edit: ProgramEdit::get(r)?,
            },
            7 => WireRequest::Snapshot { session: r.u64()? },
            8 => WireRequest::Save {
                session: r.u64()?,
                path: String::get(r)?,
            },
            9 => WireRequest::Load {
                path: String::get(r)?,
            },
            10 => WireRequest::Stats,
            11 => WireRequest::Handoff { session: r.u64()? },
            12 => WireRequest::Trace {
                op: TraceOp::get(r)?,
            },
            13 => WireRequest::Metrics,
            14 => WireRequest::Explain {
                session: r.u64()?,
                targets: Vec::<(String, Loc)>::get(r)?,
            },
            15 => WireRequest::Subscribe {
                after: r.u64()?,
                max: r.u32()?,
            },
            t => {
                return Err(PersistError::Corrupt(format!(
                    "unknown wire-request tag {t}"
                )))
            }
        })
    }
}

impl Persist for WireResponse {
    fn put(&self, w: &mut Writer) {
        match self {
            WireResponse::HelloOk { domain, protocol } => {
                w.u8(0);
                domain.put(w);
                w.u16(*protocol);
            }
            WireResponse::Opened { session } => {
                w.u8(1);
                w.u64(*session);
            }
            WireResponse::Closed { existed } => {
                w.u8(2);
                existed.put(w);
            }
            WireResponse::State(s) => {
                w.u8(3);
                s.put(w);
            }
            WireResponse::States(members) => {
                w.u8(4);
                w.u64(members.len() as u64);
                for m in members {
                    match m {
                        Ok(s) => {
                            w.u8(1);
                            s.put(w);
                        }
                        Err(e) => {
                            w.u8(0);
                            e.put(w);
                        }
                    }
                }
            }
            WireResponse::Edited(o) => {
                w.u8(5);
                o.put(w);
            }
            WireResponse::Snapshot(s) => {
                w.u8(6);
                s.put(w);
            }
            WireResponse::Saved(o) => {
                w.u8(7);
                o.put(w);
            }
            WireResponse::Loaded { session, outcome } => {
                w.u8(8);
                w.u64(*session);
                outcome.put(w);
            }
            WireResponse::Stats(s) => {
                w.u8(9);
                s.put(w);
            }
            WireResponse::Released { owned } => {
                w.u8(10);
                owned.put(w);
            }
            WireResponse::Error(e) => {
                w.u8(11);
                e.put(w);
            }
            WireResponse::Trace(dump) => {
                w.u8(12);
                dump.put(w);
            }
            WireResponse::Metrics { text } => {
                w.u8(13);
                text.put(w);
            }
            WireResponse::Explain(report) => {
                w.u8(14);
                report.put(w);
            }
            WireResponse::Stream {
                head_seq,
                last_seq,
                count,
                frames,
            } => {
                w.u8(15);
                w.u64(*head_seq);
                w.u64(*last_seq);
                w.u32(*count);
                w.u64(frames.len() as u64);
                w.bytes(frames);
            }
        }
    }

    fn get(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => WireResponse::HelloOk {
                domain: String::get(r)?,
                protocol: r.u16()?,
            },
            1 => WireResponse::Opened { session: r.u64()? },
            2 => WireResponse::Closed {
                existed: bool::get(r)?,
            },
            3 => WireResponse::State(WireState::get(r)?),
            4 => {
                let n = r.u64()?;
                if n > r.remaining() as u64 {
                    return Err(PersistError::Corrupt(format!(
                        "member count {n} exceeds remaining input"
                    )));
                }
                let mut members = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    members.push(match r.u8()? {
                        0 => Err(WireError::get(r)?),
                        1 => Ok(WireState::get(r)?),
                        t => {
                            return Err(PersistError::Corrupt(format!(
                                "unknown member-result tag {t}"
                            )))
                        }
                    });
                }
                WireResponse::States(members)
            }
            5 => WireResponse::Edited(EditOutcome::get(r)?),
            6 => WireResponse::Snapshot(SessionSnapshot::get(r)?),
            7 => WireResponse::Saved(PersistOutcome::get(r)?),
            8 => WireResponse::Loaded {
                session: r.u64()?,
                outcome: PersistOutcome::get(r)?,
            },
            9 => WireResponse::Stats(EngineStats::get(r)?),
            10 => WireResponse::Released {
                owned: bool::get(r)?,
            },
            11 => WireResponse::Error(WireError::get(r)?),
            12 => WireResponse::Trace(TraceDump::get(r)?),
            13 => WireResponse::Metrics {
                text: String::get(r)?,
            },
            14 => WireResponse::Explain(ExplainReport::get(r)?),
            15 => {
                let head_seq = r.u64()?;
                let last_seq = r.u64()?;
                let count = r.u32()?;
                let n = r.len_prefix()?;
                WireResponse::Stream {
                    head_seq,
                    last_seq,
                    count,
                    frames: r.take(n)?.to_vec(),
                }
            }
            t => {
                return Err(PersistError::Corrupt(format!(
                    "unknown wire-response tag {t}"
                )))
            }
        })
    }
}

/// Encodes a message payload.
pub fn encode_message<M: Persist>(msg: &M) -> Vec<u8> {
    let mut w = Writer::new();
    msg.put(&mut w);
    w.into_bytes()
}

/// Decodes a message payload, requiring the payload to be exactly one
/// message (trailing bytes are a protocol violation, not padding).
///
/// # Errors
///
/// [`PersistError`] on truncated, invalid, or trailing bytes.
pub fn decode_message<M: Persist>(payload: &[u8]) -> Result<M, PersistError> {
    let mut r = Reader::new(payload);
    let msg = M::get(&mut r)?;
    if !r.is_exhausted() {
        return Err(PersistError::Corrupt(format!(
            "message has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_domains::IntervalDomain;
    use dai_lang::Symbol;

    fn roundtrip<M: Persist + PartialEq + std::fmt::Debug>(msg: &M) {
        let bytes = encode_message(msg);
        let back: M = decode_message(&bytes).expect("decodes");
        assert_eq!(&back, msg);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(&WireRequest::Hello {
            domain: "octagon".to_string(),
            auth: None,
        });
        roundtrip(&WireRequest::Hello {
            domain: "octagon".to_string(),
            auth: Some("s3cret".to_string()),
        });
        roundtrip(&WireRequest::Open {
            name: "s".to_string(),
            source: "function main() { return 1; }".to_string(),
        });
        roundtrip(&WireRequest::Query {
            session: 3,
            func: "main".to_string(),
            loc: Loc(7),
        });
        roundtrip(&WireRequest::QueryBatch {
            session: 3,
            func: "main".to_string(),
            locs: vec![Loc(0), Loc(1), Loc(2)],
        });
        roundtrip(&WireRequest::Sweep {
            session: 9,
            targets: vec![
                ("f0".to_string(), Loc(0)),
                ("f0".to_string(), Loc(1)),
                ("main".to_string(), Loc(0)),
            ],
        });
        roundtrip(&WireRequest::Edit {
            session: 1,
            edit: ProgramEdit::Relabel {
                func: Symbol::new("main"),
                edge: dai_lang::EdgeId(2),
                stmt: dai_lang::Stmt::Assign("x".into(), dai_lang::parse_expr("5").unwrap()),
            },
        });
        roundtrip(&WireRequest::Stats);
        roundtrip(&WireRequest::Handoff { session: 4 });
        for op in [TraceOp::Enable, TraceOp::Disable, TraceOp::Dump] {
            roundtrip(&WireRequest::Trace { op });
        }
        roundtrip(&WireRequest::Metrics);
        roundtrip(&WireRequest::Explain {
            session: 9,
            targets: vec![("main".to_string(), Loc(0)), ("main".to_string(), Loc(1))],
        });
        roundtrip(&WireRequest::Subscribe {
            after: 17,
            max: 256,
        });
    }

    #[test]
    fn responses_roundtrip() {
        let state = WireState::encode(&IntervalDomain::top());
        roundtrip(&WireResponse::HelloOk {
            domain: "interval".to_string(),
            protocol: PROTOCOL_VERSION,
        });
        roundtrip(&WireResponse::State(state.clone()));
        roundtrip(&WireResponse::States(vec![
            Ok(state),
            Err(WireError::NoSuchFunction("g".to_string())),
        ]));
        roundtrip(&WireResponse::Error(WireError::UnsupportedVersion {
            got: 9,
            want: PROTOCOL_VERSION,
        }));
        roundtrip(&WireResponse::Released { owned: true });
        roundtrip(&WireResponse::Trace(TraceDump::default()));
        roundtrip(&WireResponse::Trace(TraceDump {
            records: vec![dai_trace::Record {
                label: 0,
                thread: 0,
                kind: dai_trace::RecordKind::Span,
                start_ns: 5,
                end_ns: 25,
                arg: 3,
            }],
            labels: vec!["engine.cone_walk".to_string()],
            threads: vec!["dai-worker-0".to_string()],
            dropped: 2,
            dropped_by_thread: vec![2],
        }));
        roundtrip(&WireResponse::Metrics {
            text: "# TYPE dai_engine_queries gauge\ndai_engine_queries 5\n".to_string(),
        });
        roundtrip(&WireResponse::Stream {
            head_seq: 40,
            last_seq: 38,
            count: 3,
            frames: vec![0xAB; 64],
        });
        roundtrip(&WireResponse::Stream {
            head_seq: 0,
            last_seq: 0,
            count: 0,
            frames: Vec::new(),
        });
        roundtrip(&WireResponse::Explain(ExplainReport::default()));
        roundtrip(&WireResponse::Explain(ExplainReport {
            domain: "interval".to_string(),
            transfer: "compiled".to_string(),
            cells: vec![dai_engine::CellCost {
                cell: "main:l2:sigma".to_string(),
                outcome: dai_engine::CellOutcome::Computed,
                compiled: true,
                wall_ns: 320,
                finish_ns: 320,
            }],
            fixes: vec![dai_engine::FixCost {
                cell: "main:l1.fix:sigma".to_string(),
                iters: 2,
                unrolls: 1,
                wall_ns: 80,
                converged: true,
            }],
            work_ns: 400,
            span_ns: 320,
            lock_wait_ns: 3,
            lock_held_ns: 500,
            eval_ns: 450,
        }));
    }

    #[test]
    fn state_blobs_roundtrip_and_reject_trailing_bytes() {
        use dai_domains::AbstractDomain;
        let d = IntervalDomain::top().transfer(&dai_lang::Stmt::Assign(
            "x".into(),
            dai_lang::parse_expr("5").unwrap(),
        ));
        let blob = WireState::encode(&d);
        assert_eq!(blob.decode::<IntervalDomain>().unwrap(), d);
        let mut padded = blob.0.clone();
        padded.push(0);
        assert!(WireState(padded).decode::<IntervalDomain>().is_err());
    }

    #[test]
    fn error_codes_are_stable_and_distinct() {
        let errs = [
            WireError::Protocol(String::new()),
            WireError::UnsupportedVersion { got: 0, want: 1 },
            WireError::DomainMismatch {
                client: String::new(),
                server: String::new(),
            },
            WireError::NoSuchSession(0),
            WireError::NoSuchFunction(String::new()),
            WireError::Rejected {
                kind: String::new(),
                message: String::new(),
            },
            WireError::Persist(String::new()),
            WireError::Disconnected,
            WireError::Unauthorized,
            WireError::Overloaded,
        ];
        let codes: std::collections::HashSet<_> = errs.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errs.len());
        assert_eq!(WireError::Unauthorized.code(), "unauthorized");
        assert_eq!(WireError::Overloaded.code(), "overload");
    }

    #[test]
    fn tokenless_hello_is_byte_identical_to_legacy_and_tolerantly_decoded() {
        // A v3 client's hello payload is just `tag + domain`; the v4
        // decoder must accept it with `auth: None`, and a v4 token-less
        // hello must produce those exact bytes (so v3 servers accept it).
        let legacy = {
            let mut w = Writer::new();
            w.u8(0);
            "octagon".to_string().put(&mut w);
            w.into_bytes()
        };
        let modern = encode_message(&WireRequest::Hello {
            domain: "octagon".to_string(),
            auth: None,
        });
        assert_eq!(legacy, modern);
        match decode_message::<WireRequest>(&legacy).unwrap() {
            WireRequest::Hello { domain, auth } => {
                assert_eq!(domain, "octagon");
                assert_eq!(auth, None);
            }
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn v4_only_errors_downgrade_for_v3_peers() {
        // v3 decoders reject tags 8/9 outright…
        for e in [WireError::Unauthorized, WireError::Overloaded] {
            let down = e.clone().downgrade_for(3);
            match &down {
                WireError::Rejected { kind, .. } => assert_eq!(*kind, e.code()),
                other => panic!("expected rejected, got {other:?}"),
            }
            // …and the downgrade is the identity at v4.
            assert_eq!(e.clone().downgrade_for(PROTOCOL_VERSION), e);
        }
        // Pre-existing variants pass through untouched at any version.
        let e = WireError::NoSuchSession(7);
        assert_eq!(e.clone().downgrade_for(3), e);
    }

    #[test]
    fn engine_error_mapping_preserves_session_and_function() {
        use dai_engine::SessionId;
        let e = WireError::from_engine(&EngineError::NoSuchSession(SessionId(9)));
        assert_eq!(e, WireError::NoSuchSession(9));
        assert!(matches!(
            e.into_engine(),
            EngineError::NoSuchSession(SessionId(9))
        ));
        let e = WireError::from_engine(&EngineError::NoSuchFunction("g".to_string()));
        assert!(matches!(e.into_engine(), EngineError::NoSuchFunction(f) if f == "g"));
        // Transport-only errors surface as Remote with their code.
        let remote = WireError::DomainMismatch {
            client: "interval".to_string(),
            server: "octagon".to_string(),
        }
        .into_engine();
        assert!(matches!(remote, EngineError::Remote { code: "domain", .. }));
    }

    #[test]
    fn corrupt_messages_error_not_panic() {
        for bytes in [&[250u8][..], &[], &[4, 1]] {
            assert!(decode_message::<WireRequest>(bytes).is_err());
            assert!(decode_message::<WireResponse>(bytes).is_err());
        }
        // Trailing bytes are rejected.
        let mut bytes = encode_message(&WireRequest::Stats);
        bytes.push(0);
        assert!(decode_message::<WireRequest>(&bytes).is_err());
    }
}
