//! Session-sharding: one [`Service`] front end consistent-hashing
//! sessions across several backends.
//!
//! A [`Router`] owns N backends — in-process [`Engine`]s, remote
//! [`Client`]s, or anything else implementing [`ShardBackend`] — and is
//! itself a [`Service`], so code written against the trait (the REPL,
//! the benches, the equality tests) scales across shards without
//! changing a line. Session *names* are consistent-hashed onto a ring
//! of virtual nodes, so adding a backend remaps only ~1/N of fresh
//! sessions; established sessions stay pinned to the shard that opened
//! them through a binding table that also translates the router's
//! session ids (stable, process-local) to each shard's own ids.
//!
//! Writes (edits, saves) forward to the owning shard; sweeps and
//! queries do too — a session's demanded state lives on exactly one
//! shard, which is the point: no cross-shard coherence is needed, and
//! `routed == sum(served)` is checkable per shard
//! ([`Router::routed_queries`] against each backend's
//! `stats().queries`).
//!
//! ## Live migration
//!
//! [`Router::migrate`] moves a session between shards mid-workload:
//! under the binding table's **write** lock (so every concurrent call
//! on the session blocks rather than misroutes), it saves the session
//! on the owner, releases connection ownership ([`ShardBackend::release`]
//! — a [`Client::handoff`] for remote shards, a no-op in-process),
//! closes it there, loads the snapshot on the destination, and rebinds.
//! Queries issued before the migration see the old shard; queries
//! issued after see the new one; none are lost.

use dai_core::driver::ProgramEdit;
use dai_engine::{
    EditOutcome, Engine, EngineError, EngineStats, ExplainReport, PersistOutcome, Service,
    SessionId, SessionSnapshot,
};
use dai_lang::Loc;
use dai_persist::PersistDomain;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::client::Client;

/// Virtual nodes per backend on the hash ring: enough that shard loads
/// even out, few enough that building the ring is trivial.
const VNODES: usize = 64;

/// A backend a [`Router`] can shard over: the full [`Service`] verb set
/// plus [`release`](ShardBackend::release), the hook migration uses to
/// detach a session from per-connection ownership before closing it on
/// the source shard.
pub trait ShardBackend<D>: Service<D> {
    /// Releases transport-level ownership of `session` so a following
    /// `close`/`load` pair can move it. In-process engines have no
    /// connection ownership — the default no-op is correct.
    ///
    /// # Errors
    ///
    /// Transport failures for remote implementations.
    fn release(&self, _session: SessionId) -> Result<(), EngineError> {
        Ok(())
    }
}

impl<D: PersistDomain> ShardBackend<D> for Engine<D> {}

impl<D: PersistDomain> ShardBackend<D> for Client<D> {
    fn release(&self, session: SessionId) -> Result<(), EngineError> {
        self.handoff(session).map(|_| ())
    }
}

/// Where a routed session lives.
#[derive(Debug, Clone)]
struct Binding {
    shard: usize,
    remote: SessionId,
}

/// A session-sharding [`Service`] front end over N backends.
pub struct Router<D, B: ShardBackend<D>> {
    backends: Vec<Arc<B>>,
    /// `(point, backend)` pairs sorted by point: the consistent-hash
    /// ring. Lookup is the first point at or clockwise of the key.
    ring: Vec<(u64, usize)>,
    /// Router session id → owning shard and its local id. The write
    /// lock serializes migration against every forwarded call.
    bindings: RwLock<HashMap<u64, Binding>>,
    next_id: AtomicU64,
    /// Per-shard count of query *members* routed (single queries, batch
    /// members, sweep members), matching the engine-side `queries`
    /// counter so `routed == sum(served)` is assertable.
    routed: Vec<AtomicU64>,
    _domain: std::marker::PhantomData<fn() -> D>,
}

fn ring_hash(key: &str) -> u64 {
    let mut h = dai_memo::FxBuild::default().build_hasher();
    h.write(key.as_bytes());
    h.finish()
}

impl<D: PersistDomain, B: ShardBackend<D>> Router<D, B> {
    /// Builds a router over `backends` (at least one).
    ///
    /// # Panics
    ///
    /// When `backends` is empty.
    pub fn new(backends: Vec<Arc<B>>) -> Router<D, B> {
        assert!(!backends.is_empty(), "a router needs at least one backend");
        let mut ring = Vec::with_capacity(backends.len() * VNODES);
        for (i, _) in backends.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((ring_hash(&format!("shard-{i}/vnode-{v}")), i));
            }
        }
        ring.sort_unstable();
        let routed = backends.iter().map(|_| AtomicU64::new(0)).collect();
        Router {
            backends,
            ring,
            bindings: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            routed,
            _domain: std::marker::PhantomData,
        }
    }

    /// Number of backends.
    pub fn shards(&self) -> usize {
        self.backends.len()
    }

    /// The backend at `shard`.
    pub fn backend(&self, shard: usize) -> &Arc<B> {
        &self.backends[shard]
    }

    /// The shard a fresh session named `name` would land on.
    pub fn shard_for(&self, name: &str) -> usize {
        let key = ring_hash(name);
        let at = self.ring.partition_point(|&(point, _)| point < key);
        // Wrap: past the last point, the ring starts over.
        self.ring[if at == self.ring.len() { 0 } else { at }].1
    }

    /// The shard currently owning routed session `session`, if bound.
    pub fn shard_of(&self, session: SessionId) -> Option<usize> {
        self.bindings
            .read()
            .expect("binding table poisoned")
            .get(&session.0)
            .map(|b| b.shard)
    }

    /// Query members routed to each shard, in shard order. Compare
    /// against each backend's `stats().queries` for the fan-out
    /// accounting check (`routed == sum(served)`).
    pub fn routed_queries(&self) -> Vec<u64> {
        self.routed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Runs `f` against a routed session's shard and shard-local id
    /// **while holding the binding table's read lock**, so a concurrent
    /// [`Router::migrate`] (which takes the write lock) serializes with
    /// every in-flight forward instead of closing the session out from
    /// under one — that, not the lookup, is what makes migration lose
    /// no queries.
    fn with_binding<R>(
        &self,
        session: SessionId,
        f: impl FnOnce(usize, SessionId) -> R,
    ) -> Result<R, EngineError> {
        let bindings = self.bindings.read().expect("binding table poisoned");
        let binding = bindings
            .get(&session.0)
            .ok_or(EngineError::NoSuchSession(session))?;
        Ok(f(binding.shard, binding.remote))
    }

    fn bind(&self, shard: usize, remote: SessionId) -> SessionId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.bindings
            .write()
            .expect("binding table poisoned")
            .insert(id, Binding { shard, remote });
        SessionId(id)
    }

    /// Moves `session` to shard `to` through `path` (a snapshot file
    /// both shards can reach), live: save on the owner, release, close,
    /// load on the destination, rebind — all under the binding table's
    /// write lock, so concurrent calls on the session block rather than
    /// misroute, and no query is lost.
    ///
    /// # Errors
    ///
    /// An unknown session, an out-of-range `to`, or any step's failure
    /// (on failure the binding is left pointing at whichever shard
    /// still holds the session).
    pub fn migrate(&self, session: SessionId, to: usize, path: &str) -> Result<(), EngineError> {
        if to >= self.backends.len() {
            return Err(EngineError::Remote {
                code: "rejected",
                message: format!("no shard {to} (router has {})", self.backends.len()),
            });
        }
        let mut bindings = self.bindings.write().expect("binding table poisoned");
        let binding = bindings
            .get(&session.0)
            .cloned()
            .ok_or(EngineError::NoSuchSession(session))?;
        if binding.shard == to {
            return Ok(());
        }
        let from = &self.backends[binding.shard];
        from.save(binding.remote, path)?;
        from.release(binding.remote)?;
        from.close(binding.remote)?;
        // The source copy is gone; from here on a failure must not
        // leave the binding pointing at it.
        match self.backends[to].load(path) {
            Ok((remote, _outcome)) => {
                bindings.insert(session.0, Binding { shard: to, remote });
                Ok(())
            }
            Err(e) => {
                bindings.remove(&session.0);
                Err(e)
            }
        }
    }
}

impl<D: PersistDomain, B: ShardBackend<D>> Service<D> for Router<D, B> {
    fn open(&self, name: &str, source: &str) -> Result<SessionId, EngineError> {
        let shard = self.shard_for(name);
        let remote = self.backends[shard].open(name, source)?;
        Ok(self.bind(shard, remote))
    }

    fn close(&self, session: SessionId) -> Result<bool, EngineError> {
        let Some(binding) = self
            .bindings
            .write()
            .expect("binding table poisoned")
            .remove(&session.0)
        else {
            return Ok(false);
        };
        self.backends[binding.shard].close(binding.remote)
    }

    fn query(&self, session: SessionId, func: &str, loc: Loc) -> Result<D, EngineError> {
        self.with_binding(session, |shard, remote| {
            self.routed[shard].fetch_add(1, Ordering::Relaxed);
            self.backends[shard].query(remote, func, loc)
        })?
    }

    fn query_batch(
        &self,
        session: SessionId,
        func: &str,
        locs: &[Loc],
    ) -> Vec<Result<D, EngineError>> {
        self.with_binding(session, |shard, remote| {
            self.routed[shard].fetch_add(locs.len() as u64, Ordering::Relaxed);
            self.backends[shard].query_batch(remote, func, locs)
        })
        .unwrap_or_else(|_| {
            locs.iter()
                .map(|_| Err(EngineError::NoSuchSession(session)))
                .collect()
        })
    }

    fn query_sweep(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Vec<Result<D, EngineError>> {
        self.with_binding(session, |shard, remote| {
            self.routed[shard].fetch_add(targets.len() as u64, Ordering::Relaxed);
            self.backends[shard].query_sweep(remote, targets)
        })
        .unwrap_or_else(|_| {
            targets
                .iter()
                .map(|_| Err(EngineError::NoSuchSession(session)))
                .collect()
        })
    }

    fn edit(&self, session: SessionId, edit: &ProgramEdit) -> Result<EditOutcome, EngineError> {
        self.with_binding(session, |shard, remote| {
            self.backends[shard].edit(remote, edit)
        })?
    }

    fn snapshot(&self, session: SessionId) -> Result<SessionSnapshot, EngineError> {
        self.with_binding(session, |shard, remote| {
            self.backends[shard].snapshot(remote)
        })?
    }

    fn save(&self, session: SessionId, path: &str) -> Result<PersistOutcome, EngineError> {
        self.with_binding(session, |shard, remote| {
            self.backends[shard].save(remote, path)
        })?
    }

    fn load(&self, path: &str) -> Result<(SessionId, PersistOutcome), EngineError> {
        let shard = self.shard_for(path);
        let (remote, outcome) = self.backends[shard].load(path)?;
        Ok((self.bind(shard, remote), outcome))
    }

    fn stats(&self) -> Result<EngineStats, EngineError> {
        let mut merged = EngineStats::default();
        for backend in &self.backends {
            merge_stats(&mut merged, &backend.stats()?);
        }
        Ok(merged)
    }

    fn explain(
        &self,
        session: SessionId,
        targets: &[(String, Loc)],
    ) -> Result<ExplainReport, EngineError> {
        self.with_binding(session, |shard, remote| {
            self.backends[shard].explain(remote, targets)
        })?
    }
}

/// Adds one shard's stats into an aggregate: scalar counters sum,
/// per-domain explain totals merge by name, and the replication block
/// keeps the furthest-along journal (the counters are per-engine, so a
/// cross-shard sum would be meaningless there).
fn merge_stats(into: &mut EngineStats, s: &EngineStats) {
    into.workers += s.workers;
    into.sessions += s.sessions;
    into.queries += s.queries;
    into.edits += s.edits;
    into.snapshots += s.snapshots;
    into.saves += s.saves;
    into.loads += s.loads;
    into.session_locks += s.session_locks;
    into.batch.batches += s.batch.batches;
    into.batch.coalesced_queries += s.batch.coalesced_queries;
    into.batch.singleton_queries += s.batch.singleton_queries;
    into.batch.union_cone_cells += s.batch.union_cone_cells;
    into.batch.union_cone_walks += s.batch.union_cone_walks;
    into.query_stats.computed += s.query_stats.computed;
    into.query_stats.memo_matched += s.query_stats.memo_matched;
    into.query_stats.reused += s.query_stats.reused;
    into.query_stats.unrolls += s.query_stats.unrolls;
    into.query_stats.fix_converged += s.query_stats.fix_converged;
    into.query_stats.cone_walks += s.query_stats.cone_walks;
    into.query_stats.cone_cells += s.query_stats.cone_cells;
    into.query_stats.transfers_compiled += s.query_stats.transfers_compiled;
    into.query_stats.transfers_interp += s.query_stats.transfers_interp;
    into.explain.reports += s.explain.reports;
    into.explain.cells += s.explain.cells;
    into.explain.fixes += s.explain.fixes;
    into.explain.work_ns += s.explain.work_ns;
    into.explain.span_ns += s.explain.span_ns;
    into.explain.computed_ns += s.explain.computed_ns;
    into.explain.memo_matched_ns += s.explain.memo_matched_ns;
    into.explain.fix_ns += s.explain.fix_ns;
    for (domain, n) in &s.explain.domains {
        match into.explain.domains.iter_mut().find(|(d, _)| d == domain) {
            Some((_, total)) => *total += *n,
            None => into.explain.domains.push((domain.clone(), *n)),
        }
    }
    into.memo.hits += s.memo.hits;
    into.memo.misses += s.memo.misses;
    into.memo.insertions += s.memo.insertions;
    into.memo.evictions += s.memo.evictions;
    if s.replication.journal_last_seq > into.replication.journal_last_seq
        || (s.replication.journal_attached && !into.replication.journal_attached)
    {
        into.replication = s.replication;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ring_spreads_names_and_lookups_are_stable() {
        let backends: Vec<Arc<Engine<dai_domains::IntervalDomain>>> =
            (0..3).map(|_| Arc::new(Engine::new(1))).collect();
        let router = Router::new(backends);
        let mut hit = [0usize; 3];
        for i in 0..300 {
            let name = format!("session-{i}");
            let shard = router.shard_for(&name);
            assert_eq!(shard, router.shard_for(&name), "lookup must be stable");
            hit[shard] += 1;
        }
        assert!(
            hit.iter().all(|&n| n > 0),
            "every shard should receive some sessions: {hit:?}"
        );
    }
}
