//! The socket front end: one [`dai_engine::Engine`], many connections.
//!
//! A [`Server`] binds a TCP or Unix socket and routes decoded
//! [`WireRequest`] frames into the engine it wraps. Concurrency is
//! inherited wholesale from the engine: each connection is served by its
//! own thread, but every query lands in the engine's coalescing queue —
//! a [`WireRequest::Sweep`] frame goes through
//! [`dai_engine::Engine::submit_query_sweep`], so one wire frame buys the
//! same one-lock-per-function, one-union-cone profile as the in-process
//! batched path, and concurrent frames from *different* connections
//! against the same `(session, function)` coalesce with each other
//! exactly like concurrent in-process submitters.
//!
//! ## Session ownership
//!
//! Sessions a connection opens ([`WireRequest::Open`]) or restores
//! ([`WireRequest::Load`]) are **owned by that connection**: when it
//! disconnects, they are closed — a crashed IDE does not leak sessions
//! into a long-lived server. [`WireRequest::Handoff`] releases a session
//! to the engine (the explicit handoff), after which it survives the
//! connection and any other connection may address — or adopt nothing;
//! ownership is only about cleanup, addressing is engine-wide by id.
//!
//! ## Hostile bytes
//!
//! Malformed traffic is answered in protocol, not with a dropped
//! connection: a damaged frame (checksum mismatch), an oversized declared
//! length (rejected before any allocation), an undecodable payload, or a
//! frame with the wrong protocol version each produce one structured
//! [`WireError`] response, and the read loop continues. Only transport
//! EOF/errors (the peer actually went away, or cut a frame off
//! mid-stream, after which no sync point exists) end the connection —
//! and ending a connection never takes the server down.

use dai_engine::{Engine, Response, Service, SessionId, Ticket};
use dai_persist::frame::{read_frame, write_frame, FrameReadError};
use dai_persist::PersistDomain;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::proto::{
    decode_message, encode_message, WireError, WireRequest, WireResponse, WireState, MAX_FRAME_LEN,
    PROTOCOL_VERSION, TAG_REQUEST, TAG_RESPONSE,
};

/// A parsed bind/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A TCP socket address (host:port).
    Tcp(String),
    /// A Unix domain socket path.
    Unix(String),
}

impl Addr {
    /// Parses `"tcp:HOST:PORT"`, `"unix:PATH"`, a bare `/path` (unix), or
    /// a bare `HOST:PORT` (tcp).
    ///
    /// # Errors
    ///
    /// A human-readable description of an unrecognizable address.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            return Ok(Addr::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("unix:") {
            return Ok(Addr::Unix(rest.to_string()));
        }
        if s.starts_with('/') || s.starts_with('.') {
            return Ok(Addr::Unix(s.to_string()));
        }
        if s.contains(':') {
            return Ok(Addr::Tcp(s.to_string()));
        }
        Err(format!(
            "unrecognized address `{s}` (use tcp:HOST:PORT, unix:PATH, HOST:PORT, or /path)"
        ))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(a) => write!(f, "tcp:{a}"),
            Addr::Unix(p) => write!(f, "unix:{p}"),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    pub(crate) fn connect(addr: &Addr) -> std::io::Result<Stream> {
        Ok(match addr {
            Addr::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
            Addr::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
        })
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

struct ServerShared<D: PersistDomain> {
    engine: Arc<Engine<D>>,
    stop: AtomicBool,
    /// Clones of live connection streams keyed by connection id, kept so
    /// shutdown can unblock their read loops. A handler removes its own
    /// entry (and shuts the socket down, so the clone here cannot hold
    /// the connection half-open) when it exits.
    conns: Mutex<HashMap<u64, Stream>>,
    next_conn: AtomicU64,
    /// Join handles of connection threads, reaped on shutdown.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A bound socket server serving one engine to many connections.
pub struct Server<D: PersistDomain> {
    shared: Arc<ServerShared<D>>,
    addr: Addr,
    accept: Option<JoinHandle<()>>,
}

impl<D: PersistDomain> Server<D> {
    /// Binds `addr` and starts accepting connections against `engine`.
    /// For `tcp:host:0` the kernel assigns the port; read the result from
    /// [`Server::addr`]. A pre-existing Unix socket path is replaced.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from binding.
    pub fn bind(addr: &Addr, engine: Arc<Engine<D>>) -> std::io::Result<Server<D>> {
        let (listener, bound) = match addr {
            Addr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let actual = Addr::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), actual)
            }
            Addr::Unix(p) => {
                // Replace a stale socket file from a previous run.
                let _ = std::fs::remove_file(p);
                (Listener::Unix(UnixListener::bind(p)?), addr.clone())
            }
        };
        let shared = Arc::new(ServerShared {
            engine,
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("dai-rpc-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_shared))
            .expect("spawn rpc accept thread");
        Ok(Server {
            shared,
            addr: bound,
            accept: Some(accept),
        })
    }

    /// The bound address (with the kernel-assigned port for `tcp:…:0`),
    /// in the form [`Addr::parse`] and clients accept.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine<D>> {
        &self.shared.engine
    }

    /// Stops accepting, unblocks and joins every connection thread, and
    /// removes a Unix socket file. Sessions still owned by connections
    /// are closed by their handlers as they unwind.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = Stream::connect(&self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for (_, conn) in self.shared.conns.lock().expect("conn list").drain() {
            conn.shutdown();
        }
        let handles: Vec<_> = self
            .shared
            .handles
            .lock()
            .expect("handle list")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        if let Addr::Unix(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl<D: PersistDomain> Drop for Server<D> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<D: PersistDomain>(listener: Listener, shared: &Arc<ServerShared<D>>) {
    loop {
        let stream = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared
            .conns
            .lock()
            .expect("conn list")
            .insert(conn_id, clone);
        let conn_shared = Arc::clone(shared);
        let Ok(handle) = std::thread::Builder::new()
            .name(format!("dai-rpc-conn-{conn_id}"))
            .spawn(move || serve_connection(conn_id, stream, &conn_shared))
        else {
            shared.conns.lock().expect("conn list").remove(&conn_id);
            continue;
        };
        let mut handles = shared.handles.lock().expect("handle list");
        // Reap finished connections as new ones arrive, so a long-lived
        // server's handle list tracks live connections, not history.
        let mut live = Vec::with_capacity(handles.len() + 1);
        for h in handles.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        live.push(handle);
        *handles = live;
    }
}

/// Sends one response frame. A response that would itself exceed the
/// frame bound (a pathological snapshot export, say) is replaced with a
/// structured error — the client's bounded reader would otherwise
/// reject it and desynchronize.
fn send(stream: &mut Stream, msg: &WireResponse) -> std::io::Result<()> {
    let _encode_span = dai_trace::span!("rpc.encode");
    let mut payload = encode_message(msg);
    if payload.len() > MAX_FRAME_LEN {
        payload = encode_message(&WireResponse::Error(WireError::Protocol(format!(
            "response of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame bound",
            payload.len()
        ))));
    }
    let mut out = Vec::with_capacity(payload.len() + 32);
    write_frame(&mut out, TAG_RESPONSE, PROTOCOL_VERSION, &payload);
    stream.write_all(&out)?;
    stream.flush()
}

/// One connection's lifetime: hello exchange, then the request loop.
/// Sessions the connection still owns when it ends are closed.
fn serve_connection<D: PersistDomain>(
    conn_id: u64,
    mut stream: Stream,
    shared: &Arc<ServerShared<D>>,
) {
    let mut owned: HashSet<SessionId> = HashSet::new();
    let mut hello_done = false;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Read one frame; in-protocol problems answer a structured error
        // and continue, transport problems end the connection.
        let frame = match read_frame(&mut stream, MAX_FRAME_LEN) {
            Ok(frame) => frame,
            Err(FrameReadError::Oversized { declared, bound }) => {
                // Only the header was consumed. Conforming clients bound
                // their sends, so an oversized header arrives with
                // nothing behind it and the stream stays in sync; a peer
                // that actually shipped the payload only desynchronizes
                // its own connection (the bytes parse as garbage frames
                // answered with further errors until EOF).
                let err = WireError::Protocol(format!(
                    "declared frame length {declared} exceeds the {bound}-byte bound"
                ));
                if send(&mut stream, &WireResponse::Error(err)).is_err() {
                    break;
                }
                continue;
            }
            Err(FrameReadError::Eof)
            | Err(FrameReadError::Truncated)
            | Err(FrameReadError::Io(_)) => break,
        };
        let response = if frame.header.tag != TAG_REQUEST {
            WireResponse::Error(WireError::Protocol(format!(
                "unexpected frame tag {:?} (want {:?})",
                frame.header.tag, TAG_REQUEST
            )))
        } else if frame.header.version != PROTOCOL_VERSION {
            WireResponse::Error(WireError::UnsupportedVersion {
                got: frame.header.version,
                want: PROTOCOL_VERSION,
            })
        } else {
            match &frame.payload {
                None => {
                    WireResponse::Error(WireError::Protocol("frame checksum mismatch".to_string()))
                }
                Some(payload) => {
                    let decoded = {
                        let _decode_span = dai_trace::span!("rpc.decode", payload.len());
                        decode_message::<WireRequest>(payload)
                    };
                    match decoded {
                        Err(e) => WireResponse::Error(WireError::Protocol(format!(
                            "undecodable request payload: {e}"
                        ))),
                        Ok(request) => {
                            let _dispatch_span = dai_trace::span!("rpc.dispatch");
                            handle(shared, &mut owned, &mut hello_done, request)
                        }
                    }
                }
            }
        };
        if send(&mut stream, &response).is_err() {
            break;
        }
    }
    for session in owned {
        shared.engine.close_session(session);
    }
    // `shutdown` acts on the socket itself (not just this FD), so the
    // registry clone cannot hold the connection half-open; removing the
    // entry keeps a long-lived server from accumulating dead FDs.
    stream.shutdown();
    shared.conns.lock().expect("conn list").remove(&conn_id);
}

/// Routes one decoded request into the engine.
fn handle<D: PersistDomain>(
    shared: &Arc<ServerShared<D>>,
    owned: &mut HashSet<SessionId>,
    hello_done: &mut bool,
    request: WireRequest,
) -> WireResponse {
    let engine = shared.engine.as_ref();
    if !*hello_done {
        return match request {
            WireRequest::Hello { domain } => {
                if domain != D::domain_tag() {
                    WireResponse::Error(WireError::DomainMismatch {
                        client: domain,
                        server: D::domain_tag(),
                    })
                } else {
                    *hello_done = true;
                    WireResponse::HelloOk {
                        domain,
                        protocol: PROTOCOL_VERSION,
                    }
                }
            }
            other => WireResponse::Error(WireError::Protocol(format!(
                "first message must be a hello, got {}",
                request_name(&other)
            ))),
        };
    }
    match request {
        WireRequest::Hello { .. } => WireResponse::Error(WireError::Protocol(
            "hello already exchanged on this connection".to_string(),
        )),
        WireRequest::Open { name, source } => match engine.open_session_src(name, &source) {
            Ok(id) => {
                owned.insert(id);
                WireResponse::Opened { session: id.0 }
            }
            Err(e) => WireResponse::Error(WireError::from_engine(&e)),
        },
        WireRequest::Close { session } => {
            let id = SessionId(session);
            owned.remove(&id);
            WireResponse::Closed {
                existed: engine.close_session(id),
            }
        }
        WireRequest::Query { session, func, loc } => {
            match engine.query(SessionId(session), &func, loc) {
                Ok(d) => WireResponse::State(WireState::encode(&d)),
                Err(e) => WireResponse::Error(WireError::from_engine(&e)),
            }
        }
        WireRequest::QueryBatch {
            session,
            func,
            locs,
        } => {
            // One wire frame → one deliberate coalesced batch.
            let tickets = engine.submit_query_batch(SessionId(session), &func, &locs);
            WireResponse::States(collect_states(tickets))
        }
        WireRequest::Sweep { session, targets } => {
            // One wire frame → the engine's sweep path: one coalesced
            // batch per contiguous function run, preserving PR 4's
            // lock/cone profile across the wire.
            let tickets = engine.submit_query_sweep(SessionId(session), &targets);
            WireResponse::States(collect_states(tickets))
        }
        WireRequest::Edit { session, edit } => {
            match Service::edit(engine, SessionId(session), &edit) {
                Ok(outcome) => WireResponse::Edited(outcome),
                Err(e) => WireResponse::Error(WireError::from_engine(&e)),
            }
        }
        WireRequest::Snapshot { session } => match Service::snapshot(engine, SessionId(session)) {
            Ok(snap) => WireResponse::Snapshot(snap),
            Err(e) => WireResponse::Error(WireError::from_engine(&e)),
        },
        WireRequest::Save { session, path } => {
            match Service::save(engine, SessionId(session), &path) {
                Ok(outcome) => WireResponse::Saved(outcome),
                Err(e) => WireResponse::Error(WireError::from_engine(&e)),
            }
        }
        WireRequest::Load { path } => match Service::load(engine, &path) {
            Ok((id, outcome)) => {
                owned.insert(id);
                WireResponse::Loaded {
                    session: id.0,
                    outcome,
                }
            }
            Err(e) => WireResponse::Error(WireError::from_engine(&e)),
        },
        WireRequest::Stats => WireResponse::Stats(engine.stats()),
        WireRequest::Handoff { session } => WireResponse::Released {
            owned: owned.remove(&SessionId(session)),
        },
        WireRequest::Trace { op } => WireResponse::Trace(match op {
            dai_engine::TraceOp::Enable => {
                engine.set_tracing(true);
                Default::default()
            }
            dai_engine::TraceOp::Disable => {
                engine.set_tracing(false);
                Default::default()
            }
            dai_engine::TraceOp::Dump => engine.drain_trace(),
        }),
        WireRequest::Metrics => WireResponse::Metrics {
            text: engine.metrics_text(),
        },
        WireRequest::Explain { session, targets } => {
            // One wire frame → one attributed sweep, served synchronously
            // under the session lock (see `Engine::explain_sweep`).
            match Service::explain(engine, SessionId(session), &targets) {
                Ok(report) => WireResponse::Explain(report),
                Err(e) => WireResponse::Error(WireError::from_engine(&e)),
            }
        }
    }
}

/// Waits a batch of query tickets into wire member results. Members fail
/// individually (unlike [`Ticket::wait_all`], which short-circuits), and
/// the drain runs in reverse submission order for the same
/// one-sleep-per-batch reason `wait_all` documents.
fn collect_states<D: PersistDomain>(tickets: Vec<Ticket<D>>) -> Vec<Result<WireState, WireError>> {
    let mut out: Vec<Option<Result<WireState, WireError>>> = tickets.iter().map(|_| None).collect();
    for (i, t) in tickets.into_iter().enumerate().rev() {
        out[i] = Some(
            t.wait()
                .and_then(Response::state_or_invariant)
                .map(|d| WireState::encode(&d))
                .map_err(|e| WireError::from_engine(&e)),
        );
    }
    out.into_iter()
        .map(|r| r.expect("every ticket waited"))
        .collect()
}

fn request_name(r: &WireRequest) -> &'static str {
    match r {
        WireRequest::Hello { .. } => "hello",
        WireRequest::Open { .. } => "open",
        WireRequest::Close { .. } => "close",
        WireRequest::Query { .. } => "query",
        WireRequest::QueryBatch { .. } => "query-batch",
        WireRequest::Sweep { .. } => "sweep",
        WireRequest::Edit { .. } => "edit",
        WireRequest::Snapshot { .. } => "snapshot",
        WireRequest::Save { .. } => "save",
        WireRequest::Load { .. } => "load",
        WireRequest::Stats => "stats",
        WireRequest::Handoff { .. } => "handoff",
        WireRequest::Trace { .. } => "trace",
        WireRequest::Metrics => "metrics",
        WireRequest::Explain { .. } => "explain",
    }
}
