//! The socket front end: one [`dai_engine::Engine`], many connections,
//! one event loop.
//!
//! A [`Server`] binds a TCP or Unix socket and routes decoded
//! [`WireRequest`] frames into the engine it wraps. Connections are not
//! threads: a single readiness event loop (epoll, hand-rolled — no
//! dependency, matching the rest of the stack) owns every nonblocking
//! socket, parses frames incrementally out of per-connection read
//! buffers, and dispatches queries as [`dai_engine::Ticket`]s whose
//! completion hooks wake the loop through a self-pipe. One connection
//! can therefore carry **many in-flight requests** (protocol ≥ 4 frames
//! carry a request id; responses may complete out of order), and the
//! loop never blocks on the engine.
//!
//! ## Pipelined coalescing
//!
//! Adjacent `Query` frames against the same `(session, function)` that
//! arrive in one read drain are submitted through
//! [`dai_engine::Engine::submit_query_batch`] as **one** batch — one
//! session-lock acquisition, one union-cone evaluation — while each
//! frame keeps its own request id and gets its own response. A client
//! that pipelines per-query frames over one socket reproduces the
//! in-process coalesced lock profile without ever building an explicit
//! batch. Runs break at any non-query frame, so an interleaved `Edit`
//! keeps its submission-order fencing semantics.
//!
//! ## Backpressure
//!
//! Per-connection buffers are bounded in both directions. A connection
//! whose write queue backlog passes the soft cap (or that has too many
//! requests in flight) stops being *read* — its socket fills, the peer's
//! sends stall, and memory stays put. If the backlog still passes the
//! hard cap (responses already owed can be large), further responses are
//! replaced with a structured [`WireError::Overloaded`] carrying the
//! same request id — the peer always learns the fate of every request,
//! and the server never buffers unboundedly for a slow reader.
//!
//! ## Session ownership
//!
//! Sessions a connection opens ([`WireRequest::Open`]) or restores
//! ([`WireRequest::Load`]) are **owned by that connection**: when it
//! disconnects, they are closed — a crashed IDE does not leak sessions
//! into a long-lived server. [`WireRequest::Handoff`] releases a session
//! to the engine (the explicit handoff), after which it survives the
//! connection. (A `Load` whose connection dies before the restore
//! completes also leaves the session engine-owned, as if handed off.)
//!
//! ## Hostile bytes
//!
//! Malformed traffic is answered in protocol, not with a dropped
//! connection: a damaged frame (checksum mismatch), an oversized
//! declared length (rejected from the header alone), an undecodable
//! payload, or a frame with the wrong protocol version each produce one
//! structured [`WireError`] response — with the offending frame's
//! request id echoed when one was readable — and parsing continues at
//! the next frame boundary. Only transport EOF/errors end a connection,
//! and ending a connection never takes the server down.

use dai_engine::{Engine, EngineError, Request, Response, SessionId, Ticket};
use dai_persist::frame::{
    checksum_with, FrameHeader, FRAME_HEADER_LEN, FRAME_ID_LEN, FRAME_TRAILER_LEN,
};
use dai_persist::PersistDomain;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::raw::c_int;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::proto::{
    decode_message, encode_message, WireError, WireRequest, WireResponse, WireState, MAX_FRAME_LEN,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, TAG_REQUEST, TAG_RESPONSE,
};

/// Write-queue backlog (bytes) above which a connection stops being
/// read: the peer's own sends stall instead of the server buffering.
const SOFT_WRITE_CAP: usize = 1 << 20;

/// Write-queue backlog (bytes) above which further responses are
/// replaced with [`WireError::Overloaded`] (the id still answers). The
/// backlog can legitimately exceed the *soft* cap by responses already
/// owed, so the hard cap bounds worst-case memory per connection at
/// roughly `HARD_WRITE_CAP + MAX_FRAME_LEN`.
const HARD_WRITE_CAP: usize = 8 << 20;

/// In-flight request cap per connection; reads stall above it.
const MAX_INFLIGHT: usize = 1024;

/// Request id used on responses to frames whose own id could not be
/// read (wrong tag, short header). Clients allocate ids from 1.
const UNATTRIBUTED_ID: u64 = 0;

// ---------------------------------------------------------------------
// epoll via the platform libc that std already links: no new deps.
// ---------------------------------------------------------------------

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// An owned epoll instance.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    fn del(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits for readiness, retrying `EINTR`. Returns the filled prefix.
    fn wait<'a>(&self, events: &'a mut [EpollEvent]) -> std::io::Result<&'a [EpollEvent]> {
        loop {
            let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, -1) };
            if rc >= 0 {
                return Ok(&events[..rc as usize]);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

// ---------------------------------------------------------------------
// Addresses, listeners, streams.
// ---------------------------------------------------------------------

/// A parsed bind/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A TCP socket address (host:port).
    Tcp(String),
    /// A Unix domain socket path.
    Unix(String),
}

impl Addr {
    /// Parses `"tcp:HOST:PORT"`, `"unix:PATH"`, a bare `/path` (unix), or
    /// a bare `HOST:PORT` (tcp).
    ///
    /// # Errors
    ///
    /// A human-readable description of an unrecognizable address.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            return Ok(Addr::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("unix:") {
            return Ok(Addr::Unix(rest.to_string()));
        }
        if s.starts_with('/') || s.starts_with('.') {
            return Ok(Addr::Unix(s.to_string()));
        }
        if s.contains(':') {
            return Ok(Addr::Tcp(s.to_string()));
        }
        Err(format!(
            "unrecognized address `{s}` (use tcp:HOST:PORT, unix:PATH, HOST:PORT, or /path)"
        ))
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(a) => write!(f, "tcp:{a}"),
            Addr::Unix(p) => write!(f, "unix:{p}"),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
        })
    }
}

pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    pub(crate) fn connect(addr: &Addr) -> std::io::Result<Stream> {
        let stream = match addr {
            Addr::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
            Addr::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
        };
        tune_stream(&stream);
        Ok(stream)
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(true),
            Stream::Unix(s) => s.set_nonblocking(true),
        }
    }

    fn raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

/// Per-socket transport tuning, applied to accepted *and* dialed
/// streams: `TCP_NODELAY`, so the small request/response frames
/// pipelining is made of leave immediately instead of sitting out a
/// Nagle round-trip. Unix sockets need (and take) no tuning.
pub(crate) fn tune_stream(stream: &Stream) {
    if let Stream::Tcp(s) = stream {
        let _ = s.set_nodelay(true);
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------
// Server handle.
// ---------------------------------------------------------------------

/// Server-side configuration for [`Server::bind_with`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// When set, every hello must present this token
    /// ([`WireRequest::Hello`]'s `auth` field); mismatch or absence
    /// answers [`WireError::Unauthorized`]. Compared constant-time.
    pub auth_token: Option<String>,
}

/// A bound socket server serving one engine to many connections.
pub struct Server<D: PersistDomain> {
    engine: Arc<Engine<D>>,
    addr: Addr,
    stop: Arc<AtomicBool>,
    waker: Arc<UnixStream>,
    event_loop: Option<JoinHandle<()>>,
}

impl<D: PersistDomain> Server<D> {
    /// Binds `addr` and starts the event loop against `engine`. For
    /// `tcp:host:0` the kernel assigns the port; read the result from
    /// [`Server::addr`]. A pre-existing Unix socket path is replaced.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] from binding or epoll setup.
    pub fn bind(addr: &Addr, engine: Arc<Engine<D>>) -> std::io::Result<Server<D>> {
        Server::bind_with(addr, engine, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit [`ServerConfig`] (auth token).
    ///
    /// # Errors
    ///
    /// As [`Server::bind`].
    pub fn bind_with(
        addr: &Addr,
        engine: Arc<Engine<D>>,
        config: ServerConfig,
    ) -> std::io::Result<Server<D>> {
        let (listener, bound) = match addr {
            Addr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let actual = Addr::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), actual)
            }
            Addr::Unix(p) => {
                // Replace a stale socket file from a previous run.
                let _ = std::fs::remove_file(p);
                (Listener::Unix(UnixListener::bind(p)?), addr.clone())
            }
        };
        listener.set_nonblocking()?;
        let (waker_rx, waker_tx) = UnixStream::pair()?;
        waker_rx.set_nonblocking(true)?;
        waker_tx.set_nonblocking(true)?;
        let waker_tx = Arc::new(waker_tx);
        let stop = Arc::new(AtomicBool::new(false));
        let mut event_loop = EventLoop {
            ep: Epoll::new()?,
            listener,
            waker_rx,
            engine: Arc::clone(&engine),
            auth_token: config.auth_token,
            stop: Arc::clone(&stop),
            completion: Arc::new(CompletionQueue {
                ready: Mutex::new(Vec::new()),
                waker: Arc::clone(&waker_tx),
            }),
            conns: HashMap::new(),
            next_conn: 0,
            encode_cache: EncodeCache::new(),
        };
        event_loop
            .ep
            .add(event_loop.listener.raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        event_loop
            .ep
            .add(event_loop.waker_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKER)?;
        let handle = std::thread::Builder::new()
            .name("dai-rpc-loop".to_string())
            .spawn(move || event_loop.run())
            .expect("spawn rpc event loop");
        Ok(Server {
            engine,
            addr: bound,
            stop,
            waker: waker_tx,
            event_loop: Some(handle),
        })
    }

    /// The bound address (with the kernel-assigned port for `tcp:…:0`),
    /// in the form [`Addr::parse`] and clients accept.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The served engine.
    pub fn engine(&self) -> &Arc<Engine<D>> {
        &self.engine
    }

    /// Stops the event loop, closes every connection (sessions still
    /// owned by connections are closed with them), and removes a Unix
    /// socket file. In-flight requests resolve engine-side; their
    /// responses are dropped with the connections.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = (&*self.waker).write(&[1u8]);
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        if let Addr::Unix(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl<D: PersistDomain> Drop for Server<D> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------
// The event loop.
// ---------------------------------------------------------------------

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Ticket-completion fan-in: engine workers push `(conn, seq)` and poke
/// the self-pipe; the loop drains under one short lock hold.
struct CompletionQueue {
    ready: Mutex<Vec<(u64, u64)>>,
    waker: Arc<UnixStream>,
}

impl CompletionQueue {
    fn push(&self, conn: u64, seq: u64) {
        self.ready
            .lock()
            .expect("completion queue poisoned")
            .push((conn, seq));
        // A full (or closed, post-shutdown) pipe is fine: a byte is
        // already in flight, or nobody is listening anymore.
        let _ = (&*self.waker).write(&[1u8]);
    }

    fn drain(&self) -> Vec<(u64, u64)> {
        std::mem::take(&mut *self.ready.lock().expect("completion queue poisoned"))
    }
}

/// One queued reply slot, in request-arrival order.
struct Pending<D> {
    seq: u64,
    id: Option<u64>,
    state: PendState<D>,
}

enum PendState<D> {
    /// Resolved; waiting for its turn (v3) or the next flush (v4).
    /// Boxed: a resolved response dwarfs the ticket variants, and most
    /// queue entries at any instant are still tickets.
    Ready(Box<WireResponse>),
    /// One engine ticket (single query, edit, save, load, stats, …).
    One(Ticket<D>),
    /// A query batch or sweep: one response carrying every member.
    Many(Vec<Ticket<D>>),
}

struct Conn<D> {
    stream: Stream,
    fd: RawFd,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Pinned by the hello frame's header version; `None` until then.
    version: Option<u16>,
    hello_done: bool,
    owned: HashSet<SessionId>,
    pending: VecDeque<Pending<D>>,
    next_seq: u64,
    interest: u32,
    peer_eof: bool,
    dead: bool,
}

impl<D> Conn<D> {
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether new request bytes should stop being consumed.
    fn stalled(&self) -> bool {
        self.backlog() > SOFT_WRITE_CAP || self.pending.len() >= MAX_INFLIGHT
    }

    /// The protocol version responses on this connection are framed
    /// with ([`PROTOCOL_VERSION`] until the first valid-versioned frame
    /// pins one).
    fn wire_version(&self) -> u16 {
        self.version.unwrap_or(PROTOCOL_VERSION)
    }
}

struct EventLoop<D: PersistDomain> {
    ep: Epoll,
    listener: Listener,
    waker_rx: UnixStream,
    engine: Arc<Engine<D>>,
    auth_token: Option<String>,
    stop: Arc<AtomicBool>,
    completion: Arc<CompletionQueue>,
    conns: HashMap<u64, Conn<D>>,
    next_conn: u64,
    encode_cache: EncodeCache<D>,
}

/// Memoizes [`WireState::encode`] per state identity (see
/// [`PersistDomain::encode_identity`]). The engine's memo tables hand
/// the *same* shared state handle back on warm repeats, so a warm
/// sweep's per-member encodes collapse into map hits. Each entry pins a
/// clone of its state: address-derived identity tokens are only unique
/// while the allocation lives, so the cache keeps it alive.
///
/// Domains without a cheap identity (`encode_identity() == None`)
/// bypass the cache entirely.
struct EncodeCache<D> {
    map: HashMap<u64, (D, Vec<u8>), dai_memo::FxBuild>,
}

impl<D: PersistDomain> EncodeCache<D> {
    /// Entry bound; the whole map is dropped when it fills, which also
    /// releases every pinned state (no stale tokens can survive).
    const CAP: usize = 4096;

    fn new() -> Self {
        EncodeCache {
            map: HashMap::default(),
        }
    }

    fn encode(&mut self, d: &D) -> WireState {
        let Some(key) = d.encode_identity() else {
            return WireState::encode(d);
        };
        if let Some((_pin, bytes)) = self.map.get(&key) {
            return WireState(bytes.clone());
        }
        let state = WireState::encode(d);
        if self.map.len() >= Self::CAP {
            self.map.clear();
        }
        self.map.insert(key, (d.clone(), state.0.clone()));
        state
    }
}

/// One frame parsed off the front of a connection's read buffer.
enum Parsed {
    /// Not enough buffered bytes for the next boundary yet.
    Incomplete,
    /// A complete frame (damaged payloads arrive as `payload: None`).
    Frame {
        header: FrameHeader,
        id: Option<u64>,
        payload_ok: bool,
        consumed: usize,
    },
    /// A header whose declared length exceeds the bound; only the
    /// header (and id, when the layout has one) is consumed.
    Oversized {
        header: FrameHeader,
        id: Option<u64>,
        consumed: usize,
    },
}

/// Whether a frame's `(tag, version)` pair carries the id field.
fn frame_has_id(header: &FrameHeader) -> bool {
    (header.tag == TAG_REQUEST || header.tag == TAG_RESPONSE) && header.version >= 4
}

/// Splits one request frame off `buf` without copying the payload (the
/// payload is decoded in place; only its verification result travels).
fn parse_frame(buf: &[u8]) -> Parsed {
    if buf.len() < FRAME_HEADER_LEN {
        return Parsed::Incomplete;
    }
    let header = FrameHeader::decode(
        buf[..FRAME_HEADER_LEN]
            .try_into()
            .expect("checked header length"),
    );
    let id_len = if frame_has_id(&header) {
        FRAME_ID_LEN
    } else {
        0
    };
    let pre = FRAME_HEADER_LEN + id_len;
    if buf.len() < pre {
        return Parsed::Incomplete;
    }
    let id = (id_len > 0)
        .then(|| u64::from_le_bytes(buf[FRAME_HEADER_LEN..pre].try_into().expect("8 id bytes")));
    if header.len > MAX_FRAME_LEN as u64 {
        return Parsed::Oversized {
            header,
            id,
            consumed: pre,
        };
    }
    let len = header.len as usize;
    let Some(total) = pre.checked_add(len + FRAME_TRAILER_LEN) else {
        return Parsed::Incomplete;
    };
    if buf.len() < total {
        return Parsed::Incomplete;
    }
    let payload = &buf[pre..pre + len];
    let sum = u64::from_le_bytes(buf[pre + len..total].try_into().expect("8 checksum bytes"));
    Parsed::Frame {
        header,
        id,
        payload_ok: checksum_with(payload, id) == sum,
        consumed: total,
    }
}

/// A run of adjacent same-`(session, function)` query frames being
/// collected for one coalesced batch submission.
struct QueryRun {
    session: u64,
    func: String,
    members: Vec<(dai_lang::Loc, u64, Option<u64>)>, // (loc, seq, id)
}

impl<D: PersistDomain> EventLoop<D> {
    fn run(&mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 64];
        // Not a while-let: the handlers below re-borrow `self` mutably,
        // so the wait result must be detached from the loop condition.
        #[allow(clippy::while_let_loop)]
        loop {
            let ready: Vec<EpollEvent> = match self.ep.wait(&mut events) {
                Ok(evs) => evs.to_vec(),
                Err(_) => break,
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut touched: Vec<u64> = Vec::new();
            for ev in &ready {
                let token = ev.data;
                let kinds = ev.events;
                match token {
                    TOKEN_LISTENER => self.accept_all(),
                    TOKEN_WAKER => self.drain_waker(),
                    conn_id => {
                        if let Some(conn) = self.conns.get_mut(&conn_id) {
                            if kinds & (EPOLLERR | EPOLLHUP) != 0 {
                                conn.dead = true;
                            }
                            touched.push(conn_id);
                        }
                    }
                }
            }
            // Ticket completions resolve pending entries to Ready.
            for (conn_id, seq) in self.completion.drain() {
                self.resolve(conn_id, seq);
                touched.push(conn_id);
            }
            touched.sort_unstable();
            touched.dedup();
            for conn_id in touched {
                self.pump(conn_id);
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        // Shutdown: close every connection and the sessions it owns.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    fn accept_all(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking().is_err() {
                continue;
            }
            tune_stream(&stream);
            let conn_id = self.next_conn;
            self.next_conn += 1;
            let fd = stream.raw_fd();
            let interest = EPOLLIN | EPOLLRDHUP;
            if self.ep.add(fd, interest, conn_id).is_err() {
                continue;
            }
            self.conns.insert(
                conn_id,
                Conn {
                    stream,
                    fd,
                    rbuf: Vec::new(),
                    rpos: 0,
                    wbuf: Vec::new(),
                    wpos: 0,
                    version: None,
                    hello_done: false,
                    owned: HashSet::new(),
                    pending: VecDeque::new(),
                    next_seq: 0,
                    interest,
                    peer_eof: false,
                    dead: false,
                },
            );
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Marks the pending entry `(conn, seq)` Ready by taking its
    /// completed tickets. Completions for dead connections are dropped.
    fn resolve(&mut self, conn_id: u64, seq: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let Some(entry) = conn.pending.iter_mut().find(|p| p.seq == seq) else {
            return;
        };
        // Placeholder, immediately overwritten below; never observed.
        let placeholder = PendState::Ready(Box::new(WireResponse::Error(WireError::Disconnected)));
        let state = std::mem::replace(&mut entry.state, placeholder);
        let response = match state {
            PendState::Ready(r) => *r,
            PendState::One(ticket) => {
                let result = ticket.try_take().unwrap_or(Err(EngineError::Disconnected));
                response_to_wire(result, &mut conn.owned, &mut self.encode_cache)
            }
            PendState::Many(tickets) => {
                let cache = &mut self.encode_cache;
                let members = tickets
                    .iter()
                    .map(|t| {
                        t.try_take()
                            .unwrap_or(Err(EngineError::Disconnected))
                            .and_then(Response::state_or_invariant)
                            .map(|d| cache.encode(&d))
                            .map_err(|e| WireError::from_engine(&e))
                    })
                    .collect();
                WireResponse::States(members)
            }
        };
        entry.state = PendState::Ready(Box::new(response));
    }

    /// Makes every kind of progress available on one connection: parse
    /// and dispatch buffered requests, flush resolved responses into the
    /// write buffer, push the write buffer into the socket, then settle
    /// epoll interest — and close the connection when it is finished.
    fn pump(&mut self, conn_id: u64) {
        // Not a while-let: `process_rbuf` needs `&mut self`, so the
        // connection must be re-fetched around it rather than held.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                return;
            };
            if conn.dead {
                break;
            }
            let mut progressed = false;
            // Read newly arrived bytes (unless backpressure stalls us).
            if !conn.stalled() && !conn.peer_eof {
                match read_available(conn) {
                    Ok(_) => {}
                    Err(_) => conn.dead = true,
                }
            }
            if !conn.dead {
                progressed |= self.process_rbuf(conn_id);
            }
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                return;
            };
            progressed |= flush_ready(conn);
            progressed |= flush_writes(conn);
            if !progressed || conn.dead {
                break;
            }
        }
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let finished = conn.peer_eof && conn.pending.is_empty() && conn.backlog() == 0;
        if conn.dead || finished {
            self.close_conn(conn_id);
            return;
        }
        let want_read = !conn.stalled() && !conn.peer_eof;
        let mut interest = EPOLLRDHUP;
        if want_read {
            interest |= EPOLLIN;
        }
        if conn.backlog() > 0 {
            interest |= EPOLLOUT;
        }
        if interest != conn.interest {
            if self.ep.modify(conn.fd, interest, conn_id).is_err() {
                self.close_conn(conn_id);
                return;
            }
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.interest = interest;
            }
        }
    }

    /// Parses complete frames out of the read buffer and dispatches
    /// them, coalescing adjacent same-key query frames into one engine
    /// batch. Returns whether any frame was consumed.
    fn process_rbuf(&mut self, conn_id: u64) -> bool {
        let mut any = false;
        let mut run: Option<QueryRun> = None;
        // Not a while-let: `dispatch_frame` needs `&mut self`, so the
        // connection must be re-fetched around it rather than held.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                break;
            };
            if conn.stalled() {
                break;
            }
            let parsed = parse_frame(&conn.rbuf[conn.rpos..]);
            match parsed {
                Parsed::Incomplete => break,
                Parsed::Oversized {
                    header,
                    id,
                    consumed,
                } => {
                    conn.rpos += consumed;
                    any = true;
                    self.flush_run(conn_id, &mut run);
                    let err = WireError::Protocol(format!(
                        "declared frame length {} exceeds the {MAX_FRAME_LEN}-byte bound",
                        header.len
                    ));
                    self.push_ready(conn_id, id, WireResponse::Error(err));
                }
                Parsed::Frame {
                    header,
                    id,
                    payload_ok,
                    consumed,
                } => {
                    any = true;
                    self.dispatch_frame(conn_id, header, id, payload_ok, consumed, &mut run);
                }
            }
        }
        self.flush_run(conn_id, &mut run);
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            if conn.rpos > 0 {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
        }
        any
    }

    /// Handles one complete frame: protocol checks, hello gating, then
    /// request routing. Query frames extend (or start) the coalescing
    /// run; everything else flushes it first, preserving submission
    /// order across the engine's edit fences.
    fn dispatch_frame(
        &mut self,
        conn_id: u64,
        header: FrameHeader,
        id: Option<u64>,
        payload_ok: bool,
        consumed: usize,
        run: &mut Option<QueryRun>,
    ) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let payload_start =
            conn.rpos + FRAME_HEADER_LEN + if id.is_some() { FRAME_ID_LEN } else { 0 };
        let payload_range = payload_start..payload_start + header.len as usize;
        conn.rpos += consumed;

        if header.tag != TAG_REQUEST {
            self.flush_run(conn_id, run);
            let err = WireError::Protocol(format!(
                "unexpected frame tag {:?} (want {:?})",
                header.tag, TAG_REQUEST
            ));
            self.push_ready(conn_id, id, WireResponse::Error(err));
            return;
        }
        let pinned = conn.version;
        let version_ok = match pinned {
            Some(v) => header.version == v,
            None => (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&header.version),
        };
        if version_ok && pinned.is_none() {
            // Pin the connection's frame layout to the first
            // valid-versioned frame, hello or not, accepted or not: a
            // rejected v3 hello (bad auth, wrong domain) must be
            // *answered* in the id-less v3 layout the peer can read.
            conn.version = Some(header.version);
        }
        if !version_ok {
            self.flush_run(conn_id, run);
            let err = WireError::UnsupportedVersion {
                got: header.version,
                want: PROTOCOL_VERSION,
            };
            self.push_ready(conn_id, id, WireResponse::Error(err));
            return;
        }
        if !payload_ok {
            self.flush_run(conn_id, run);
            let err = WireError::Protocol("frame checksum mismatch".to_string());
            self.push_ready(conn_id, id, WireResponse::Error(err));
            return;
        }
        let request = {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                return;
            };
            let payload = &conn.rbuf[payload_range];
            let _decode_span = dai_trace::span!("rpc.decode", payload.len());
            decode_message::<WireRequest>(payload)
        };
        let request = match request {
            Ok(r) => r,
            Err(e) => {
                self.flush_run(conn_id, run);
                let err = WireError::Protocol(format!("undecodable request payload: {e}"));
                self.push_ready(conn_id, id, WireResponse::Error(err));
                return;
            }
        };
        let _dispatch_span = dai_trace::span!("rpc.dispatch");
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if !conn.hello_done {
            self.flush_run(conn_id, run);
            let response = self.handle_hello(conn_id, header.version, request);
            self.push_ready(conn_id, id, response);
            return;
        }
        match request {
            WireRequest::Query { session, func, loc } => {
                // Extend the coalescing run, or flush and start another.
                let matches = run
                    .as_ref()
                    .is_some_and(|r| r.session == session && r.func == func);
                if !matches {
                    self.flush_run(conn_id, run);
                }
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return;
                };
                let seq = conn.next_seq;
                conn.next_seq += 1;
                match run {
                    Some(r) if matches => r.members.push((loc, seq, id)),
                    _ => {
                        *run = Some(QueryRun {
                            session,
                            func,
                            members: vec![(loc, seq, id)],
                        });
                    }
                }
            }
            other => {
                self.flush_run(conn_id, run);
                self.handle_request(conn_id, id, other);
            }
        }
    }

    /// Submits a collected query run as **one** coalesced engine batch;
    /// every member keeps its own pending entry (and id), so each query
    /// frame still gets its own response.
    fn flush_run(&mut self, conn_id: u64, run: &mut Option<QueryRun>) {
        let Some(r) = run.take() else {
            return;
        };
        let locs: Vec<dai_lang::Loc> = r.members.iter().map(|(l, _, _)| *l).collect();
        let tickets = self
            .engine
            .submit_query_batch(SessionId(r.session), &r.func, &locs);
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        for (ticket, (_, seq, id)) in tickets.into_iter().zip(r.members) {
            arm_group(
                std::slice::from_ref(&ticket),
                conn_id,
                seq,
                &self.completion,
            );
            conn.pending.push_back(Pending {
                seq,
                id,
                state: PendState::One(ticket),
            });
        }
    }

    /// The gate every connection starts behind: the first decoded
    /// message must be a hello naming the right domain (and presenting
    /// the auth token, when the server requires one). The frame layout
    /// was already pinned to the hello frame's version in
    /// [`EventLoop::dispatch_frame`] — even a rejected hello answers in
    /// the layout the peer reads.
    fn handle_hello(
        &mut self,
        conn_id: u64,
        frame_version: u16,
        request: WireRequest,
    ) -> WireResponse {
        match request {
            WireRequest::Hello { domain, auth } => {
                if domain != D::domain_tag() {
                    return WireResponse::Error(WireError::DomainMismatch {
                        client: domain,
                        server: D::domain_tag(),
                    });
                }
                if let Some(want) = &self.auth_token {
                    let ok = auth
                        .as_deref()
                        .is_some_and(|got| constant_time_eq(got.as_bytes(), want.as_bytes()));
                    if !ok {
                        return WireResponse::Error(WireError::Unauthorized);
                    }
                }
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return WireResponse::Error(WireError::Disconnected);
                };
                conn.hello_done = true;
                conn.version = Some(frame_version);
                WireResponse::HelloOk {
                    domain,
                    protocol: frame_version,
                }
            }
            other => WireResponse::Error(WireError::Protocol(format!(
                "first message must be a hello, got {}",
                request_name(&other)
            ))),
        }
    }

    /// Routes one post-hello, non-`Query` request. Engine-backed
    /// requests become tickets (the loop never blocks on them); the
    /// session-table and introspection requests answer immediately.
    fn handle_request(&mut self, conn_id: u64, id: Option<u64>, request: WireRequest) {
        let engine = Arc::clone(&self.engine);
        match request {
            WireRequest::Hello { .. } => {
                self.push_ready(
                    conn_id,
                    id,
                    WireResponse::Error(WireError::Protocol(
                        "hello already exchanged on this connection".to_string(),
                    )),
                );
            }
            WireRequest::Query { .. } => unreachable!("query frames travel the coalescing run"),
            WireRequest::QueryBatch {
                session,
                func,
                locs,
            } => {
                // One wire frame → one deliberate coalesced batch.
                let tickets = engine.submit_query_batch(SessionId(session), &func, &locs);
                self.push_tickets(conn_id, id, tickets);
            }
            WireRequest::Sweep { session, targets } => {
                // One wire frame → the engine's sweep path: one
                // coalesced batch per contiguous function run.
                let tickets = {
                    let _submit_span = dai_trace::span!("rpc.submit");
                    engine.submit_query_sweep(SessionId(session), &targets)
                };
                self.push_tickets(conn_id, id, tickets);
            }
            WireRequest::Edit { session, edit } => {
                let ticket = engine.submit(Request::Edit {
                    session: SessionId(session),
                    edit,
                });
                self.push_ticket(conn_id, id, ticket);
            }
            WireRequest::Snapshot { session } => {
                let ticket = engine.submit(Request::Snapshot {
                    session: SessionId(session),
                });
                self.push_ticket(conn_id, id, ticket);
            }
            WireRequest::Save { session, path } => {
                let ticket = engine.submit(Request::Save {
                    session: SessionId(session),
                    path,
                });
                self.push_ticket(conn_id, id, ticket);
            }
            WireRequest::Load { path } => {
                // Ownership of the restored session is recorded at
                // completion time (see `response_to_wire`).
                let ticket = engine.submit(Request::Load { path });
                self.push_ticket(conn_id, id, ticket);
            }
            WireRequest::Stats => {
                let ticket = engine.submit(Request::Stats);
                self.push_ticket(conn_id, id, ticket);
            }
            WireRequest::Open { name, source } => {
                let response = match engine.open_session_src(name, &source) {
                    Ok(sid) => {
                        if let Some(conn) = self.conns.get_mut(&conn_id) {
                            conn.owned.insert(sid);
                        }
                        WireResponse::Opened { session: sid.0 }
                    }
                    Err(e) => WireResponse::Error(WireError::from_engine(&e)),
                };
                self.push_ready(conn_id, id, response);
            }
            WireRequest::Close { session } => {
                let sid = SessionId(session);
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.owned.remove(&sid);
                }
                let response = WireResponse::Closed {
                    existed: engine.close_session(sid),
                };
                self.push_ready(conn_id, id, response);
            }
            WireRequest::Handoff { session } => {
                let owned = self
                    .conns
                    .get_mut(&conn_id)
                    .is_some_and(|c| c.owned.remove(&SessionId(session)));
                self.push_ready(conn_id, id, WireResponse::Released { owned });
            }
            WireRequest::Trace { op } => {
                let dump = match op {
                    dai_engine::TraceOp::Enable => {
                        engine.set_tracing(true);
                        Default::default()
                    }
                    dai_engine::TraceOp::Disable => {
                        engine.set_tracing(false);
                        Default::default()
                    }
                    dai_engine::TraceOp::Dump => engine.drain_trace(),
                };
                self.push_ready(conn_id, id, WireResponse::Trace(dump));
            }
            WireRequest::Metrics => {
                let response = WireResponse::Metrics {
                    text: engine.metrics_text(),
                };
                self.push_ready(conn_id, id, response);
            }
            WireRequest::Explain { session, targets } => {
                // One wire frame → one attributed sweep, served
                // synchronously under the session lock (see
                // `Engine::explain_sweep`). The capture is quick and
                // deliberate; it is the one request the loop waits out.
                let response = match dai_engine::Service::explain(
                    engine.as_ref(),
                    SessionId(session),
                    &targets,
                ) {
                    Ok(report) => WireResponse::Explain(report),
                    Err(e) => WireResponse::Error(WireError::from_engine(&e)),
                };
                self.push_ready(conn_id, id, response);
            }
            WireRequest::Subscribe { after, max } => {
                // Served straight off the leader's journal file: the
                // frames ship verbatim (disk format == wire format), so
                // the loop only pays one bounded read, not an engine
                // round trip.
                let response = match engine.journal() {
                    None => WireResponse::Error(WireError::Rejected {
                        kind: "no-journal".to_string(),
                        message: "server has no journal attached (nothing to replicate)"
                            .to_string(),
                    }),
                    Some(journal) => match journal.frames_since(after, max) {
                        Ok(batch) => WireResponse::Stream {
                            head_seq: journal.last_seq(),
                            last_seq: batch.last_seq,
                            count: batch.count,
                            frames: batch.bytes,
                        },
                        Err(e) => WireResponse::Error(WireError::Persist(e.to_string())),
                    },
                };
                self.push_ready(conn_id, id, response);
            }
        }
    }

    fn push_ready(&mut self, conn_id: u64, id: Option<u64>, response: WireResponse) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.pending.push_back(Pending {
                seq,
                id,
                state: PendState::Ready(Box::new(response)),
            });
        }
    }

    fn push_ticket(&mut self, conn_id: u64, id: Option<u64>, ticket: Ticket<D>) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            arm_group(
                std::slice::from_ref(&ticket),
                conn_id,
                seq,
                &self.completion,
            );
            conn.pending.push_back(Pending {
                seq,
                id,
                state: PendState::One(ticket),
            });
        }
    }

    fn push_tickets(&mut self, conn_id: u64, id: Option<u64>, tickets: Vec<Ticket<D>>) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            if tickets.is_empty() {
                conn.pending.push_back(Pending {
                    seq,
                    id,
                    state: PendState::Ready(Box::new(WireResponse::States(Vec::new()))),
                });
                return;
            }
            {
                let _arm_span = dai_trace::span!("rpc.arm", tickets.len());
                arm_group(&tickets, conn_id, seq, &self.completion);
            }
            conn.pending.push_back(Pending {
                seq,
                id,
                state: PendState::Many(tickets),
            });
        }
    }

    fn close_conn(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.remove(&conn_id) else {
            return;
        };
        self.ep.del(conn.fd);
        for session in conn.owned {
            self.engine.close_session(session);
        }
        conn.stream.shutdown();
    }
}

/// Registers the group-completion hook on each ticket: the *last*
/// member to resolve pushes `(conn, seq)` and wakes the loop. Hooks run
/// on engine worker threads and do constant work.
fn arm_group<D>(tickets: &[Ticket<D>], conn_id: u64, seq: u64, completion: &Arc<CompletionQueue>) {
    let remaining = Arc::new(AtomicUsize::new(tickets.len()));
    for ticket in tickets {
        let remaining = Arc::clone(&remaining);
        let completion = Arc::clone(completion);
        ticket.on_ready(move || {
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                completion.push(conn_id, seq);
            }
        });
    }
}

/// Maps a completed engine response onto its wire form. `Loaded`
/// responses register session ownership here — completion time — since
/// the restore runs async to the loop.
fn response_to_wire<D: PersistDomain>(
    result: Result<Response<D>, EngineError>,
    owned: &mut HashSet<SessionId>,
    cache: &mut EncodeCache<D>,
) -> WireResponse {
    match result {
        Err(e) => WireResponse::Error(WireError::from_engine(&e)),
        Ok(Response::State(d)) => WireResponse::State(cache.encode(&d)),
        Ok(Response::Edited(outcome)) => WireResponse::Edited(outcome),
        Ok(Response::Snapshot(snap)) => WireResponse::Snapshot(snap),
        Ok(Response::Saved(outcome)) => WireResponse::Saved(outcome),
        Ok(Response::Loaded { session, outcome }) => {
            owned.insert(session);
            WireResponse::Loaded {
                session: session.0,
                outcome,
            }
        }
        Ok(Response::Stats(stats)) => WireResponse::Stats(*stats),
    }
}

/// Reads whatever the socket has, growing the read buffer. Flags EOF on
/// a clean peer close.
///
/// # Errors
///
/// Transport failures (the connection is then torn down).
fn read_available<D>(conn: &mut Conn<D>) -> std::io::Result<()> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                return Ok(());
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Encodes resolved responses into the write buffer. v4 connections
/// flush any Ready entry (out-of-order completion is the point); v3
/// connections flush strictly in request order. Returns whether any
/// response was encoded.
fn flush_ready<D>(conn: &mut Conn<D>) -> bool {
    let version = conn.wire_version();
    let mut any = false;
    if version >= 4 {
        let mut i = 0;
        while i < conn.pending.len() {
            if matches!(conn.pending[i].state, PendState::Ready(_)) {
                let entry = conn.pending.remove(i).expect("indexed entry");
                let PendState::Ready(response) = entry.state else {
                    unreachable!("matched Ready above")
                };
                encode_response(conn, entry.id, *response);
                any = true;
            } else {
                i += 1;
            }
        }
    } else {
        while matches!(
            conn.pending.front(),
            Some(Pending {
                state: PendState::Ready(_),
                ..
            })
        ) {
            let entry = conn.pending.pop_front().expect("checked front");
            let PendState::Ready(response) = entry.state else {
                unreachable!("matched Ready above")
            };
            encode_response(conn, entry.id, *response);
            any = true;
        }
    }
    any
}

/// Appends one response frame to the connection's write buffer,
/// applying the three response-side guards: the overload hard cap, the
/// oversized-response replacement, and the v3 error downgrade.
fn encode_response<D>(conn: &mut Conn<D>, id: Option<u64>, mut response: WireResponse) {
    let version = conn.wire_version();
    if conn.backlog() > HARD_WRITE_CAP {
        // The peer reads too slowly for the responses it keeps
        // requesting: drop the payload, keep the id answered.
        response = WireResponse::Error(WireError::Overloaded);
    }
    if let WireResponse::Error(e) = response {
        response = WireResponse::Error(e.downgrade_for(version));
    }
    let _encode_span = dai_trace::span!("rpc.encode");
    let mut payload = encode_message(&response);
    if payload.len() > MAX_FRAME_LEN {
        payload = encode_message(&WireResponse::Error(
            WireError::Protocol(format!(
                "response of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame bound",
                payload.len()
            ))
            .downgrade_for(version),
        ));
    }
    let frame_id = (version >= 4).then(|| id.unwrap_or(UNATTRIBUTED_ID));
    dai_persist::frame::write_frame_id(&mut conn.wbuf, TAG_RESPONSE, version, frame_id, &payload);
}

/// Pushes buffered response bytes into the socket until it would block.
/// Returns whether any byte moved.
fn flush_writes<D>(conn: &mut Conn<D>) -> bool {
    let mut any = false;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.wpos += n;
                any = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() && conn.wpos > 0 {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > SOFT_WRITE_CAP {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    any
}

/// Constant-time byte equality: every byte pair is visited regardless
/// of where the first mismatch sits, so response timing does not leak
/// how much of a guessed token matched. Length is folded in rather than
/// early-returned for the same reason.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = (a.len() ^ b.len()) as u8;
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= x ^ y;
    }
    diff == 0
}

fn request_name(r: &WireRequest) -> &'static str {
    match r {
        WireRequest::Hello { .. } => "hello",
        WireRequest::Open { .. } => "open",
        WireRequest::Close { .. } => "close",
        WireRequest::Query { .. } => "query",
        WireRequest::QueryBatch { .. } => "query-batch",
        WireRequest::Sweep { .. } => "sweep",
        WireRequest::Edit { .. } => "edit",
        WireRequest::Snapshot { .. } => "snapshot",
        WireRequest::Save { .. } => "save",
        WireRequest::Load { .. } => "load",
        WireRequest::Stats => "stats",
        WireRequest::Handoff { .. } => "handoff",
        WireRequest::Trace { .. } => "trace",
        WireRequest::Metrics => "metrics",
        WireRequest::Explain { .. } => "explain",
        WireRequest::Subscribe { .. } => "subscribe",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_stream_sets_nodelay_on_both_ends() {
        // The helper runs on accepted server-side streams and dialed
        // client-side streams alike; assert the option actually lands.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dialed = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        assert!(!accepted.nodelay().unwrap(), "fresh socket starts Nagled");
        let server_side = Stream::Tcp(accepted);
        tune_stream(&server_side);
        let Stream::Tcp(accepted) = &server_side else {
            unreachable!()
        };
        assert!(
            accepted.nodelay().unwrap(),
            "accepted stream must be NODELAY"
        );
        drop(dialed);
        // The client constructor path (`Stream::connect`) tunes too.
        let connected = Stream::connect(&Addr::Tcp(addr.to_string())).unwrap();
        let Stream::Tcp(s) = &connected else {
            unreachable!()
        };
        assert!(s.nodelay().unwrap(), "dialed stream must be NODELAY");
    }

    #[test]
    fn constant_time_eq_matches_plain_equality() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"", b""),
            (b"a", b"a"),
            (b"a", b"b"),
            (b"secret", b"secret"),
            (b"secret", b"secret2"),
            (b"", b"x"),
        ];
        for (a, b) in cases {
            assert_eq!(constant_time_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn frame_id_presence_follows_tag_and_version() {
        for (tag, version, want) in [
            (TAG_REQUEST, 4, true),
            (TAG_RESPONSE, 5, true),
            (TAG_REQUEST, 3, false),
            (*b"SESS", 4, false),
        ] {
            let h = FrameHeader {
                tag,
                version,
                len: 0,
            };
            assert_eq!(frame_has_id(&h), want, "{tag:?} v{version}");
        }
    }
}
