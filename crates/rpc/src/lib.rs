//! # dai-rpc — the engine's network front door
//!
//! The paper's demanded-analysis model is interactive by design: a
//! long-lived service answers a client's query/edit stream with
//! incremental, demand-driven work. `dai-engine` already speaks that
//! shape in-process; this crate puts it behind a wire protocol so the
//! same engine serves IDE-like clients over TCP or Unix sockets:
//!
//! * [`proto`] — the versioned, **domain-erased** message set
//!   ([`WireRequest`]/[`WireResponse`]/[`WireError`]): abstract states
//!   travel as opaque [`Persist`]-encoded blobs, the domain is *named*
//!   (once, in the hello exchange) rather than baked into the types, and
//!   every message is one `dai_persist::frame` frame — the identical
//!   tag/version/length/checksum layout snapshot sections use on disk;
//! * [`server`] — one [`dai_engine::Engine`], many connections, **one
//!   event loop**: nonblocking sockets behind a hand-rolled epoll loop,
//!   per-connection bounded buffers (slow readers stall or get a
//!   structured `overload` error, never unbounded memory), decoded
//!   queries dispatched as engine tickets whose completions wake the
//!   loop — so one connection can pipeline many requests (protocol ≥ 4
//!   frames carry ids; responses may complete out of order), and
//!   adjacent same-function query frames coalesce into one engine batch.
//!   Sessions are owned per connection (closed on disconnect) with
//!   explicit handoff, and a sweep frame lands in
//!   `Engine::submit_query_sweep`, so query coalescing and edit/load
//!   fencing survive the wire;
//! * [`client`] — a typed blocking [`Client<D>`] implementing the same
//!   [`dai_engine::Service`] trait as the engine itself: swap
//!   `&Engine<D>` for `&Client<D>` and code runs remotely. Protocol
//!   negotiation (a v4 client downshifts to a v3 server by
//!   reconnecting), hello auth tokens, and id-matched pipelining
//!   ([`Client::pipeline_queries`]) live here;
//! * [`replica`] — streaming replication: a [`Replica`] tails a
//!   leader's `dai-journal` over [`Client::subscribe`] (the journal's
//!   disk format *is* the wire format) and applies it into a local
//!   follower engine whose replicated sessions are read-only — a
//!   lagging follower is simply the leader as of an earlier frame, so
//!   its answers are sound (see `crates/journal/README.md`);
//! * [`router`] — session sharding: a [`Router`] is a third [`Service`]
//!   implementor that consistent-hashes session names across N
//!   [`ShardBackend`]s (engines or clients), forwards every call to the
//!   owning shard, counts routed query members per shard, and migrates
//!   sessions live between shards via save → release → close → load.
//!
//! The wire protocol (frame layout, version negotiation, error codes) is
//! documented in `crates/rpc/README.md`.
//!
//! ## Quickstart
//!
//! ```
//! use dai_engine::{Engine, Service};
//! use dai_domains::IntervalDomain;
//! use dai_rpc::{Addr, Client, Server};
//! use std::sync::Arc;
//!
//! let engine: Arc<Engine<IntervalDomain>> = Arc::new(Engine::new(1));
//! let server = Server::bind(&Addr::Tcp("127.0.0.1:0".into()), Arc::clone(&engine))?;
//! let client: Client<IntervalDomain> = Client::connect(&server.addr().to_string())?;
//! let session = client.open("demo", "function main() { var x = 1; return x; }")?;
//! let exit = engine.program_of(session)?.by_name("main").unwrap().exit();
//! let state = client.query(session, "main", exit)?;
//! assert!(state.interval_of("x").contains(1));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod proto;
pub mod replica;
pub mod router;
pub mod server;

pub use client::{Client, ClientOptions, StreamBatch};
pub use proto::{
    WireError, WireRequest, WireResponse, WireState, MAX_FRAME_LEN, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION, TAG_REQUEST, TAG_RESPONSE,
};
pub use replica::{Replica, SyncOutcome, DEFAULT_PULL_BATCH};
pub use router::{Router, ShardBackend};
pub use server::{Addr, Server, ServerConfig};

#[allow(unused_imports)]
use dai_persist::Persist; // referenced by crate docs
