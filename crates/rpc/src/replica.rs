//! Streaming replication: a follower engine that tails a leader's
//! journal over the wire and serves read-only queries from the
//! replicated state.
//!
//! A [`Replica`] pairs a [`Client`] connection to the leader with a
//! local follower [`Engine`]. It pulls journal frames with
//! [`Client::subscribe`] — the frames travel **byte-for-byte** as they
//! sit on the leader's disk (`dai-journal`'s disk format is the wire
//! format) — decodes them with `dai_journal::replay_bytes`, and applies
//! each entry into the follower via
//! [`Engine::apply_journal_entry`] with `replica = true`, so every
//! replicated session is **read-only**: a direct edit against the
//! follower answers [`dai_engine::EngineError::ReadOnly`], and the only
//! write path is the replication stream itself.
//!
//! ## Why a lagging replica is sound
//!
//! The journal orders whole edits, so every prefix of it is a program
//! state the leader actually passed through. A follower that has
//! applied `k` of `n` frames is therefore not *wrong* — it is the
//! leader as of frame `k`, and demanded evaluation against that state
//! answers exactly what the leader would have answered then (the
//! from-scratch-consistency argument of Stein et al., *Demanded
//! Abstract Interpretation*, PLDI 2021, Theorems 6.1–6.3: results agree
//! with a batch analysis of the current program, whichever program that
//! is). Catching up never requires invalidation beyond what the edits
//! themselves demand.
//!
//! Lag is observable: [`Replica::sync_batch`] sets the
//! `dai_replica_lag_frames` gauge to `head_seq - applied_seq` after
//! every pull, and each applied entry is timed into the
//! `dai_replica_apply_seconds` histogram.

use dai_engine::{Engine, EngineError, JournalEntry};
use dai_journal::replay_bytes;
use dai_persist::PersistDomain;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::client::{Client, StreamBatch};

/// Default frames-per-pull bound for [`Replica::catch_up`].
pub const DEFAULT_PULL_BATCH: u32 = 256;

/// What one [`Replica::sync_batch`] pull did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Entries applied into the follower by this pull.
    pub applied: u64,
    /// The leader's journal head when the batch was cut.
    pub head_seq: u64,
    /// The follower's cursor after applying (last applied sequence).
    pub applied_seq: u64,
    /// Frames the follower still trails the leader by
    /// (`head_seq - applied_seq`, saturating).
    pub lag: u64,
}

/// A follower: one leader connection, one local engine applying the
/// replicated journal, serving read-only queries.
pub struct Replica<D: PersistDomain> {
    client: Client<D>,
    engine: Arc<Engine<D>>,
    /// Last applied journal sequence number (the subscribe cursor).
    cursor: AtomicU64,
}

impl<D: PersistDomain> Replica<D> {
    /// Wraps an established leader connection and a follower engine.
    /// The cursor starts at 0, so the first pull replays from genesis —
    /// hand a *fresh* engine in, or one whose sessions the stream's
    /// snapshot frames may overwrite.
    pub fn new(client: Client<D>, engine: Arc<Engine<D>>) -> Replica<D> {
        Replica {
            client,
            engine,
            cursor: AtomicU64::new(0),
        }
    }

    /// Connects to the leader at `addr` and wraps a fresh follower
    /// engine with `workers` workers.
    ///
    /// # Errors
    ///
    /// Connection failures, as [`Client::connect`].
    pub fn connect(addr: &str, workers: usize) -> Result<Replica<D>, EngineError> {
        let client = Client::connect(addr)?;
        Ok(Replica::new(client, Arc::new(Engine::new(workers))))
    }

    /// The follower engine — query it directly (it implements
    /// [`dai_engine::Service`]); replicated sessions reject edits with
    /// [`EngineError::ReadOnly`].
    pub fn engine(&self) -> &Arc<Engine<D>> {
        &self.engine
    }

    /// The leader connection.
    pub fn client(&self) -> &Client<D> {
        &self.client
    }

    /// Last applied journal sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Pulls one batch of at most `max` frames past the cursor and
    /// applies it. Updates the `dai_replica_lag_frames` gauge and times
    /// each entry into `dai_replica_apply_seconds`.
    ///
    /// # Errors
    ///
    /// Transport failures, a leader without a journal (`rejected`, kind
    /// `no-journal`), a damaged frame in the stream (`Persist` — the
    /// wire is checksummed per message, so this indicates leader-side
    /// corruption), or an entry the follower cannot apply.
    pub fn sync_batch(&self, max: u32) -> Result<SyncOutcome, EngineError> {
        let after = self.applied_seq();
        let batch = self.client.subscribe(after, max)?;
        self.apply_stream(&batch)
    }

    /// Applies an already-pulled [`StreamBatch`] (exposed so tests can
    /// inject hand-cut batches).
    ///
    /// # Errors
    ///
    /// As [`Replica::sync_batch`].
    pub fn apply_stream(&self, batch: &StreamBatch) -> Result<SyncOutcome, EngineError> {
        let replay = replay_bytes(&batch.frames);
        if replay.damaged_len > 0 {
            return Err(EngineError::Persist(dai_persist::PersistError::Corrupt(
                format!(
                    "replication stream carries {} damaged trailing bytes",
                    replay.damaged_len
                ),
            )));
        }
        let hist = dai_trace::metrics().histogram("dai_replica_apply_seconds");
        let mut applied = 0u64;
        let mut cursor = self.applied_seq();
        for entry in &replay.entries {
            if entry.seq <= cursor {
                // Snapshot-compaction renumbers above the old head, so
                // sequences only grow; an overlap means the leader
                // re-sent frames we already hold. Skip, don't re-apply.
                continue;
            }
            let t0 = std::time::Instant::now();
            self.apply_entry(entry)?;
            hist.observe_ns(t0.elapsed().as_nanos() as u64);
            cursor = entry.seq;
            applied += 1;
        }
        self.cursor.store(cursor, Ordering::Release);
        let lag = batch.head_seq.saturating_sub(cursor);
        dai_trace::metrics()
            .gauge("dai_replica_lag_frames")
            .set(lag);
        Ok(SyncOutcome {
            applied,
            head_seq: batch.head_seq,
            applied_seq: cursor,
            lag,
        })
    }

    fn apply_entry(&self, entry: &JournalEntry) -> Result<(), EngineError> {
        self.engine.apply_journal_entry(entry, true)
    }

    /// Pulls until the follower has caught up with the leader's head as
    /// of the final pull (`lag == 0`). Returns the total entries
    /// applied.
    ///
    /// # Errors
    ///
    /// As [`Replica::sync_batch`].
    pub fn catch_up(&self) -> Result<u64, EngineError> {
        let mut total = 0u64;
        loop {
            let outcome = self.sync_batch(DEFAULT_PULL_BATCH)?;
            total += outcome.applied;
            if outcome.lag == 0 {
                return Ok(total);
            }
            if outcome.applied == 0 {
                // Lag without progress: the leader's head moved past
                // frames it no longer serves (it should never happen —
                // compaction renumbers *forward* — but never spin).
                return Err(EngineError::Remote {
                    code: "protocol",
                    message: format!(
                        "leader reports head {} but serves no frame past {}",
                        outcome.head_seq, outcome.applied_seq
                    ),
                });
            }
        }
    }
}
