//! Scratch RTT floor measurement (not part of CI).
use dai_domains::OctagonDomain;
use dai_engine::{Engine, Service};
use dai_rpc::{Addr, Client, Server};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let engine: Arc<Engine<OctagonDomain>> = Arc::new(Engine::new(1));
    let path = std::env::temp_dir().join(format!("dai-rtt-{}.sock", std::process::id()));
    let server = Server::bind(&Addr::Unix(path.to_string_lossy().into_owned()), engine).unwrap();
    let client: Client<OctagonDomain> = Client::connect(&server.addr().to_string()).unwrap();
    // Warm up.
    for _ in 0..100 {
        client.stats().unwrap();
    }
    let reps = 2000u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(client.stats().unwrap());
    }
    println!("stats RTT: {:?}", t0.elapsed() / reps);
    // An engine-ticketed request (goes through submit + completion queue
    // + waker), unlike stats? stats also goes through submit. Compare
    // with a session-table request answered inline:
    let session = client.open("rtt", "function f() { return 1; }").unwrap();
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(client.query(session, "f", dai_lang::Loc(0)).ok());
    }
    println!("single query RTT: {:?}", t0.elapsed() / reps);
    server.shutdown();
}
