//! Scratch span-level profile of one warm socket sweep (not part of CI).
use dai_bench::workload::Workload;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, Service};
use dai_lang::Loc;
use dai_rpc::{Addr, Client, Server};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let source = Workload::initial_source();
    let engine: Arc<Engine<OctagonDomain>> = Arc::new(Engine::new(1));
    let path = std::env::temp_dir().join(format!("dai-sweep-trace-{}.sock", std::process::id()));
    let server = Server::bind(
        &Addr::Unix(path.to_string_lossy().into_owned()),
        Arc::clone(&engine),
    )
    .unwrap();
    let client: Client<OctagonDomain> = Client::connect(&server.addr().to_string()).unwrap();
    let session = client.open("trace", &source).unwrap();
    let mut gen = Workload::new(379422);
    for _ in 0..40 {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        client.edit(session, &edit).unwrap();
    }
    let program = engine.program_of(session).unwrap();
    let mut targets: Vec<(String, Loc)> = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    // Cold + warmup sweeps.
    for _ in 0..20 {
        let _ = client.query_sweep(session, &targets);
    }
    // Traced warm sweeps.
    engine.set_tracing(true);
    let reps = 50u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(client.query_sweep(session, &targets));
    }
    let wall = t0.elapsed() / reps;
    engine.set_tracing(false);
    let dump = engine.drain_trace();
    let mut agg: HashMap<String, (u64, u64)> = HashMap::new();
    for r in &dump.records {
        let label = dump.labels[r.label as usize].clone();
        let e = agg.entry(label).or_default();
        e.0 += 1;
        e.1 += r.end_ns.saturating_sub(r.start_ns);
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    rows.sort_by_key(|(_, (_, ns))| std::cmp::Reverse(*ns));
    println!("wall per sweep: {wall:?} over {reps} sweeps");
    for (label, (count, ns)) in rows.iter().take(15) {
        println!(
            "{label:>28}: {:>8.2}µs/sweep  ({} spans)",
            *ns as f64 / 1000.0 / f64::from(reps),
            count
        );
    }
    server.shutdown();
}
