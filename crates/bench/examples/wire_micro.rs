//! Scratch micro-profiler for the RPC wire path (not part of CI).
use dai_bench::workload::Workload;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, Service};
use dai_lang::Loc;
use dai_persist::{checksum_with, Writer};
use dai_rpc::proto::{decode_message, encode_message};
use dai_rpc::{WireResponse, WireState};
use std::time::Instant;

fn main() {
    let source = Workload::initial_source();
    let engine: Engine<OctagonDomain> = Engine::new(1);
    let session = engine.open_session_src("micro", &source).unwrap();
    let mut gen = Workload::new(379422);
    for _ in 0..40 {
        let program = engine.program_of(session).unwrap();
        let edit = gen.next_edit(&program);
        Service::<OctagonDomain>::edit(&engine, session, &edit).unwrap();
    }
    let program = engine.program_of(session).unwrap();
    let mut targets: Vec<(String, Loc)> = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    let answers: Vec<OctagonDomain> = engine
        .query_sweep(session, &targets)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    println!("{} answers", answers.len());

    let reps = 200u32;
    let t0 = Instant::now();
    let mut total = 0usize;
    for _ in 0..reps {
        let states: Vec<Result<WireState, dai_rpc::WireError>> =
            answers.iter().map(|d| Ok(WireState::encode(d))).collect();
        total = states.iter().map(|s| s.as_ref().unwrap().0.len()).sum();
        std::hint::black_box(&states);
    }
    println!(
        "encode states: {:?}/sweep, {} bytes",
        t0.elapsed() / reps,
        total
    );

    let states: Vec<Result<WireState, dai_rpc::WireError>> =
        answers.iter().map(|d| Ok(WireState::encode(d))).collect();
    let response = WireResponse::States(states);

    let t0 = Instant::now();
    let mut payload = Vec::new();
    for _ in 0..reps {
        payload = encode_message(&response);
        std::hint::black_box(&payload);
    }
    println!(
        "encode response msg: {:?}/sweep, {} bytes",
        t0.elapsed() / reps,
        payload.len()
    );

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(checksum_with(&payload, Some(7)));
    }
    println!("checksum: {:?}/sweep", t0.elapsed() / reps);

    let t0 = Instant::now();
    for _ in 0..reps {
        let r: WireResponse = decode_message(&payload).unwrap();
        std::hint::black_box(&r);
    }
    println!("decode response msg: {:?}/sweep", t0.elapsed() / reps);

    let decoded: WireResponse = decode_message(&payload).unwrap();
    let WireResponse::States(states) = &decoded else {
        unreachable!()
    };
    let t0 = Instant::now();
    for _ in 0..reps {
        let ds: Vec<OctagonDomain> = states
            .iter()
            .map(|s| s.as_ref().unwrap().decode().unwrap())
            .collect();
        std::hint::black_box(&ds);
    }
    println!("decode states: {:?}/sweep", t0.elapsed() / reps);

    let dbm: Vec<i64> = (0..21_000).map(|i| i as i64).collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut w = Writer::new();
        for &c in &dbm {
            w.i64(c);
        }
        std::hint::black_box(&w);
    }
    println!("raw 21k i64 put loop: {:?}", t0.elapsed() / reps);

    let req = dai_rpc::WireRequest::Sweep {
        session: 1,
        targets: targets.clone(),
    };
    let t0 = Instant::now();
    for _ in 0..reps {
        let p = encode_message(&req);
        let r: dai_rpc::WireRequest = decode_message(&p).unwrap();
        std::hint::black_box(&r);
    }
    println!("request roundtrip: {:?}/sweep", t0.elapsed() / reps);

    // Duplicate analysis: how many distinct blobs does one sweep carry?
    let mut distinct: Vec<&[u8]> = Vec::new();
    let mut dup = 0usize;
    let mut prev_dup = 0usize;
    let all: Vec<WireState> = answers.iter().map(WireState::encode).collect();
    for (i, s) in all.iter().enumerate() {
        if i > 0 && all[i - 1].0 == s.0 {
            prev_dup += 1;
        }
        if distinct.contains(&s.0.as_slice()) {
            dup += 1;
        } else {
            distinct.push(&s.0);
        }
    }
    println!(
        "{} blobs: {} distinct, {} dups ({} equal to immediate predecessor)",
        all.len(),
        distinct.len(),
        dup,
        prev_dup
    );

    // Entry distribution across all answer DBMs.
    let (mut inf, mut small, mut zero, mut big, mut total_e) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for a in &answers {
        if let OctagonDomain::Oct(o) = a {
            for &c in o.dbm() {
                total_e += 1;
                if c == i64::MAX {
                    inf += 1;
                } else if c == 0 {
                    zero += 1;
                } else if (-120..=120).contains(&c) {
                    small += 1;
                } else {
                    big += 1;
                }
            }
        }
    }
    println!(
        "dbm entries: {total_e} total, {inf} INF, {zero} zero, {small} small(+-120), {big} big"
    );
}
