//! Criterion micro-benchmarks for core DAIG operations: initial
//! construction, demand-driven queries (cold and warm), edit dirtying and
//! re-query, and demanded unrolling — the ablation set for the design
//! choices called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::IntervalDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::{parse_block, parse_program};
use dai_lang::Stmt;
use dai_memo::MemoTable;
use std::hint::black_box;

/// A mid-sized function: straight-line arithmetic, branches, and loops.
fn subject_src(chain: usize) -> String {
    let mut body = String::from("var x = 0; var y = 1;\n");
    for i in 0..chain {
        body.push_str(&format!("x = x + {};\n", i % 7));
        if i % 10 == 5 {
            body.push_str("if (x > 50) { y = y + 1; } else { y = y - 1; }\n");
        }
        if i % 25 == 20 {
            body.push_str("var j = 0; while (j < 10) { j = j + 1; }\n");
        }
    }
    body.push_str("return x + y;\n");
    format!("function f() {{ {body} }}")
}

fn subject(chain: usize) -> FuncAnalysis<IntervalDomain> {
    let cfg = lower_program(&parse_program(&subject_src(chain)).unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    FuncAnalysis::new(cfg, IntervalDomain::top())
}

fn bench_construction(c: &mut Criterion) {
    let cfg = lower_program(&parse_program(&subject_src(200)).unwrap())
        .unwrap()
        .cfgs()[0]
        .clone();
    c.bench_function("daig/initial_construction_200", |b| {
        b.iter(|| {
            black_box(dai_core::build::initial_daig::<IntervalDomain>(
                &cfg,
                IntervalDomain::top(),
            ))
        })
    });
}

fn bench_query_cold_vs_warm(c: &mut Criterion) {
    c.bench_function("daig/query_cold_200", |b| {
        b.iter_batched(
            || (subject(200), MemoTable::new()),
            |(mut fa, mut memo)| {
                let mut stats = QueryStats::default();
                black_box(
                    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                        .unwrap(),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("daig/query_warm_200", |b| {
        let mut fa = subject(200);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        b.iter(|| {
            let mut stats = QueryStats::default();
            black_box(
                fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                    .unwrap(),
            )
        })
    });
    // Warm memo table, cold cells: the Q-Match path.
    c.bench_function("daig/query_memo_match_200", |b| {
        let mut warm_memo = MemoTable::new();
        {
            let mut fa = subject(200);
            let mut stats = QueryStats::default();
            fa.query_exit(&mut warm_memo, &mut IntraResolver, &mut stats)
                .unwrap();
        }
        b.iter_batched(
            || (subject(200), warm_memo.clone()),
            |(mut fa, mut memo)| {
                let mut stats = QueryStats::default();
                black_box(
                    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                        .unwrap(),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_edit_and_requery(c: &mut Criterion) {
    c.bench_function("daig/relabel_dirty_requery_200", |b| {
        let mut fa = subject(200);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        // Relabel an edge near the end: small dirty region.
        let edge = fa
            .cfg()
            .edges()
            .filter(|e| e.stmt.to_string().starts_with("x = x +"))
            .last()
            .unwrap()
            .id;
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let k = if flip { 3 } else { 4 };
            fa.relabel(
                edge,
                Stmt::Assign(
                    "x".into(),
                    dai_lang::parse_expr(&format!("x + {k}")).unwrap(),
                ),
            )
            .unwrap();
            let mut stats = QueryStats::default();
            black_box(
                fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                    .unwrap(),
            )
        })
    });
    c.bench_function("daig/splice_dirty_requery_200", |b| {
        let mut fa = subject(200);
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .unwrap();
        let block = parse_block("y = y + 1;").unwrap();
        b.iter(|| {
            let edge = fa
                .cfg()
                .edges()
                .find(|e| e.stmt.to_string().contains("__ret"))
                .unwrap()
                .id;
            fa.splice(edge, &block).unwrap();
            let mut stats = QueryStats::default();
            black_box(
                fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                    .unwrap(),
            )
        })
    });
}

fn bench_demanded_unrolling(c: &mut Criterion) {
    // A loop whose analysis needs several abstract iterations before
    // widening converges: measures unroll cost.
    let src =
        "function f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }";
    let cfg = lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone();
    c.bench_function("daig/loop_fixpoint_with_unrolling", |b| {
        b.iter_batched(
            || FuncAnalysis::new(cfg.clone(), IntervalDomain::top()),
            |mut fa| {
                let mut memo = MemoTable::new();
                let mut stats = QueryStats::default();
                black_box(
                    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                        .unwrap(),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_construction,
    bench_query_cold_vs_warm,
    bench_edit_and_requery,
    bench_demanded_unrolling
);
criterion_main!(benches);
