//! Ablation benchmarks for the session's extension features:
//!
//! * **Widening-delay sweep** — demanded fixed-point cost as a function of
//!   `FixStrategy::widen_delay` (precision is paid for in unrollings;
//!   footnote 4's "other widening strategies");
//! * **Convergence mode** — `=` vs `⊑` convergence checking on loops;
//! * **Memo capacity sweep** — warm re-analysis cost vs the memo table's
//!   capacity bound, quantifying the paper's §2.2 memory/reuse trade
//!   ("sound to drop cached results … trading efficiency of reuse for a
//!   lower memory footprint");
//! * **Interprocedural policy** — call-string contexts vs functional
//!   (entry-keyed summary) analysis on a call-heavy program, including
//!   the incremental re-query after a leaf edit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dai_core::analysis::FuncAnalysis;
use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::strategy::{Convergence, FixStrategy};
use dai_core::summaries::SummaryAnalyzer;
use dai_domains::IntervalDomain;
use dai_lang::cfg::{lower_program, Cfg, LoweredProgram};
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;
use std::hint::black_box;

/// A function with several bounded loops (trip counts 10/20/30), where the
/// widening delay visibly trades unrollings for precision.
fn loopy_cfg() -> Cfg {
    let src = "function f(n) {
        var a = 0; var b = 0; var c = 0;
        while (a < 10) { a = a + 1; }
        while (b < 20) { b = b + 1; }
        while (c < 30) { c = c + 1; }
        return a + b + c;
    }";
    lower_program(&parse_program(src).unwrap()).unwrap().cfgs()[0].clone()
}

fn bench_widen_delay_sweep(c: &mut Criterion) {
    let cfg = loopy_cfg();
    let mut group = c.benchmark_group("ablation/widen_delay");
    for delay in [0u32, 2, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(delay), &delay, |b, &delay| {
            b.iter(|| {
                let mut fa = FuncAnalysis::with_strategy(
                    cfg.clone(),
                    IntervalDomain::top(),
                    FixStrategy::delayed(delay),
                );
                let mut memo = MemoTable::new();
                let mut stats = QueryStats::default();
                black_box(
                    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_convergence_mode(c: &mut Criterion) {
    let cfg = loopy_cfg();
    let mut group = c.benchmark_group("ablation/convergence");
    for (label, mode) in [("equal", Convergence::Equal), ("leq", Convergence::Leq)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut fa = FuncAnalysis::with_strategy(
                    cfg.clone(),
                    IntervalDomain::top(),
                    FixStrategy::PAPER.with_convergence(mode),
                );
                let mut memo = MemoTable::new();
                let mut stats = QueryStats::default();
                black_box(
                    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Warm-memo re-analysis: dirty everything, re-query with a memo table
/// that survived — the capacity bound decides how much `Q-Match` can
/// recover (at the limit, a fresh table every time = pure recompute).
fn bench_memo_capacity_sweep(c: &mut Criterion) {
    let cfg = loopy_cfg();
    let mut group = c.benchmark_group("ablation/memo_capacity");
    let capacities: [(&str, Option<usize>); 4] = [
        ("unbounded", None),
        ("1024", Some(1024)),
        ("64", Some(64)),
        ("4", Some(4)),
    ];
    for (label, cap) in capacities {
        group.bench_function(label, |b| {
            let mut fa = FuncAnalysis::new(cfg.clone(), IntervalDomain::top());
            let mut memo = match cap {
                None => MemoTable::new(),
                Some(k) => MemoTable::with_capacity_limit(k),
            };
            // Prime the table once.
            let mut stats = QueryStats::default();
            fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                .unwrap();
            b.iter(|| {
                fa.dirty_everything();
                let mut stats = QueryStats::default();
                black_box(
                    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// A call-heavy program: three layers of helpers, each called from
/// several sites with a mix of repeated and distinct constant arguments
/// (so summaries get both hits and misses).
fn call_heavy_program() -> LoweredProgram {
    let src = r#"
        function leaf(z) { var t = 0; while (t < z) { t = t + 1; } return t; }
        function mid(y) { var a = leaf(y); var b = leaf(5); return a + b; }
        function top_(x) { var a = mid(x); var b = mid(7); return a + b; }
        function main() {
            var r0 = top_(3);
            var r1 = top_(3);
            var r2 = top_(9);
            var r3 = mid(7);
            var r4 = leaf(5);
            return r0 + r1 + r2 + r3 + r4;
        }
    "#;
    lower_program(&parse_program(src).unwrap()).unwrap()
}

fn bench_interproc_policy(c: &mut Criterion) {
    let program = call_heavy_program();
    let exit = program.by_name("main").unwrap().exit();
    let mut group = c.benchmark_group("ablation/interproc");
    for (label, policy) in [
        ("insensitive", ContextPolicy::Insensitive),
        ("1cs", ContextPolicy::CallString(1)),
        ("2cs", ContextPolicy::CallString(2)),
    ] {
        group.bench_function(format!("callstring_{label}"), |b| {
            b.iter(|| {
                let mut an = InterAnalyzer::<IntervalDomain>::new(
                    program.clone(),
                    policy,
                    "main",
                    IntervalDomain::top(),
                );
                black_box(an.query_joined("main", exit).unwrap())
            })
        });
    }
    group.bench_function("functional", |b| {
        b.iter(|| {
            let mut an = SummaryAnalyzer::<IntervalDomain>::new(
                program.clone(),
                "main",
                IntervalDomain::top(),
            );
            black_box(an.query_joined("main", exit).unwrap())
        })
    });
    group.finish();
}

/// Incremental re-query after editing the leaf procedure: the functional
/// analyzer drops only the summaries that can observe the edit, while the
/// call-string layer conservatively resets callee entries.
fn bench_interproc_edit_requery(c: &mut Criterion) {
    let program = call_heavy_program();
    let exit = program.by_name("main").unwrap().exit();
    let leaf_ret = program
        .by_name("leaf")
        .unwrap()
        .edges()
        .find(|e| e.stmt.to_string().contains("__ret"))
        .unwrap()
        .id;
    let alt = |k: u64| {
        dai_lang::Stmt::Assign(
            dai_lang::RETURN_VAR.into(),
            dai_lang::parse_expr(&format!("t + {k}")).unwrap(),
        )
    };
    let mut group = c.benchmark_group("ablation/interproc_edit");
    group.bench_function("callstring_2cs", |b| {
        let mut an = InterAnalyzer::<IntervalDomain>::new(
            program.clone(),
            ContextPolicy::CallString(2),
            "main",
            IntervalDomain::top(),
        );
        let _ = an.query_joined("main", exit).unwrap();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            an.relabel("leaf", leaf_ret, alt(k % 17)).unwrap();
            black_box(an.query_joined("main", exit).unwrap())
        })
    });
    group.bench_function("functional", |b| {
        let mut an =
            SummaryAnalyzer::<IntervalDomain>::new(program.clone(), "main", IntervalDomain::top());
        let _ = an.query_joined("main", exit).unwrap();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            an.relabel("leaf", leaf_ret, alt(k % 17)).unwrap();
            black_box(an.query_joined("main", exit).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_widen_delay_sweep,
    bench_convergence_mode,
    bench_memo_capacity_sweep,
    bench_interproc_policy,
    bench_interproc_edit_requery,
);
criterion_main!(benches);
