//! Bench target: `dai-engine` throughput at 1/2/4/8 workers on the §7.3
//! workload. Handwritten harness (criterion's per-closure timing model
//! does not fit a whole-engine sweep): each worker count is measured once
//! over the identical query load and reported as queries/second with the
//! speedup relative to one worker. Use the `engine_scaling` *binary* to
//! record a `BENCH_engine.json` baseline.

use dai_bench::engine_scaling::{format_points, run_scaling, ScalingParams};

fn main() {
    let params = ScalingParams::default();
    let run = run_scaling(&params);
    println!("host_cpus: {}", run.host_cpus);
    print!("{}", format_points(&run.points));
}
