//! Criterion micro-benchmarks for the three abstract domains' operator
//! costs (transfer, join, widen, equality) — the constants that determine
//! the absolute analysis latencies in Fig. 10.

use criterion::{criterion_group, criterion_main, Criterion};
use dai_domains::{AbstractDomain, IntervalDomain, OctagonDomain, ShapeDomain};
use dai_lang::{parse_expr, Stmt};
use std::hint::black_box;

fn interval_states() -> (IntervalDomain, IntervalDomain) {
    let mut a = IntervalDomain::top();
    let mut b = IntervalDomain::top();
    for i in 0..12 {
        a = a.transfer(&Stmt::Assign(
            format!("v{i}").into(),
            parse_expr(&format!("{i} * 3")).unwrap(),
        ));
        b = b.transfer(&Stmt::Assign(
            format!("v{i}").into(),
            parse_expr(&format!("{i} + 100")).unwrap(),
        ));
    }
    (a, b)
}

fn octagon_states() -> (OctagonDomain, OctagonDomain) {
    let mut a = OctagonDomain::top();
    let mut b = OctagonDomain::top();
    for i in 0..10 {
        a = a.transfer(&Stmt::Assign(
            format!("v{i}").into(),
            parse_expr(&format!("v{} + {i}", i.max(1) - 1)).unwrap(),
        ));
        b = b.transfer(&Stmt::Assign(
            format!("v{i}").into(),
            parse_expr("7").unwrap(),
        ));
    }
    (a, b)
}

fn shape_states() -> (ShapeDomain, ShapeDomain) {
    let a = ShapeDomain::with_lists(&["p", "q"]);
    let b = a
        .transfer(&Stmt::Assume(parse_expr("p != null").unwrap()))
        .transfer(&Stmt::Assign("r".into(), parse_expr("p.next").unwrap()));
    (a, b)
}

fn bench_interval(c: &mut Criterion) {
    let (a, b) = interval_states();
    let stmt = Stmt::Assign("x".into(), parse_expr("v3 * v4 + 2").unwrap());
    c.bench_function("domain/interval/transfer", |bch| {
        bch.iter(|| black_box(a.transfer(&stmt)))
    });
    c.bench_function("domain/interval/join", |bch| {
        bch.iter(|| black_box(a.join(&b)))
    });
    c.bench_function("domain/interval/widen", |bch| {
        bch.iter(|| black_box(a.widen(&b)))
    });
    c.bench_function("domain/interval/eq", |bch| bch.iter(|| black_box(a == b)));
}

fn bench_octagon(c: &mut Criterion) {
    let (a, b) = octagon_states();
    let stmt = Stmt::Assign("x".into(), parse_expr("v3 + 1").unwrap());
    let guard = Stmt::Assume(parse_expr("v2 < v5").unwrap());
    c.bench_function("domain/octagon/transfer_linear", |bch| {
        bch.iter(|| black_box(a.transfer(&stmt)))
    });
    c.bench_function("domain/octagon/assume_relational", |bch| {
        bch.iter(|| black_box(a.transfer(&guard)))
    });
    c.bench_function("domain/octagon/join_with_closure", |bch| {
        bch.iter(|| black_box(a.join(&b)))
    });
    c.bench_function("domain/octagon/widen", |bch| {
        bch.iter(|| black_box(a.widen(&b)))
    });
}

fn bench_shape(c: &mut Criterion) {
    let (a, b) = shape_states();
    let guard = Stmt::Assume(parse_expr("p.next != null").unwrap());
    c.bench_function("domain/shape/materializing_assume", |bch| {
        bch.iter(|| black_box(a.transfer(&guard)))
    });
    c.bench_function("domain/shape/join", |bch| {
        bch.iter(|| black_box(a.join(&b)))
    });
    c.bench_function("domain/shape/widen_canonicalize", |bch| {
        bch.iter(|| black_box(a.widen(&b)))
    });
}

criterion_group!(benches, bench_interval, bench_octagon, bench_shape);
criterion_main!(benches);
