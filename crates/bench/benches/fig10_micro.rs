//! A Criterion-sized slice of the Fig. 10 workload: per-configuration
//! cost of one edit + five queries on a grown program. The full figure is
//! produced by the `fig10` binary; this bench tracks regressions in the
//! four configurations' relative costs.

use criterion::{criterion_group, criterion_main, Criterion};
use dai_bench::workload::Workload;
use dai_core::driver::{Config, Driver};
use dai_core::interproc::ContextPolicy;
use dai_domains::OctagonDomain;
use std::hint::black_box;

/// Grows a program with `n` edits under the cheapest configuration, then
/// returns the edit stream state for measurement.
fn grown_driver(config: Config, grow: usize, seed: u64) -> (Driver<OctagonDomain>, Workload) {
    let mut driver = Driver::new(
        config,
        Workload::initial_program(),
        ContextPolicy::Insensitive,
        "main",
        OctagonDomain::top(),
    );
    let mut gen = Workload::new(seed);
    for _ in 0..grow {
        let edit = gen.next_edit(driver.analyzer().program());
        driver.apply_edit(&edit).expect("edit applies");
        // Demand-driven configs answer queries between edits.
        for (f, loc) in gen.next_queries(driver.analyzer().program(), 2) {
            let _ = driver.query(f.as_str(), loc).expect("query succeeds");
        }
    }
    (driver, gen)
}

fn bench_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_micro/edit_plus_queries");
    group.sample_size(10);
    for config in Config::ALL {
        group.bench_function(config.label(), |b| {
            let (mut driver, mut gen) = grown_driver(config, 40, 0xF16);
            b.iter(|| {
                let edit = gen.next_edit(driver.analyzer().program());
                driver.apply_edit(&edit).expect("edit applies");
                for (f, loc) in gen.next_queries(driver.analyzer().program(), 5) {
                    black_box(driver.query(f.as_str(), loc).expect("query succeeds"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
