//! The §7.2 interval / context-sensitivity experiment.
//!
//! The paper validates its APRON-backed interval analysis on 23
//! array-manipulating functions from the Buckets.js test suite
//! (`contains`, `equals`, `swap`, `indexOf`, …), checking the safety of
//! every array access under three context policies:
//!
//! > "Using the 2-call-string-sensitive context policy, our analysis
//! > verified the safety of all 85 array accesses in the programs; with
//! > 1-call-string-sensitivity, it verified 71/74 (96%), and with
//! > context-insensitive analysis it verified 4/18 (22%)."
//!
//! This module ports the same workload *shape* to `dai-lang`: a library of
//! array functions exercised by a test driver (`main`) that calls each
//! function several times with arrays of different lengths — exactly the
//! structure of a data-structure library's test suite. Context
//! sensitivity then decides precision:
//!
//! * **k = 0** joins every test's arrays at a library function's entry, so
//!   only accesses with caller-independent bounds verify (a handful);
//! * **k = 1** separates test call sites, verifying direct accesses, but
//!   still joins flows through the shared `get`/`set` accessors reached
//!   from multiply-called library functions (a few failures);
//! * **k = 2** distinguishes those two-deep chains as well and verifies
//!   everything.
//!
//! Absolute counts differ from the paper's (different corpus), but the
//! precision gradient — and the context-multiplication of the access count
//! (the paper's 18 → 74 → 85) — is the reproduced result; see
//! EXPERIMENTS.md.

use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_core::summaries::SummaryAnalyzer;
use dai_domains::IntervalDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_lang::Symbol;

/// The ported array-library suite: shared accessors, library functions,
/// and the test driver.
pub const BUCKETS_SRC: &str = r#"
// ---- shared element accessors (the two-deep flows that need k = 2) ----
function get(a, i) { return a[i]; }
function set(a, i, v) { a[i] = v; return v; }

// ---- library functions under test (called with several arrays) ----
function contains(a, v) {
    var found = 0; var i = 0;
    while (i < len(a)) { if (a[i] == v) { found = 1; } i = i + 1; }
    return found;
}
function indexOf(a, v) {
    var at = 0 - 1; var i = 0;
    while (i < len(a)) { if (a[i] == v) { at = i; } i = i + 1; }
    return at;
}
function lastIndexOf(a, v) {
    var at = 0 - 1; var i = len(a) - 1;
    while (i >= 0) { if (a[i] == v && at < 0) { at = i; } i = i - 1; }
    return at;
}
function equalsArr(a, b) {
    var same = 1; var i = 0;
    while (i < len(a)) {
        if (i < len(b)) { if (a[i] != b[i]) { same = 0; } }
        i = i + 1;
    }
    return same;
}
function sum(a) {
    var s = 0; var i = 0;
    while (i < len(a)) { var x = get(a, i); s = s + x; i = i + 1; }
    return s;
}
function maxOf(a) {
    var m = a[0]; var i = 1;
    while (i < len(a)) { if (a[i] > m) { m = a[i]; } i = i + 1; }
    return m;
}
function fill(a, v) {
    var i = 0;
    while (i < len(a)) { var u = set(a, i, v); i = i + 1; }
    return a[0];
}
function reverse(a) {
    var i = 0; var j = len(a) - 1;
    while (i < j) { var t = a[i]; a[i] = a[j]; a[j] = t; i = i + 1; j = j - 1; }
    return a[0];
}
function scale(a, k) {
    var i = 0;
    while (i < len(a)) { var x = get(a, i); var u = set(a, i, x * k); i = i + 1; }
    return a[0];
}
function clampAll(a, hi) {
    var i = 0;
    while (i < len(a)) {
        var x = get(a, i);
        if (x > hi) { var u = set(a, i, hi); }
        i = i + 1;
    }
    return a[0];
}
function windowSum(a) {
    var s = 0; var i = 0;
    while (i < len(a) - 1) { s = s + a[i] + a[i + 1]; i = i + 1; }
    return s;
}
function firstOf(a) {
    return a[0];
}
function countMatches(a, v) {
    var c = 0; var i = 0;
    while (i < len(a)) { if (a[i] == v) { c = c + 1; } i = i + 1; }
    return c;
}
function swapEnds(a) {
    var i = 0; var j = len(a) - 1;
    var t = a[i]; a[i] = a[j]; a[j] = t;
    return a[0];
}
function copyInto(a, b) {
    var i = 0;
    while (i < len(a)) {
        if (i < len(b)) { var u = set(b, i, a[i]); }
        i = i + 1;
    }
    return b[0];
}
function dotProduct(a, b) {
    var s = 0; var i = 0;
    while (i < len(a)) {
        if (i < len(b)) { s = s + a[i] * b[i]; }
        i = i + 1;
    }
    return s;
}

// ---- caller-independent functions (verifiable even at k = 0) ----
function singleton() {
    var a = [7];
    return a[0];
}
function pairMax() {
    var a = [3, 9];
    var m = a[0];
    if (a[1] > m) { m = a[1]; }
    return m;
}

// ---- the test driver: each library function exercised with several
// ---- arrays of different lengths (as a test suite would).
function main() {
    var t1 = contains([1, 2, 3], 2);
    var t2 = contains([4, 5, 6, 7], 9);
    var t3 = contains([9, 8, 7, 6, 5], 7);
    var t4 = indexOf([1, 2], 2);
    var t5 = indexOf([5, 5, 5], 5);
    var t6 = lastIndexOf([4, 5, 4], 4);
    var t7 = lastIndexOf([1, 2, 3, 4], 1);
    var t8 = equalsArr([1, 2], [1, 2]);
    var t9 = equalsArr([1, 2, 3], [1, 2, 4]);
    var t10 = sum([1, 2, 3]);
    var t11 = sum([10, 20, 30, 40]);
    var t12 = maxOf([3, 1, 4]);
    var t13 = maxOf([1, 5, 9, 2, 6]);
    var t14 = fill([0, 0, 0], 7);
    var t15 = fill([0, 0], 9);
    var t16 = reverse([1, 2, 3, 4]);
    var t17 = reverse([5, 6]);
    var t18 = scale([1, 2, 3], 2);
    var t19 = scale([1, 2, 3, 4, 5], 3);
    var t20 = clampAll([5, 15, 25], 10);
    var t21 = clampAll([1, 100], 50);
    var t22 = windowSum([1, 2, 3, 4]);
    var t23 = windowSum([1, 2]);
    var t24 = firstOf([42]);
    var t25 = firstOf([1, 2, 3]);
    var t26 = countMatches([2, 2, 5], 2);
    var t27 = countMatches([1, 1, 1, 1], 1);
    var t28 = swapEnds([9, 8, 7]);
    var t29 = swapEnds([1, 2, 3, 4, 5]);
    var t30 = copyInto([1, 2], [0, 0]);
    var t31 = copyInto([3, 4, 5], [0, 0, 0]);
    var t32 = dotProduct([1, 2, 3], [4, 5, 6]);
    var t33 = dotProduct([1, 2], [3, 4]);
    var t34 = singleton();
    var t35 = pairMax();
    return t1 + t35;
}
"#;

/// Result of checking one policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketsResult {
    /// Array accesses proven in-bounds (counted per calling context).
    pub verified: usize,
    /// Total array accesses (counted per calling context).
    pub total: usize,
}

impl BucketsResult {
    /// Verification ratio.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.verified as f64 / self.total as f64
        }
    }
}

/// Runs the experiment under one context policy: demands the abstract
/// state before every array access in every calling context and checks the
/// §7.2 bounds obligation `0 ≤ i < len(a)`.
pub fn run_buckets(policy: ContextPolicy) -> BucketsResult {
    let program =
        lower_program(&parse_program(BUCKETS_SRC).expect("suite parses")).expect("suite lowers");
    let mut analyzer: InterAnalyzer<IntervalDomain> =
        InterAnalyzer::new(program.clone(), policy, "main", IntervalDomain::top());
    let mut verified = 0;
    let mut total = 0;
    let names: Vec<Symbol> = program.cfgs().iter().map(|c| c.name().clone()).collect();
    for fname in names {
        let cfg = program
            .by_name(fname.as_str())
            .expect("function exists")
            .clone();
        for edge in cfg.edges() {
            let accesses = edge.stmt.array_accesses();
            if accesses.is_empty() {
                continue;
            }
            let per_ctx = analyzer
                .query_at(fname.as_str(), edge.src)
                .expect("query succeeds");
            for (_ctx, state) in per_ctx {
                for (arr, idx) in &accesses {
                    total += 1;
                    if state.array_access_safe(arr, idx) {
                        verified += 1;
                    }
                }
            }
        }
    }
    BucketsResult { verified, total }
}

/// Runs the experiment under the Sharir–Pnueli functional approach
/// (paper §2.3; `dai_core::summaries`): accesses are counted once per
/// *entry state* reaching their function, and verified against that
/// entry's per-state invariant. At least as precise as any k-call-string
/// policy — two call paths are only merged when they induce literally the
/// same abstract entry, in which case merging loses nothing.
pub fn run_buckets_functional() -> BucketsResult {
    let program =
        lower_program(&parse_program(BUCKETS_SRC).expect("suite parses")).expect("suite lowers");
    let mut analyzer: SummaryAnalyzer<IntervalDomain> =
        SummaryAnalyzer::new(program.clone(), "main", IntervalDomain::top());
    let mut verified = 0;
    let mut total = 0;
    let names: Vec<Symbol> = program.cfgs().iter().map(|c| c.name().clone()).collect();
    for fname in names {
        let cfg = program
            .by_name(fname.as_str())
            .expect("function exists")
            .clone();
        for edge in cfg.edges() {
            let accesses = edge.stmt.array_accesses();
            if accesses.is_empty() {
                continue;
            }
            let per_entry = analyzer
                .query_at(fname.as_str(), edge.src)
                .expect("query succeeds");
            for (_entry, state) in per_entry {
                for (arr, idx) in &accesses {
                    total += 1;
                    if state.array_access_safe(arr, idx) {
                        verified += 1;
                    }
                }
            }
        }
    }
    BucketsResult { verified, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_parses_and_lowers() {
        let program = lower_program(&parse_program(BUCKETS_SRC).unwrap()).unwrap();
        assert_eq!(program.cfgs().len(), 21); // 18 library + 2 accessors + main
    }

    #[test]
    fn two_call_string_verifies_everything() {
        let r = run_buckets(ContextPolicy::CallString(2));
        assert_eq!(r.verified, r.total, "k=2 must verify all accesses: {r:?}");
        assert!(
            r.total >= 50,
            "expected a rich access count, got {}",
            r.total
        );
    }

    #[test]
    fn one_call_string_verifies_most_but_not_all() {
        let r = run_buckets(ContextPolicy::CallString(1));
        assert!(
            r.verified < r.total,
            "k=1 must miss the two-deep accessor flows: {r:?}"
        );
        assert!(r.ratio() > 0.80, "k=1 should verify most accesses: {r:?}");
    }

    #[test]
    fn insensitive_verifies_only_caller_independent_accesses() {
        let r = run_buckets(ContextPolicy::Insensitive);
        assert!(r.ratio() < 0.5, "k=0 must lose most accesses: {r:?}");
        assert!(
            r.verified > 0,
            "caller-independent accesses must verify: {r:?}"
        );
    }

    #[test]
    fn functional_verifies_everything_with_fewer_units() {
        let r = run_buckets_functional();
        assert_eq!(
            r.verified, r.total,
            "functional must verify all accesses: {r:?}"
        );
        // Summary sharing: the functional entry count never exceeds the
        // k=2 context count (equal entries collapse).
        let k2 = run_buckets(ContextPolicy::CallString(2));
        assert!(r.total <= k2.total, "functional {r:?} vs k=2 {k2:?}");
    }

    #[test]
    fn gradient_matches_paper_shape() {
        let k0 = run_buckets(ContextPolicy::Insensitive);
        let k1 = run_buckets(ContextPolicy::CallString(1));
        let k2 = run_buckets(ContextPolicy::CallString(2));
        assert!(k0.ratio() < k1.ratio());
        assert!(k1.ratio() < k2.ratio() + 1e-9);
        assert_eq!(k2.ratio(), 1.0);
        // Context multiplication grows the denominator, as in the paper
        // (18 → 74 → 85).
        assert!(k0.total < k1.total);
        assert!(k1.total <= k2.total);
    }
}
