//! # dai-bench — workloads and experiment harnesses
//!
//! Reproduces the evaluation of *Demanded Abstract Interpretation*
//! (PLDI 2021):
//!
//! * [`workload`] — the §7.3 synthetic workload: random edit streams
//!   (85% statement / 10% `if` / 5% `while` insertions, expressions
//!   sampled from the grammar) interleaved with random queries;
//! * [`harness`] — the Fig. 10 measurement pipeline over the four driver
//!   configurations, producing the scatter series, the latency CDF, and
//!   the summary statistics table;
//! * [`buckets`] — the §7.2 interval / context-sensitivity experiment on
//!   ports of the Buckets.js array functions;
//! * [`lists`] — the §7.2 shape-analysis experiment (Fig. 1 `append` and
//!   linked-list utilities);
//! * [`engine_scaling`] — worker-pool throughput of the concurrent
//!   `dai-engine` on the Fig. 10 workload (the `engine_scaling` binary
//!   records `BENCH_engine.json` baselines, with `host_cpus` captured at
//!   measurement time);
//! * [`persist_bench`] — cold-start vs warm-start restore comparison for
//!   the `dai-persist` snapshot subsystem (the `persist_bench` binary
//!   records `BENCH_persist.json` and doubles as the CI roundtrip gate);
//! * [`batch_bench`] — batched (coalesced) vs sequential query dispatch
//!   on the Fig. 10 sweep (the `batch_bench` binary records
//!   `BENCH_batch.json` and is the CI coalescing gate: identical answers,
//!   strictly fewer session-lock acquisitions, one union-cone traversal
//!   per cold coalesced batch);
//! * [`rpc_bench`] — socket vs in-process dispatch through `dai-rpc` on
//!   the same sweep (the `rpc_bench` binary records `BENCH_rpc.json` and
//!   is the CI wire gate: identical answers, the sweep frame reproducing
//!   the in-process lock/walk profile, strictly fewer locks than
//!   per-query frames).

pub mod batch_bench;
pub mod buckets;
pub mod daig_bench;
pub mod engine_scaling;
pub mod harness;
pub mod lists;
pub mod persist_bench;
pub mod replica_bench;
pub mod rpc_bench;
pub mod workload;
