//! Engine worker-pool scaling on the §7.3 workload.
//!
//! Measures end-to-end query throughput (queries/second) of
//! [`dai_engine::Engine`] at several worker counts over the Fig. 10
//! synthetic workload: a fleet of sessions, each holding the workload
//! program grown by a stream of random edits, is swept with a full
//! (function × location) query load submitted through the concurrent
//! request stream. Sessions are independent, so the engine can serve them
//! in parallel; per-query cell batches additionally fan out within each
//! session.
//!
//! Interpreting the numbers: scaling is bounded by the hardware — on a
//! single-CPU host every worker count measures the same serial machine
//! (speedup ≈ 1.0×), so baselines recorded by the `engine_scaling` binary
//! embed `available_parallelism` alongside the throughput points.

use dai_core::driver::ProgramEdit;
use dai_core::TransferMode;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, EngineConfig, Request, SessionId, Ticket};
use dai_lang::Loc;
use std::time::{Duration, Instant};

use crate::workload::Workload;

/// Parameters of a scaling run.
#[derive(Debug, Clone)]
pub struct ScalingParams {
    /// Independent sessions to open (the cross-session parallelism axis).
    pub sessions: usize,
    /// Random edits growing each session's program before measurement.
    pub grow_edits: usize,
    /// Worker counts to measure.
    pub worker_counts: Vec<usize>,
    /// Base seed; session `i` uses `seed + i`.
    pub seed: u64,
    /// How transfer edges evaluate (staged closures vs the interpreter).
    pub transfer: TransferMode,
}

impl Default for ScalingParams {
    fn default() -> ScalingParams {
        ScalingParams {
            sessions: 8,
            grow_edits: 40,
            worker_counts: vec![1, 2, 4, 8],
            seed: 0x5CA1E,
            transfer: TransferMode::default(),
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker threads.
    pub workers: usize,
    /// Queries served.
    pub queries: usize,
    /// Wall-clock time for the whole sweep.
    pub elapsed: Duration,
    /// Queries per second.
    pub qps: f64,
}

/// A whole sweep plus its hardware provenance, captured **at measurement
/// time** (`available_parallelism` when the sweep ran, not when an
/// artifact is later serialized) — scaling numbers without the CPU count
/// that produced them are meaningless, and PR 1's baseline proved it:
/// recorded on a 1-CPU container, its flat speedup says nothing about the
/// engine.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// `available_parallelism` observed when the sweep started.
    pub host_cpus: usize,
    /// One point per requested worker count, in request order.
    pub points: Vec<ScalingPoint>,
}

/// Runs the sweep at every requested worker count.
pub fn run_scaling(params: &ScalingParams) -> ScalingRun {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    ScalingRun {
        host_cpus,
        points: params
            .worker_counts
            .iter()
            .map(|&workers| run_at(workers, params))
            .collect(),
    }
}

/// The scaling sanity gate: on a multi-core host, adding workers must not
/// tank throughput (best multi-worker point ≥ `MIN_MULTI_WORKER_SPEEDUP` ×
/// the 1-worker point — a regression canary, deliberately lenient for
/// noisy shared runners, not a parallel-speedup target). On a single-CPU
/// host every worker count measures the same serial machine, so the
/// assertion is **skipped** (`Ok(Some(reason))`).
///
/// # Errors
///
/// A human-readable description of the violated expectation.
pub fn flat_scaling_check(run: &ScalingRun) -> Result<Option<String>, String> {
    if run.host_cpus <= 1 {
        return Ok(Some(format!(
            "flat-scaling assertion skipped: host_cpus == {} (worker scaling \
             is necessarily flat on a serial machine)",
            run.host_cpus
        )));
    }
    let base = speedup_base(&run.points);
    let best_multi = run
        .points
        .iter()
        .filter(|p| p.workers > 1)
        .map(|p| p.qps)
        .fold(f64::NAN, f64::max);
    if best_multi.is_nan() {
        return Ok(Some(
            "flat-scaling assertion skipped: sweep has no multi-worker point".to_string(),
        ));
    }
    let speedup = best_multi / base.max(1e-9);
    if speedup < MIN_MULTI_WORKER_SPEEDUP {
        return Err(format!(
            "multi-worker throughput collapsed on a {}-CPU host: best multi-worker \
             speedup {speedup:.2}x < {MIN_MULTI_WORKER_SPEEDUP}x floor",
            run.host_cpus
        ));
    }
    Ok(None)
}

/// Floor for [`flat_scaling_check`] on multi-core hosts.
pub const MIN_MULTI_WORKER_SPEEDUP: f64 = 0.8;

fn run_at(workers: usize, params: &ScalingParams) -> ScalingPoint {
    let engine: Engine<OctagonDomain> = Engine::with_config(EngineConfig {
        workers,
        transfer: params.transfer,
        ..EngineConfig::default()
    });
    let sessions: Vec<SessionId> = (0..params.sessions)
        .map(|i| {
            let id = engine.open_session(format!("bench-{i}"), Workload::initial_program());
            grow(&engine, id, params.seed + i as u64, params.grow_edits);
            id
        })
        .collect();
    // The measured load: every (function, location) of every session,
    // interleaved round-robin across sessions so independent work is
    // available from the first request on.
    let mut per_session: Vec<Vec<(String, Loc)>> = sessions
        .iter()
        .map(|&s| {
            let program = engine.program_of(s).expect("session open");
            let mut targets = Vec::new();
            for cfg in program.cfgs() {
                for loc in cfg.locs() {
                    targets.push((cfg.name().to_string(), loc));
                }
            }
            targets
        })
        .collect();
    let mut load: Vec<(SessionId, String, Loc)> = Vec::new();
    loop {
        let mut emitted = false;
        for (i, targets) in per_session.iter_mut().enumerate() {
            if let Some((f, loc)) = targets.pop() {
                load.push((sessions[i], f, loc));
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
    }

    let t0 = Instant::now();
    let tickets: Vec<Ticket<OctagonDomain>> = load
        .iter()
        .map(|(s, f, loc)| {
            engine.submit(Request::Query {
                session: *s,
                func: f.clone(),
                loc: *loc,
            })
        })
        .collect();
    Ticket::wait_all(tickets).expect("bench queries succeed");
    let elapsed = t0.elapsed();
    ScalingPoint {
        workers,
        queries: load.len(),
        elapsed,
        qps: load.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Grows a session's program with the §7.3 edit mix (applied through the
/// engine so the DAIGs are edited incrementally, not rebuilt).
fn grow(engine: &Engine<OctagonDomain>, session: SessionId, seed: u64, edits: usize) {
    let mut gen = Workload::new(seed);
    for _ in 0..edits {
        let program = engine.program_of(session).expect("session open");
        let edit: ProgramEdit = gen.next_edit(&program);
        engine
            .request(Request::Edit { session, edit })
            .expect("bench edit applies");
    }
}

/// Renders points as an aligned table with speedups relative to the
/// 1-worker point (first point if the sweep has no 1-worker entry).
pub fn format_points(points: &[ScalingPoint]) -> String {
    let base = speedup_base(points);
    let mut out = String::from("engine_scaling (Fig. 10 workload, octagon)\n");
    out.push_str(&format!(
        "{:>8} {:>9} {:>12} {:>12} {:>9}\n",
        "workers", "queries", "elapsed", "queries/s", "speedup"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8} {:>9} {:>12.3?} {:>12.1} {:>8.2}x\n",
            p.workers,
            p.queries,
            p.elapsed,
            p.qps,
            p.qps / base.max(1e-9),
        ));
    }
    out
}

/// The qps denominator for speedup columns: the 1-worker point when the
/// sweep contains one (regardless of its position in the list), else the
/// first point.
pub fn speedup_base(points: &[ScalingPoint]) -> f64 {
    points
        .iter()
        .find(|p| p.workers == 1)
        .or(points.first())
        .map(|p| p.qps)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_points_and_serves_all_queries() {
        let params = ScalingParams {
            sessions: 2,
            grow_edits: 4,
            worker_counts: vec![1, 2],
            seed: 7,
            transfer: TransferMode::default(),
        };
        let run = run_scaling(&params);
        assert!(
            run.host_cpus >= 1,
            "provenance captured at measurement time"
        );
        let points = &run.points;
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workers, 1);
        assert_eq!(points[1].workers, 2);
        // Both counts answer the identical query load.
        assert_eq!(points[0].queries, points[1].queries);
        assert!(points[0].queries > 10);
        assert!(points[0].qps > 0.0);
        let table = format_points(points);
        assert!(table.contains("speedup"));
    }

    #[test]
    fn flat_scaling_check_skips_on_one_cpu_and_gates_on_many() {
        let point = |workers, qps| ScalingPoint {
            workers,
            queries: 100,
            elapsed: Duration::from_millis(10),
            qps,
        };
        // 1-CPU host: always skipped, regardless of how flat the points
        // are.
        let serial = ScalingRun {
            host_cpus: 1,
            points: vec![point(1, 100.0), point(4, 40.0)],
        };
        let skip = flat_scaling_check(&serial).unwrap();
        assert!(skip.is_some_and(|m| m.contains("host_cpus == 1")));
        // Multi-core host: a collapse fails, healthy scaling passes.
        let collapsed = ScalingRun {
            host_cpus: 4,
            points: vec![point(1, 100.0), point(4, 40.0)],
        };
        assert!(flat_scaling_check(&collapsed).is_err());
        let healthy = ScalingRun {
            host_cpus: 4,
            points: vec![point(1, 100.0), point(4, 250.0)],
        };
        assert_eq!(flat_scaling_check(&healthy).unwrap(), None);
        // No multi-worker point: nothing to assert.
        let single = ScalingRun {
            host_cpus: 4,
            points: vec![point(1, 100.0)],
        };
        assert!(flat_scaling_check(&single).unwrap().is_some());
    }
}
