//! Engine worker-pool scaling on the §7.3 workload.
//!
//! Measures end-to-end query throughput (queries/second) of
//! [`dai_engine::Engine`] at several worker counts over the Fig. 10
//! synthetic workload: a fleet of sessions, each holding the workload
//! program grown by a stream of random edits, is swept with a full
//! (function × location) query load submitted through the concurrent
//! request stream. Sessions are independent, so the engine can serve them
//! in parallel; per-query cell batches additionally fan out within each
//! session.
//!
//! Interpreting the numbers: scaling is bounded by the hardware — on a
//! single-CPU host every worker count measures the same serial machine
//! (speedup ≈ 1.0×), so baselines recorded by the `engine_scaling` binary
//! embed `available_parallelism` alongside the throughput points.

use dai_core::driver::ProgramEdit;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, Request, SessionId, Ticket};
use dai_lang::Loc;
use std::time::{Duration, Instant};

use crate::workload::Workload;

/// Parameters of a scaling run.
#[derive(Debug, Clone)]
pub struct ScalingParams {
    /// Independent sessions to open (the cross-session parallelism axis).
    pub sessions: usize,
    /// Random edits growing each session's program before measurement.
    pub grow_edits: usize,
    /// Worker counts to measure.
    pub worker_counts: Vec<usize>,
    /// Base seed; session `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ScalingParams {
    fn default() -> ScalingParams {
        ScalingParams {
            sessions: 8,
            grow_edits: 40,
            worker_counts: vec![1, 2, 4, 8],
            seed: 0x5CA1E,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker threads.
    pub workers: usize,
    /// Queries served.
    pub queries: usize,
    /// Wall-clock time for the whole sweep.
    pub elapsed: Duration,
    /// Queries per second.
    pub qps: f64,
}

/// Runs the sweep at every requested worker count and returns one point
/// per count, in the order given.
pub fn run_scaling(params: &ScalingParams) -> Vec<ScalingPoint> {
    params
        .worker_counts
        .iter()
        .map(|&workers| run_at(workers, params))
        .collect()
}

fn run_at(workers: usize, params: &ScalingParams) -> ScalingPoint {
    let engine: Engine<OctagonDomain> = Engine::new(workers);
    let sessions: Vec<SessionId> = (0..params.sessions)
        .map(|i| {
            let id = engine.open_session(format!("bench-{i}"), Workload::initial_program());
            grow(&engine, id, params.seed + i as u64, params.grow_edits);
            id
        })
        .collect();
    // The measured load: every (function, location) of every session,
    // interleaved round-robin across sessions so independent work is
    // available from the first request on.
    let mut per_session: Vec<Vec<(String, Loc)>> = sessions
        .iter()
        .map(|&s| {
            let program = engine.program_of(s).expect("session open");
            let mut targets = Vec::new();
            for cfg in program.cfgs() {
                for loc in cfg.locs() {
                    targets.push((cfg.name().to_string(), loc));
                }
            }
            targets
        })
        .collect();
    let mut load: Vec<(SessionId, String, Loc)> = Vec::new();
    loop {
        let mut emitted = false;
        for (i, targets) in per_session.iter_mut().enumerate() {
            if let Some((f, loc)) = targets.pop() {
                load.push((sessions[i], f, loc));
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
    }

    let t0 = Instant::now();
    let tickets: Vec<Ticket<OctagonDomain>> = load
        .iter()
        .map(|(s, f, loc)| {
            engine.submit(Request::Query {
                session: *s,
                func: f.clone(),
                loc: *loc,
            })
        })
        .collect();
    Ticket::wait_all(tickets).expect("bench queries succeed");
    let elapsed = t0.elapsed();
    ScalingPoint {
        workers,
        queries: load.len(),
        elapsed,
        qps: load.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Grows a session's program with the §7.3 edit mix (applied through the
/// engine so the DAIGs are edited incrementally, not rebuilt).
fn grow(engine: &Engine<OctagonDomain>, session: SessionId, seed: u64, edits: usize) {
    let mut gen = Workload::new(seed);
    for _ in 0..edits {
        let program = engine.program_of(session).expect("session open");
        let edit: ProgramEdit = gen.next_edit(&program);
        engine
            .request(Request::Edit { session, edit })
            .expect("bench edit applies");
    }
}

/// Renders points as an aligned table with speedups relative to the
/// 1-worker point (first point if the sweep has no 1-worker entry).
pub fn format_points(points: &[ScalingPoint]) -> String {
    let base = speedup_base(points);
    let mut out = String::from("engine_scaling (Fig. 10 workload, octagon)\n");
    out.push_str(&format!(
        "{:>8} {:>9} {:>12} {:>12} {:>9}\n",
        "workers", "queries", "elapsed", "queries/s", "speedup"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8} {:>9} {:>12.3?} {:>12.1} {:>8.2}x\n",
            p.workers,
            p.queries,
            p.elapsed,
            p.qps,
            p.qps / base.max(1e-9),
        ));
    }
    out
}

/// The qps denominator for speedup columns: the 1-worker point when the
/// sweep contains one (regardless of its position in the list), else the
/// first point.
pub fn speedup_base(points: &[ScalingPoint]) -> f64 {
    points
        .iter()
        .find(|p| p.workers == 1)
        .or(points.first())
        .map(|p| p.qps)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_points_and_serves_all_queries() {
        let params = ScalingParams {
            sessions: 2,
            grow_edits: 4,
            worker_counts: vec![1, 2],
            seed: 7,
        };
        let points = run_scaling(&params);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workers, 1);
        assert_eq!(points[1].workers, 2);
        // Both counts answer the identical query load.
        assert_eq!(points[0].queries, points[1].queries);
        assert!(points[0].queries > 10);
        assert!(points[0].qps > 0.0);
        let table = format_points(&points);
        assert!(table.contains("speedup"));
    }
}
