//! The Fig. 10 measurement harness.
//!
//! Runs the four analysis configurations over identical interleaved
//! edit/query streams (octagon domain, context-insensitive — §7.3) and
//! collects per-execution latencies:
//!
//! * exhaustive configurations (batch, incremental): one *analysis
//!   execution* per edit;
//! * demand-driven configurations: one sample per query (five queries per
//!   edit).
//!
//! From the samples the harness derives the three artifacts of Fig. 10:
//! per-configuration scatter series (program size vs. latency), the
//! latency CDF, and the summary table (mean / p50 / p90 / p95 / p99).

use crate::workload::Workload;
use dai_core::driver::{Config, Driver};
use dai_core::interproc::ContextPolicy;
use dai_domains::OctagonDomain;
use std::time::{Duration, Instant};

/// Parameters of a Fig. 10 run. The paper uses 3,000 edits × 9 trials;
/// the defaults here are scaled down so the full four-configuration sweep
/// finishes in CI-scale time (pass `--edits 3000 --trials 9` to the
/// `fig10` binary for the paper-scale run).
#[derive(Debug, Clone, Copy)]
pub struct Fig10Params {
    /// Edits per trial.
    pub edits: usize,
    /// Trials (each with a distinct fixed seed).
    pub trials: u64,
    /// Queries between consecutive edits (the paper uses 5).
    pub queries_per_edit: usize,
}

impl Default for Fig10Params {
    fn default() -> Fig10Params {
        Fig10Params {
            edits: 150,
            trials: 3,
            queries_per_edit: 5,
        }
    }
}

/// One latency sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Which configuration produced it.
    pub config: Config,
    /// Trial seed.
    pub trial: u64,
    /// Edit index within the trial.
    pub edit_index: usize,
    /// Program size (total CFG edges) at measurement time.
    pub program_size: usize,
    /// Measured latency.
    pub latency: Duration,
}

/// Runs one configuration over one trial's edit stream.
pub fn run_trial(config: Config, seed: u64, params: Fig10Params) -> Vec<Sample> {
    // One span per (config, trial) pair: the top-level phase bars of a
    // `fig10 --chrome-trace` flame trace, enclosing every demand-walk
    // and memo probe the trial fires. Payload: samples produced.
    let mut trial_span = dai_trace::span!("bench.trial");
    let mut samples = Vec::new();
    let program = Workload::initial_program();
    let mut driver: Driver<OctagonDomain> = Driver::new(
        config,
        program,
        ContextPolicy::Insensitive,
        "main",
        OctagonDomain::top(),
    );
    let mut gen = Workload::new(seed);
    for edit_index in 0..params.edits {
        let edit = gen.next_edit(driver.analyzer().program());
        let t0 = Instant::now();
        driver
            .apply_edit(&edit)
            .expect("workload edits are well-formed");
        let edit_latency = t0.elapsed();
        let size = driver.program_size();
        match config {
            Config::Batch | Config::Incremental => {
                // One analysis execution per edit; queries are lookups and
                // are folded into the execution sample.
                samples.push(Sample {
                    config,
                    trial: seed,
                    edit_index,
                    program_size: size,
                    latency: edit_latency,
                });
                for (f, loc) in
                    gen.next_queries(driver.analyzer().program(), params.queries_per_edit)
                {
                    let _ = driver.query(f.as_str(), loc).expect("query succeeds");
                }
            }
            Config::DemandDriven | Config::IncrementalDemandDriven => {
                for (f, loc) in
                    gen.next_queries(driver.analyzer().program(), params.queries_per_edit)
                {
                    let q0 = Instant::now();
                    let _ = driver.query(f.as_str(), loc).expect("query succeeds");
                    samples.push(Sample {
                        config,
                        trial: seed,
                        edit_index,
                        program_size: size,
                        latency: q0.elapsed(),
                    });
                }
            }
        }
    }
    trial_span.set_arg(samples.len() as u64);
    samples
}

/// Runs all four configurations over all trials.
pub fn run_fig10(params: Fig10Params) -> Vec<Sample> {
    let mut samples = Vec::new();
    for config in Config::ALL {
        // A phase marker per configuration, so the four sweep phases
        // are separable in the flame trace without decoding trial args.
        dai_trace::event!("bench.config", config as u64);
        for trial in 0..params.trials {
            samples.extend(run_trial(config, 0xDA1 + trial, params));
        }
    }
    samples
}

/// Summary statistics for one configuration (the Fig. 10 table row).
#[derive(Debug, Clone, Copy)]
pub struct SummaryRow {
    /// Configuration.
    pub config: Config,
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

/// Computes the Fig. 10 summary table from samples.
pub fn summarize(samples: &[Sample]) -> Vec<SummaryRow> {
    Config::ALL
        .iter()
        .filter_map(|&config| {
            let mut lats: Vec<Duration> = samples
                .iter()
                .filter(|s| s.config == config)
                .map(|s| s.latency)
                .collect();
            if lats.is_empty() {
                return None;
            }
            lats.sort();
            let total: Duration = lats.iter().sum();
            let pick = |q: f64| {
                let idx = ((lats.len() as f64 - 1.0) * q).round() as usize;
                lats[idx.min(lats.len() - 1)]
            };
            Some(SummaryRow {
                config,
                count: lats.len(),
                mean: total / lats.len() as u32,
                p50: pick(0.50),
                p90: pick(0.90),
                p95: pick(0.95),
                p99: pick(0.99),
            })
        })
        .collect()
}

/// One CDF point: the fraction of samples completing within `upto`.
#[derive(Debug, Clone, Copy)]
pub struct CdfPoint {
    /// Configuration.
    pub config: Config,
    /// Time bound.
    pub upto: Duration,
    /// Fraction of samples with latency ≤ `upto`.
    pub fraction: f64,
}

/// Computes a CDF over a logarithmic time grid (the Fig. 10 distribution
/// plot).
pub fn cdf(samples: &[Sample], points: usize) -> Vec<CdfPoint> {
    let max = samples
        .iter()
        .map(|s| s.latency)
        .max()
        .unwrap_or(Duration::from_micros(1));
    let max_us = (max.as_micros() + 1).max(1) as f64;
    let grid: Vec<Duration> = (0..points)
        .map(|i| {
            let t = (i + 1) as f64 / points as f64;
            Duration::from_micros(max_us.powf(t).round() as u64)
        })
        .collect();
    let mut out = Vec::new();
    for &config in &Config::ALL {
        let lats: Vec<Duration> = samples
            .iter()
            .filter(|s| s.config == config)
            .map(|s| s.latency)
            .collect();
        if lats.is_empty() {
            continue;
        }
        for &upto in &grid {
            let n = lats.iter().filter(|&&l| l <= upto).count();
            out.push(CdfPoint {
                config,
                upto,
                fraction: n as f64 / lats.len() as f64,
            });
        }
    }
    out
}

/// Renders the summary table in the paper's format.
pub fn format_summary(rows: &[SummaryRow]) -> String {
    let mut s = String::new();
    s.push_str("Analysis Time (ms)\n");
    s.push_str(&format!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "config", "n", "mean", "p50", "p90", "p95", "p99"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
            r.config.label(),
            r.count,
            r.mean.as_secs_f64() * 1e3,
            r.p50.as_secs_f64() * 1e3,
            r.p90.as_secs_f64() * 1e3,
            r.p95.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_expected_sample_counts() {
        let params = Fig10Params {
            edits: 5,
            trials: 1,
            queries_per_edit: 2,
        };
        let samples = run_fig10(params);
        let count = |c: Config| samples.iter().filter(|s| s.config == c).count();
        // Exhaustive configs: one sample per edit; demand: one per query.
        assert_eq!(count(Config::Batch), 5);
        assert_eq!(count(Config::Incremental), 5);
        assert_eq!(count(Config::DemandDriven), 10);
        assert_eq!(count(Config::IncrementalDemandDriven), 10);
    }

    #[test]
    fn summary_and_cdf_cover_all_configs() {
        let params = Fig10Params {
            edits: 4,
            trials: 1,
            queries_per_edit: 1,
        };
        let samples = run_fig10(params);
        let rows = summarize(&samples);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.p50 <= r.p99);
            assert!(r.count > 0);
        }
        let cdf_points = cdf(&samples, 10);
        assert!(cdf_points.len() >= 40);
        // CDF is monotone per config and ends at 1.0.
        for &config in &Config::ALL {
            let pts: Vec<&CdfPoint> = cdf_points.iter().filter(|p| p.config == config).collect();
            for w in pts.windows(2) {
                assert!(w[0].fraction <= w[1].fraction + 1e-12);
            }
            assert!((pts.last().unwrap().fraction - 1.0).abs() < 1e-12);
        }
        let table = format_summary(&rows);
        assert!(table.contains("incr+dd"));
    }
}
