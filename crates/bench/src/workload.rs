//! The §7.3 synthetic workload.
//!
//! "We created synthetic workloads consisting of 3,000 random edits to an
//! initially-empty program. Programs are generated in a JavaScript subset
//! with assignment, arrays, conditional branching, while loops, and
//! (non-recursive) function calls of the form `x = f(y)`. An 'edit' is an
//! insertion of a randomly generated statement, if-then-else conditional,
//! or while loop at a randomly-sampled program location, with 85%, 10%,
//! and 5% probability respectively. [...] queries are issued at five
//! randomly-sampled program locations between each edit."
//!
//! The generator is deterministic given a seed **and** the evolving
//! program structure; since every configuration applies the identical edit
//! stream, re-running with the same seed reproduces the same trial for
//! each configuration (the paper's "fixed random seeds such that the same
//! edits … are issued to each configuration").

use dai_core::driver::ProgramEdit;
use dai_lang::ast::{AstStmt, BinOp, Block, Expr, Function, Program, Stmt};
use dai_lang::cfg::{lower_program, LoweredProgram};
use dai_lang::{EdgeId, Loc, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of auxiliary callee functions besides `main`.
const HELPER_COUNT: usize = 4;

/// Variable pool per function.
const VAR_POOL: usize = 8;

/// Generates random edits and queries for an evolving program.
#[derive(Debug)]
pub struct Workload {
    rng: StdRng,
}

impl Workload {
    /// Creates a workload with a fixed seed.
    pub fn new(seed: u64) -> Workload {
        Workload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The initial program: `main` plus a few helpers, each with a trivial
    /// body (the paper starts from an initially-empty program; ours has
    /// the minimal skeleton required for edits to have insertion points).
    pub fn initial_program() -> LoweredProgram {
        lower_program(&Self::initial_ast()).expect("skeleton is well-formed")
    }

    /// The initial program as parseable source text (via the pretty
    /// printer, whose `parse ∘ pretty` identity the language test suite
    /// checks). Sessions opened from this source are saveable — the
    /// persistence benchmark and roundtrip tests start here.
    pub fn initial_source() -> String {
        dai_lang::pretty::program_to_source(&Self::initial_ast())
    }

    fn initial_ast() -> Program {
        let mut functions = Vec::new();
        for i in 0..HELPER_COUNT {
            functions.push(Function {
                name: Symbol::new(format!("f{i}")),
                params: vec![Symbol::new("p")],
                body: Block(vec![
                    AstStmt::Simple(Stmt::Assign("x0".into(), Expr::var("p"))),
                    AstStmt::Return(Some(Expr::var("x0"))),
                ]),
            });
        }
        functions.push(Function {
            name: Symbol::new("main"),
            params: vec![],
            body: Block(vec![
                AstStmt::Simple(Stmt::Assign("x0".into(), Expr::Int(0))),
                AstStmt::Return(Some(Expr::var("x0"))),
            ]),
        });
        Program { functions }
    }

    /// Samples a random structured block with the §7.3 mix (85% statement,
    /// 10% if, 5% while), without calls. Useful for single-function
    /// property tests.
    pub fn random_block_no_calls(&mut self) -> Block {
        let roll: f64 = self.rng.gen();
        if roll < 0.85 {
            let mut s = self.gen_stmt(Some(HELPER_COUNT)); // index beyond helpers: no calls
            if s.is_call() {
                s = Stmt::Assign(self.var(), self.gen_expr(1));
            }
            Block(vec![AstStmt::Simple(s)])
        } else if roll < 0.95 {
            Block(vec![AstStmt::If {
                cond: self.gen_cond(),
                then_: Block(vec![AstStmt::Simple(Stmt::Assign(
                    self.var(),
                    self.gen_expr(1),
                ))]),
                else_: Block(vec![AstStmt::Simple(Stmt::Assign(
                    self.var(),
                    self.gen_expr(1),
                ))]),
            }])
        } else {
            let v = self.var();
            let bound = self.rng.gen_range(1..12);
            Block(vec![
                AstStmt::Simple(Stmt::Assign(v.clone(), Expr::Int(0))),
                AstStmt::While {
                    cond: Expr::binary(BinOp::Lt, Expr::Var(v.clone()), Expr::Int(bound)),
                    body: Block(vec![AstStmt::Simple(Stmt::Assign(
                        v.clone(),
                        Expr::binary(BinOp::Add, Expr::Var(v), Expr::Int(1)),
                    ))]),
                },
            ])
        }
    }

    /// Samples a uniformly random index below `n`.
    pub fn pick_index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n.max(1))
    }

    /// Samples the next edit for the current program.
    pub fn next_edit(&mut self, program: &LoweredProgram) -> ProgramEdit {
        let (func, edge) = self.pick_edge(program);
        let func_index = Self::helper_index(&func);
        let roll: f64 = self.rng.gen();
        let block = if roll < 0.85 {
            Block(vec![AstStmt::Simple(self.gen_stmt(func_index))])
        } else if roll < 0.95 {
            Block(vec![AstStmt::If {
                cond: self.gen_cond(),
                then_: Block(vec![AstStmt::Simple(self.gen_stmt(func_index))]),
                else_: Block(vec![AstStmt::Simple(self.gen_stmt(func_index))]),
            }])
        } else {
            // A bounded counting loop: the generated programs never run,
            // but bounded conditions keep interval/octagon fixed points
            // interesting (both finite and widened bounds occur).
            let v = self.var();
            let bound = self.rng.gen_range(1..20);
            Block(vec![
                AstStmt::Simple(Stmt::Assign(v.clone(), Expr::Int(0))),
                AstStmt::While {
                    cond: Expr::binary(BinOp::Lt, Expr::Var(v.clone()), Expr::Int(bound)),
                    body: Block(vec![AstStmt::Simple(Stmt::Assign(
                        v.clone(),
                        Expr::binary(BinOp::Add, Expr::Var(v), Expr::Int(1)),
                    ))]),
                },
            ])
        };
        ProgramEdit::Insert { func, edge, block }
    }

    /// Samples `count` query targets (function, location).
    pub fn next_queries(&mut self, program: &LoweredProgram, count: usize) -> Vec<(Symbol, Loc)> {
        (0..count)
            .map(|_| {
                let cfg = &program.cfgs()[self.rng.gen_range(0..program.cfgs().len())];
                let locs = cfg.locs();
                let loc = locs[self.rng.gen_range(0..locs.len())];
                (cfg.name().clone(), loc)
            })
            .collect()
    }

    fn helper_index(func: &Symbol) -> Option<usize> {
        func.as_str().strip_prefix('f').and_then(|s| s.parse().ok())
    }

    fn pick_edge(&mut self, program: &LoweredProgram) -> (Symbol, EdgeId) {
        // Weight functions by size so edits spread proportionally, with
        // main edited most (it is the entry and grows fastest).
        let total: usize = program.cfgs().iter().map(|c| c.edge_count()).sum();
        let mut pick = self.rng.gen_range(0..total.max(1));
        for cfg in program.cfgs() {
            if pick < cfg.edge_count() {
                let edges: Vec<EdgeId> = cfg.edges().map(|e| e.id).collect();
                let edge = edges[self.rng.gen_range(0..edges.len())];
                return (cfg.name().clone(), edge);
            }
            pick -= cfg.edge_count();
        }
        let cfg = &program.cfgs()[0];
        let edges: Vec<EdgeId> = cfg.edges().map(|e| e.id).collect();
        (cfg.name().clone(), edges[0])
    }

    fn var(&mut self) -> Symbol {
        Symbol::new(format!("x{}", self.rng.gen_range(0..VAR_POOL)))
    }

    /// A random simple statement. `func_index` is `Some(i)` inside helper
    /// `fᵢ` (whose calls may only target `f_{i+1}`…, keeping the call
    /// graph acyclic) and `None` inside `main` (which may call any helper).
    fn gen_stmt(&mut self, func_index: Option<usize>) -> Stmt {
        let roll: f64 = self.rng.gen();
        if roll < 0.70 {
            Stmt::Assign(self.var(), self.gen_expr(2))
        } else if roll < 0.80 {
            // Array creation or write.
            if self.rng.gen_bool(0.5) {
                let len = self.rng.gen_range(1..5);
                let elems = (0..len)
                    .map(|_| Expr::Int(self.rng.gen_range(0..10)))
                    .collect();
                Stmt::Assign(self.var(), Expr::ArrayLit(elems))
            } else {
                Stmt::Assign(self.var(), Expr::Int(self.rng.gen_range(-50..50)))
            }
        } else if roll < 0.88 {
            Stmt::Print(Expr::Var(self.var()))
        } else {
            // Call: main may call any helper; fᵢ only higher-indexed ones.
            let lo = func_index.map(|i| i + 1).unwrap_or(0);
            if lo >= HELPER_COUNT {
                Stmt::Assign(self.var(), self.gen_expr(1))
            } else {
                let callee = self.rng.gen_range(lo..HELPER_COUNT);
                Stmt::Call {
                    lhs: Some(self.var()),
                    callee: Symbol::new(format!("f{callee}")),
                    args: vec![self.gen_expr(1)],
                }
            }
        }
    }

    fn gen_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.4) {
            return if self.rng.gen_bool(0.5) {
                Expr::Int(self.rng.gen_range(-20..20))
            } else {
                Expr::Var(self.var())
            };
        }
        let op = match self.rng.gen_range(0..4) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            _ => BinOp::Add,
        };
        Expr::binary(op, self.gen_expr(depth - 1), self.gen_expr(depth - 1))
    }

    fn gen_cond(&mut self) -> Expr {
        let op = match self.rng.gen_range(0..6) {
            0 => BinOp::Lt,
            1 => BinOp::Le,
            2 => BinOp::Gt,
            3 => BinOp::Ge,
            4 => BinOp::Eq,
            _ => BinOp::Ne,
        };
        Expr::binary(
            op,
            Expr::Var(self.var()),
            Expr::Int(self.rng.gen_range(-10..10)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_core::driver::{Config, Driver};
    use dai_core::interproc::ContextPolicy;
    use dai_domains::OctagonDomain;

    #[test]
    fn initial_program_is_wellformed() {
        let p = Workload::initial_program();
        assert_eq!(p.cfgs().len(), HELPER_COUNT + 1);
        for cfg in p.cfgs() {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn edit_stream_is_deterministic() {
        let p = Workload::initial_program();
        let mut g1 = Workload::new(42);
        let mut g2 = Workload::new(42);
        for _ in 0..20 {
            let e1 = g1.next_edit(&p);
            let e2 = g2.next_edit(&p);
            match (e1, e2) {
                (
                    ProgramEdit::Insert {
                        func: f1,
                        edge: e1,
                        block: b1,
                    },
                    ProgramEdit::Insert {
                        func: f2,
                        edge: e2,
                        block: b2,
                    },
                ) => {
                    assert_eq!(f1, f2);
                    assert_eq!(e1, e2);
                    assert_eq!(b1, b2);
                }
                _ => panic!("expected insert edits"),
            }
        }
    }

    #[test]
    fn workload_drives_analysis_without_errors() {
        let program = Workload::initial_program();
        let mut driver: Driver<OctagonDomain> = Driver::new(
            Config::IncrementalDemandDriven,
            program,
            ContextPolicy::Insensitive,
            "main",
            OctagonDomain::top(),
        );
        let mut gen = Workload::new(7);
        for step in 0..40 {
            let edit = gen.next_edit(driver.analyzer().program());
            driver
                .apply_edit(&edit)
                .unwrap_or_else(|e| panic!("edit {step}: {e}"));
            for (f, loc) in gen.next_queries(driver.analyzer().program(), 2) {
                driver
                    .query(f.as_str(), loc)
                    .unwrap_or_else(|e| panic!("query {step} at {f}:{loc}: {e}"));
            }
        }
        assert!(driver.program_size() > 40);
    }

    #[test]
    fn generated_calls_respect_call_graph_order() {
        let program = Workload::initial_program();
        let mut gen = Workload::new(99);
        // Apply many edits through the driver; recursion would make
        // refresh_call_graph fail inside apply_edit.
        let mut driver: Driver<OctagonDomain> = Driver::new(
            Config::IncrementalDemandDriven,
            program,
            ContextPolicy::Insensitive,
            "main",
            OctagonDomain::top(),
        );
        for _ in 0..60 {
            let edit = gen.next_edit(driver.analyzer().program());
            driver.apply_edit(&edit).unwrap();
        }
    }
}
