//! Socket vs in-process dispatch behind `BENCH_rpc.json`.
//!
//! `dai-rpc` puts the engine's request stream behind a wire protocol;
//! this harness quantifies what the wire costs — and what the sweep
//! frame preserves — on the Fig. 10 synthetic octagon workload. A
//! session is grown by the same deterministic edit script on three
//! fresh, identically configured services, and the full
//! `(function × location)` sweep is then measured three ways:
//!
//! * **in-process sweep** — `Engine::submit_query_sweep` through the
//!   [`Service`] trait: PR 4's coalesced dispatch, the baseline;
//! * **socket sweep** — the same sweep as **one** wire frame through a
//!   `dai-rpc` [`Client`]: the server routes it into
//!   `submit_query_sweep`, so it must reproduce the in-process
//!   lock/cone profile exactly (one session-lock acquisition and one
//!   union-cone traversal per function), paying only frame codec +
//!   socket latency on top;
//! * **socket per-query** — one `Query` frame per target: every query is
//!   its own synchronous round-trip and its own singleton drain — the
//!   shape an RPC client that ignores batching would produce.
//!
//! Wall-clock is noisy on shared hosts, so the CI gate
//! ([`check_invariants`]) asserts only deterministic counters: identical
//! answers across all three paths, the socket sweep matching the
//! in-process sweep's `BatchStats` lock/walk profile, and the sweep
//! frame taking strictly fewer session locks than per-query frames.

use dai_core::driver::ProgramEdit;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, EngineStats, Service, SessionId};
use dai_lang::Loc;
use dai_rpc::{Addr, Client, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::batch_bench::SweepCounters;
use crate::workload::Workload;

type D = OctagonDomain;

/// Parameters of one socket-vs-in-process measurement.
#[derive(Debug, Clone)]
pub struct RpcBenchParams {
    /// Random edits growing the session before the sweeps.
    pub grow_edits: usize,
    /// Workload seed.
    pub seed: u64,
    /// Warm-sweep repetitions per variant (medians reported).
    pub repeats: usize,
}

impl RpcBenchParams {
    /// The recording profile (matches the other Fig. 10 engine
    /// baselines' workload; repeats are higher than theirs because the
    /// 1-CPU scheduler round-trips under every variant here make
    /// per-sweep wall-clock jittery, and the median needs the samples).
    pub fn full() -> RpcBenchParams {
        RpcBenchParams {
            grow_edits: 40,
            seed: 379422,
            repeats: 25,
        }
    }

    /// A seconds-scale profile for CI smoke runs.
    pub fn smoke() -> RpcBenchParams {
        RpcBenchParams {
            grow_edits: 8,
            seed: 379422,
            repeats: 3,
        }
    }
}

/// One variant's measurement (same shape as `batch_bench`'s).
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Queries per sweep.
    pub queries: usize,
    /// Wall-clock of the cold sweep.
    pub cold: Duration,
    /// Median wall-clock of the warm sweeps.
    pub warm_median: Duration,
    /// Counter deltas of the cold sweep.
    pub cold_counters: SweepCounters,
    /// Counter deltas summed over all warm sweeps.
    pub warm_counters: SweepCounters,
}

impl VariantResult {
    /// Warm-sweep throughput (queries per second) from the median sweep.
    pub fn warm_qps(&self) -> f64 {
        self.queries as f64 / self.warm_median.as_secs_f64().max(1e-12)
    }
}

/// One point of the saturation matrix: `conns` concurrent connections,
/// each keeping `depth` sweep frames in flight (written back-to-back
/// before any response is read, protocol ≥ 4), repeating until its
/// share of sweeps is answered.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Concurrent connections (each with its own session).
    pub conns: usize,
    /// In-flight sweep frames per connection.
    pub depth: usize,
    /// Queries answered across all connections during the timed window.
    pub total_queries: usize,
    /// The slowest connection's wall-clock for its share.
    pub elapsed: Duration,
}

impl SaturationPoint {
    /// Aggregate throughput at this point (queries per second).
    pub fn qps(&self) -> f64 {
        self.total_queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// A complete comparison.
#[derive(Debug, Clone)]
pub struct RpcBenchResult {
    /// `available_parallelism` at measurement time.
    pub host_cpus: usize,
    /// Functions in the sweep (one coalesced batch each for sweeps).
    pub functions: usize,
    /// The in-process coalesced sweep (the baseline).
    pub in_process: VariantResult,
    /// Saturated in-process throughput: the best aggregate qps over
    /// [1, 2, 4] threads of warm sweeps against one engine (each thread
    /// its own session) — the like-for-like denominator for the
    /// saturated socket points, and far more stable on a 1-CPU host
    /// than a single stream's medians (blocking round-trip gaps, which
    /// the scheduler times inconsistently, are filled with other
    /// threads' work on both sides of the ratio).
    pub in_process_saturated_qps: f64,
    /// The whole sweep as one wire frame.
    pub socket_sweep: VariantResult,
    /// One wire frame per query.
    pub socket_per_query: VariantResult,
    /// The sweep as per-function bursts of pipelined single-query
    /// frames (protocol ≥ 4): written back-to-back, coalesced by the
    /// server's event loop into per-run engine batches.
    pub socket_pipelined: VariantResult,
    /// The connection-count × frame-shape saturation matrix.
    pub saturation: Vec<SaturationPoint>,
    /// Every sweep of every variant answered every query identically.
    pub answers_identical: bool,
}

impl RpcBenchResult {
    /// Peak saturated socket throughput over the connection × depth
    /// matrix, relative to peak saturated in-process throughput — the
    /// number the ≥ 60% acceptance gate reads. Throughput is compared
    /// at saturation on both sides (idle round-trip gaps filled by
    /// concurrent work), not at single-stream latency.
    pub fn socket_vs_in_process_qps_ratio(&self) -> f64 {
        let best = self
            .saturation
            .iter()
            .map(SaturationPoint::qps)
            .fold(0.0f64, f64::max);
        best / self.in_process_saturated_qps.max(1e-12)
    }
}

/// The deterministic edit script: replaying `Workload` edits through a
/// scratch in-process engine once, so every variant can apply the
/// *recorded* sequence through its own [`Service`] without needing
/// program introspection over the wire.
fn edit_script(params: &RpcBenchParams) -> (String, Vec<ProgramEdit>, Vec<(String, Loc)>) {
    let source = Workload::initial_source();
    let engine: Engine<D> = Engine::new(1);
    let session = engine
        .open_session_src("rpc-bench-gen", &source)
        .expect("initial source parses");
    let mut gen = Workload::new(params.seed);
    let mut edits = Vec::with_capacity(params.grow_edits);
    for _ in 0..params.grow_edits {
        let program = engine.program_of(session).expect("session open");
        let edit = gen.next_edit(&program);
        Service::<D>::edit(&engine, session, &edit).expect("bench edit applies");
        edits.push(edit);
    }
    let program = engine.program_of(session).expect("session open");
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    (source, edits, targets)
}

/// Opens a session on `service` and replays the grow script.
fn grow<S: Service<D>>(service: &S, name: &str, source: &str, edits: &[ProgramEdit]) -> SessionId {
    let session = service.open(name, source).expect("bench session opens");
    for edit in edits {
        service.edit(session, edit).expect("bench edit applies");
    }
    session
}

fn delta(before: &EngineStats, after: &EngineStats) -> SweepCounters {
    SweepCounters {
        queries: after.queries - before.queries,
        session_locks: after.session_locks - before.session_locks,
        batch: dai_engine::BatchStats {
            batches: after.batch.batches - before.batch.batches,
            coalesced_queries: after.batch.coalesced_queries - before.batch.coalesced_queries,
            singleton_queries: after.batch.singleton_queries - before.batch.singleton_queries,
            union_cone_cells: after.batch.union_cone_cells - before.batch.union_cone_cells,
            union_cone_walks: after.batch.union_cone_walks - before.batch.union_cone_walks,
        },
    }
}

fn median(mut v: Vec<Duration>) -> Duration {
    v.sort();
    v[v.len() / 2]
}

/// Measures one variant: cold sweep, then warm repeats, with counter
/// deltas read through the service's own `stats()` (so the socket
/// variants prove the wire carries the accounting too).
fn measure<S: Service<D>>(
    service: &S,
    session: SessionId,
    targets: &[(String, Loc)],
    repeats: usize,
    sweep: impl Fn(&S, SessionId, &[(String, Loc)]) -> Vec<D>,
) -> (VariantResult, Vec<D>) {
    let before = service.stats().expect("stats");
    let t0 = Instant::now();
    let answers = sweep(service, session, targets);
    let cold = t0.elapsed();
    let cold_counters = delta(&before, &service.stats().expect("stats"));
    let mut warm = Vec::with_capacity(repeats.max(1));
    let before = service.stats().expect("stats");
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let again = sweep(service, session, targets);
        warm.push(t0.elapsed());
        assert_eq!(again, answers, "warm sweep must answer identically");
    }
    let warm_counters = delta(&before, &service.stats().expect("stats"));
    (
        VariantResult {
            queries: targets.len(),
            cold,
            warm_median: median(warm),
            cold_counters,
            warm_counters,
        },
        answers,
    )
}

fn sweep_batched<S: Service<D>>(
    service: &S,
    session: SessionId,
    targets: &[(String, Loc)],
) -> Vec<D> {
    service
        .query_sweep(session, targets)
        .into_iter()
        .map(|r| r.expect("bench query succeeds"))
        .collect()
}

fn sweep_per_query<S: Service<D>>(
    service: &S,
    session: SessionId,
    targets: &[(String, Loc)],
) -> Vec<D> {
    targets
        .iter()
        .map(|(f, loc)| {
            service
                .query(session, f, *loc)
                .expect("bench query succeeds")
        })
        .collect()
}

/// The sweep as pipelined single-query frames: one
/// [`Client::pipeline_queries`] burst per function run (`targets` is
/// sorted, so runs are contiguous), every frame written before any
/// response is read.
fn sweep_pipelined(client: &Client<D>, session: SessionId, targets: &[(String, Loc)]) -> Vec<D> {
    let mut answers = Vec::with_capacity(targets.len());
    let mut i = 0;
    while i < targets.len() {
        let func = &targets[i].0;
        let run_end = i + targets[i..].iter().take_while(|(f, _)| f == func).count();
        let locs: Vec<Loc> = targets[i..run_end].iter().map(|(_, l)| *l).collect();
        answers.extend(
            client
                .pipeline_queries(session, func, &locs)
                .into_iter()
                .map(|r| r.expect("bench query succeeds")),
        );
        i = run_end;
    }
    answers
}

/// One saturation point: `conns` client threads, each over its own
/// connection and session, issuing warm sweeps in pipelined windows of
/// `depth` frames until `repeats` windows are answered. Aggregate qps
/// divides the total answered queries by the slowest thread's window.
fn measure_saturation(
    server: &Server<D>,
    source: &str,
    edits: &[ProgramEdit],
    targets: &[(String, Loc)],
    conns: usize,
    depth: usize,
    repeats: usize,
) -> SaturationPoint {
    let repeats = repeats.max(1);
    let start = Arc::new(std::sync::Barrier::new(conns));
    let threads: Vec<std::thread::JoinHandle<Duration>> = (0..conns)
        .map(|i| {
            let addr = server.addr().clone();
            let source = source.to_string();
            let edits = edits.to_vec();
            let targets = targets.to_vec();
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let client: Client<D> =
                    Client::connect_addr(&addr).expect("saturation client connects");
                let name = format!("rpc-bench-sat-{i}");
                let session = grow(&client, &name, &source, &edits);
                let reference = sweep_batched(&client, session, &targets); // warm the memo
                start.wait();
                let t0 = Instant::now();
                for _ in 0..repeats {
                    for answers in client.pipeline_sweeps(session, &targets, depth) {
                        let answers: Vec<D> = answers
                            .into_iter()
                            .map(|r| r.expect("bench query succeeds"))
                            .collect();
                        assert_eq!(
                            answers, reference,
                            "saturated sweep must answer identically"
                        );
                    }
                }
                t0.elapsed()
            })
        })
        .collect();
    let elapsed = threads
        .into_iter()
        .map(|t| t.join().expect("saturation thread completes"))
        .max()
        .unwrap_or_default();
    SaturationPoint {
        conns,
        depth,
        total_queries: conns * repeats * depth * targets.len(),
        elapsed,
    }
}

/// Saturated in-process throughput at one thread count: `threads`
/// bench threads over one engine, each warm-sweeping its own session
/// `repeats × depth_budget` times (the same sweep budget a saturation
/// point at that connection count runs).
fn measure_in_process_saturation(
    engine: &Arc<Engine<D>>,
    source: &str,
    edits: &[ProgramEdit],
    targets: &[(String, Loc)],
    threads: usize,
    sweeps: usize,
) -> f64 {
    let start = Arc::new(std::sync::Barrier::new(threads));
    let handles: Vec<std::thread::JoinHandle<Duration>> = (0..threads)
        .map(|i| {
            let engine = Arc::clone(engine);
            let source = source.to_string();
            let edits = edits.to_vec();
            let targets = targets.to_vec();
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let name = format!("rpc-bench-inproc-sat-{i}");
                let session = grow(engine.as_ref(), &name, &source, &edits);
                let reference = sweep_batched(engine.as_ref(), session, &targets);
                start.wait();
                let t0 = Instant::now();
                for _ in 0..sweeps {
                    let again = sweep_batched(engine.as_ref(), session, &targets);
                    assert_eq!(again, reference, "saturated sweep must answer identically");
                }
                t0.elapsed()
            })
        })
        .collect();
    let elapsed = handles
        .into_iter()
        .map(|t| t.join().expect("saturation thread completes"))
        .max()
        .unwrap_or_default();
    (threads * sweeps * targets.len()) as f64 / elapsed.as_secs_f64().max(1e-12)
}

/// A fresh single-worker engine (the profile every committed Fig. 10
/// baseline uses).
fn fresh_engine() -> Arc<Engine<D>> {
    Arc::new(Engine::new(1))
}

/// A throwaway Unix socket path unique to this process.
fn scratch_socket(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("dai-rpc-bench-{tag}-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Runs the full three-way comparison.
pub fn run_rpc_bench(params: &RpcBenchParams) -> RpcBenchResult {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (source, edits, targets) = edit_script(params);
    let functions = {
        let mut fs: Vec<&String> = targets.iter().map(|(f, _)| f).collect();
        fs.dedup();
        fs.len()
    };

    // In-process baseline.
    let engine = fresh_engine();
    let session = grow(engine.as_ref(), "rpc-bench", &source, &edits);
    let (in_process, reference) = measure(
        engine.as_ref(),
        session,
        &targets,
        params.repeats,
        sweep_batched,
    );

    // Saturated in-process baseline: fresh engine, best over the same
    // thread counts the socket matrix uses, with the depth-8 sweep
    // budget so both sides time comparable windows.
    let sat_engine = fresh_engine();
    let in_process_saturated_qps = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            measure_in_process_saturation(
                &sat_engine,
                &source,
                &edits,
                &targets,
                threads,
                params.repeats.max(1) * 8,
            )
        })
        .fold(0.0f64, f64::max);

    // Socket sweep: whole sweep as one frame.
    let server = Server::bind(&Addr::Unix(scratch_socket("sweep")), fresh_engine())
        .expect("bench server binds");
    let client: Client<D> = Client::connect_addr(server.addr()).expect("bench client connects");
    let session = grow(&client, "rpc-bench", &source, &edits);
    let (socket_sweep, sweep_answers) =
        measure(&client, session, &targets, params.repeats, sweep_batched);
    drop(client);
    server.shutdown();

    // Socket per-query: one frame per target.
    let server = Server::bind(&Addr::Unix(scratch_socket("per-query")), fresh_engine())
        .expect("bench server binds");
    let client: Client<D> = Client::connect_addr(server.addr()).expect("bench client connects");
    let session = grow(&client, "rpc-bench", &source, &edits);
    let (socket_per_query, per_query_answers) =
        measure(&client, session, &targets, params.repeats, sweep_per_query);
    drop(client);
    server.shutdown();

    // Socket pipelined: per-function bursts of single-query frames,
    // coalesced back into batches by the server's event loop.
    let server = Server::bind(&Addr::Unix(scratch_socket("pipelined")), fresh_engine())
        .expect("bench server binds");
    let client: Client<D> = Client::connect_addr(server.addr()).expect("bench client connects");
    let session = grow(&client, "rpc-bench", &source, &edits);
    let (socket_pipelined, pipelined_answers) =
        measure(&client, session, &targets, params.repeats, |c, s, t| {
            sweep_pipelined(c, s, t)
        });
    drop(client);
    server.shutdown();

    // Saturation matrix: one shared server/engine, per-connection
    // sessions. Depth amortizes syscall/scheduling round trips across
    // an in-flight window; connections add concurrent load on top.
    let server = Server::bind(&Addr::Unix(scratch_socket("saturation")), fresh_engine())
        .expect("bench server binds");
    let mut saturation = Vec::new();
    for conns in [1usize, 2, 4] {
        for depth in [1usize, 4, 8] {
            saturation.push(measure_saturation(
                &server,
                &source,
                &edits,
                &targets,
                conns,
                depth,
                params.repeats,
            ));
        }
    }
    server.shutdown();

    RpcBenchResult {
        host_cpus,
        functions,
        in_process,
        in_process_saturated_qps,
        socket_sweep,
        socket_per_query,
        socket_pipelined,
        saturation,
        answers_identical: reference == sweep_answers
            && reference == per_query_answers
            && reference == pipelined_answers,
    }
}

/// The invariants the acceptance gate (and CI) assert, independent of
/// timing noise.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn check_invariants(r: &RpcBenchResult) -> Result<(), String> {
    if !r.answers_identical {
        return Err("socket paths answered differently from the in-process sweep".to_string());
    }
    let inproc = &r.in_process.cold_counters;
    let sweep = &r.socket_sweep.cold_counters;
    let per_query = &r.socket_per_query.cold_counters;
    // The sweep frame must reproduce the in-process batched profile
    // exactly: the wire adds codec + transport, never extra locks or
    // cone traversals.
    if sweep.session_locks != inproc.session_locks {
        return Err(format!(
            "socket sweep changed the lock profile: {} locks vs {} in-process",
            sweep.session_locks, inproc.session_locks
        ));
    }
    if sweep.batch != inproc.batch {
        return Err(format!(
            "socket sweep changed the batch profile: {:?} vs {:?} in-process",
            sweep.batch, inproc.batch
        ));
    }
    if sweep.session_locks >= per_query.session_locks {
        return Err(format!(
            "sweep frame did not reduce lock acquisitions: {} >= {}",
            sweep.session_locks, per_query.session_locks
        ));
    }
    if per_query.batch.coalesced_queries != 0 {
        return Err(format!(
            "synchronous per-query frames unexpectedly coalesced {} queries",
            per_query.batch.coalesced_queries
        ));
    }
    if per_query.batch.singleton_queries != per_query.queries {
        return Err(format!(
            "per-query accounting broken: {} singletons for {} queries",
            per_query.batch.singleton_queries, per_query.queries
        ));
    }
    if sweep.batch.coalesced_queries + sweep.batch.singleton_queries != sweep.queries {
        return Err(format!(
            "sweep accounting broken: {} coalesced + {} singleton != {} queries",
            sweep.batch.coalesced_queries, sweep.batch.singleton_queries, sweep.queries
        ));
    }
    if sweep.batch.union_cone_walks != sweep.batch.batches {
        return Err(format!(
            "a cold coalesced batch must traverse exactly one union cone: \
             {} walks for {} batches",
            sweep.batch.union_cone_walks, sweep.batch.batches
        ));
    }
    let warm = &r.socket_sweep.warm_counters;
    if warm.batch.union_cone_walks != 0 {
        return Err(format!(
            "warm socket sweeps must answer without cone traversals, saw {}",
            warm.batch.union_cone_walks
        ));
    }
    // Pipelined per-query frames must keep the coalesced shape: every
    // session lock serves a whole drained batch (locks == batches +
    // singletons, so locks ≈ batches), never one lock per query. The
    // event loop may split a burst across reads, so allow a few extra
    // batches — but nowhere near one per query.
    let piped = &r.socket_pipelined.cold_counters;
    if piped.session_locks != piped.batch.batches + piped.batch.singleton_queries {
        return Err(format!(
            "pipelined lock accounting broken: {} locks vs {} batches + {} singletons",
            piped.session_locks, piped.batch.batches, piped.batch.singleton_queries
        ));
    }
    if piped.session_locks * 4 > piped.queries.max(1) {
        return Err(format!(
            "pipelined frames degenerated toward per-query locking: \
             {} locks for {} queries",
            piped.session_locks, piped.queries
        ));
    }
    if r.saturation.is_empty() {
        return Err("saturation matrix is empty".to_string());
    }
    for p in &r.saturation {
        if p.total_queries == 0 || p.elapsed.is_zero() {
            return Err(format!(
                "degenerate saturation point: {} queries in {:?} ({} conns, depth {})",
                p.total_queries, p.elapsed, p.conns, p.depth
            ));
        }
    }
    Ok(())
}

fn counters_json(c: &SweepCounters) -> String {
    format!(
        "{{\"queries\": {}, \"session_locks\": {}, \"batches\": {}, \
         \"coalesced_queries\": {}, \"singleton_queries\": {}, \
         \"union_cone_cells\": {}, \"union_cone_walks\": {}}}",
        c.queries,
        c.session_locks,
        c.batch.batches,
        c.batch.coalesced_queries,
        c.batch.singleton_queries,
        c.batch.union_cone_cells,
        c.batch.union_cone_walks
    )
}

fn variant_json(v: &VariantResult) -> String {
    format!(
        "{{\n    \"queries\": {}, \"cold_ms\": {:.3}, \"warm_ms_median\": {:.3}, \
         \"warm_qps_median\": {:.1},\n    \"cold_counters\": {},\n    \"warm_counters\": {}\n  }}",
        v.queries,
        v.cold.as_secs_f64() * 1e3,
        v.warm_median.as_secs_f64() * 1e3,
        v.warm_qps(),
        counters_json(&v.cold_counters),
        counters_json(&v.warm_counters)
    )
}

/// Renders the JSON artifact (hand-rolled; the workspace is offline).
pub fn to_json(profile: &str, params: &RpcBenchParams, r: &RpcBenchResult) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"rpc\",\n");
    s.push_str("  \"workload\": \"fig10_synthetic_octagon\",\n");
    s.push_str("  \"transport\": \"unix-socket\",\n");
    s.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    s.push_str(&format!("  \"host_cpus\": {},\n", r.host_cpus));
    s.push_str("  \"host_cpus_provenance\": \"available_parallelism at measurement time\",\n");
    s.push_str(&format!(
        "  \"grow_edits\": {}, \"seed\": {}, \"repeats\": {},\n",
        params.grow_edits, params.seed, params.repeats
    ));
    s.push_str(&format!("  \"functions\": {},\n", r.functions));
    s.push_str(&format!(
        "  \"in_process\": {},\n",
        variant_json(&r.in_process)
    ));
    s.push_str(&format!(
        "  \"in_process_saturated_qps\": {:.1},\n",
        r.in_process_saturated_qps
    ));
    s.push_str(&format!(
        "  \"socket_sweep\": {},\n",
        variant_json(&r.socket_sweep)
    ));
    s.push_str(&format!(
        "  \"socket_per_query\": {},\n",
        variant_json(&r.socket_per_query)
    ));
    s.push_str(&format!(
        "  \"socket_pipelined\": {},\n",
        variant_json(&r.socket_pipelined)
    ));
    s.push_str("  \"saturation\": [\n");
    for (i, p) in r.saturation.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"conns\": {}, \"depth\": {}, \"total_queries\": {}, \
             \"elapsed_ms\": {:.3}, \"qps\": {:.1}}}{}\n",
            p.conns,
            p.depth,
            p.total_queries,
            p.elapsed.as_secs_f64() * 1e3,
            p.qps(),
            if i + 1 < r.saturation.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"lock_ratio_sweep_vs_per_query\": {:.4},\n",
        r.socket_sweep.cold_counters.session_locks as f64
            / (r.socket_per_query.cold_counters.session_locks as f64).max(1.0)
    ));
    s.push_str(&format!(
        "  \"warm_qps_ratio_sweep_vs_per_query\": {:.4},\n",
        r.socket_sweep.warm_qps() / r.socket_per_query.warm_qps().max(1e-12)
    ));
    s.push_str(&format!(
        "  \"warm_qps_ratio_socket_vs_in_process_single_stream\": {:.4},\n",
        r.socket_sweep.warm_qps() / r.in_process.warm_qps().max(1e-12)
    ));
    s.push_str(&format!(
        "  \"warm_qps_ratio_socket_vs_in_process\": {:.4},\n",
        r.socket_vs_in_process_qps_ratio()
    ));
    s.push_str(&format!(
        "  \"answers_identical\": {}\n",
        r.answers_identical
    ));
    s.push_str("}\n");
    s
}

/// Validates a committed `BENCH_rpc.json` (required fields present and
/// the recorded invariants hold).
///
/// # Errors
///
/// A human-readable description of the first problem.
pub fn validate_artifact(json: &str) -> Result<(), String> {
    for field in [
        "\"bench\": \"rpc\"",
        "\"workload\"",
        "\"transport\"",
        "\"host_cpus\"",
        "\"functions\"",
        "\"in_process\"",
        "\"in_process_saturated_qps\"",
        "\"socket_sweep\"",
        "\"socket_per_query\"",
        "\"socket_pipelined\"",
        "\"saturation\"",
        "\"session_locks\"",
        "\"union_cone_walks\"",
        "\"lock_ratio_sweep_vs_per_query\"",
        "\"warm_qps_ratio_socket_vs_in_process\"",
        "\"answers_identical\": true",
    ] {
        if !json.contains(field) {
            return Err(format!("BENCH_rpc.json is missing {field}"));
        }
    }
    Ok(())
}

/// The recorded-throughput acceptance gate, applied to the *committed*
/// `BENCH_rpc.json` (never to a live smoke run, whose miniature
/// workload would make wall-clock CI-noisy): saturated socket sweep
/// throughput must hold ≥ 60% of the in-process baseline.
///
/// # Errors
///
/// A human-readable description when the recorded ratio is unreadable
/// or below the gate.
pub fn validate_recorded_gate(json: &str) -> Result<(), String> {
    let ratio = extract_number(json, "\"warm_qps_ratio_socket_vs_in_process\":")
        .ok_or("BENCH_rpc.json: unreadable warm_qps_ratio_socket_vs_in_process")?;
    if ratio < 0.60 {
        return Err(format!(
            "recorded socket/in-process throughput ratio {ratio:.4} is below the 0.60 gate"
        ));
    }
    Ok(())
}

/// Pulls the number following `key` out of the hand-rolled JSON.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let rest = &json[json.find(key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_socket_sweep_matches_in_process_profile() {
        let params = RpcBenchParams {
            grow_edits: 4,
            seed: 7,
            repeats: 1,
        };
        let r = run_rpc_bench(&params);
        check_invariants(&r).unwrap();
        assert!(r.functions >= 2, "fig10 workload has several functions");
        assert!(
            r.socket_sweep.cold_counters.batch.union_cone_cells > 0,
            "cold sweeps load union cones"
        );
        let json = to_json("smoke", &params, &r);
        validate_artifact(&json).unwrap();
    }
}
