//! Records (or checks) the interned-DAIG bench artifact `BENCH_daig.json`.
//!
//! ```text
//! # Record the full artifact (PR 1 workload/seed, medians of 7 sweeps):
//! $ cargo run --release --bin daig_bench -- --out BENCH_daig.json \
//!       --before-remeasured 45991
//!
//! # CI smoke: validate the committed artifact and fail on a >30%
//! # single-worker throughput regression against its smoke point:
//! $ cargo run --release --bin daig_bench -- --check BENCH_daig.json
//!
//! # CI trace-smoke: print the smoke median alone (machine-readable) …
//! $ BASE=$(cargo run --release -p dai-bench --no-default-features \
//!       --bin daig_bench -- --smoke-qps)
//! # … then gate a probes-compiled build against it at 5%:
//! $ cargo run --release --bin daig_bench -- --baseline-qps "$BASE" \
//!       --max-regress 0.05
//!
//! # CI transfer microbench: per-cell staged-closure vs interpreter
//! # latency plus an interleaved dual-mode smoke sweep:
//! $ cargo run --release --bin daig_bench -- --transfer-micro
//!
//! # CI explain-smoke: serve the fig10 octagon sweep with cost
//! # attribution on (cold + warm), abort unless the accounting identity
//! # holds and work/span ≥ 1, and print the full per-cell reports as
//! # JSON on stdout (human summary goes to stderr):
//! $ cargo run --release --bin daig_bench -- --explain > explain_fig10.json
//! ```

use dai_bench::daig_bench::{
    measure_explain, measure_micro, measure_throughput, measure_throughput_dual,
    measure_transfer_micro, measure_transfer_micro_fig10, to_json, validate_artifact,
    DaigBenchParams,
};

/// The single-worker qps recorded in PR 1's `BENCH_engine.json`
/// (workers=1 point; sessions 8, grow 40, seed 379422).
const PR1_FILE_QPS: f64 = 55697.9;

fn main() {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut profile = "full".to_string();
    let mut before_remeasured: Option<f64> = None;
    let mut max_regress = 0.30f64;
    let mut smoke_qps_only = false;
    let mut transfer_micro_only = false;
    let mut explain_only = false;
    let mut baseline_qps: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next(),
            "--check" => check_path = args.next(),
            "--profile" => profile = args.next().unwrap_or_default(),
            "--smoke-qps" => smoke_qps_only = true,
            "--transfer-micro" => transfer_micro_only = true,
            "--explain" => explain_only = true,
            "--baseline-qps" => {
                baseline_qps = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--baseline-qps takes a qps number")),
                );
            }
            "--before-remeasured" => {
                before_remeasured = args.next().and_then(|s| s.parse().ok());
            }
            "--max-regress" => {
                max_regress = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--max-regress takes a fraction"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: daig_bench [--out FILE.json] [--check FILE.json] \
                     [--profile full|smoke] [--before-remeasured QPS] [--max-regress 0.30] \
                     [--smoke-qps] [--baseline-qps QPS] [--transfer-micro] [--explain]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    // `--smoke-qps`: the smoke median alone on stdout, so CI can capture
    // a baseline number from one build (say, probes compiled out) and
    // feed it to another via `--baseline-qps`.
    if smoke_qps_only {
        let smoke = measure_throughput(&DaigBenchParams::smoke());
        println!("{:.1}", smoke.median());
        return;
    }

    // `--transfer-micro`: the per-cell staged-closure vs interpreter
    // latencies plus an interleaved dual-mode smoke sweep — the CI
    // transfer microbench (informational; the correctness gate is the
    // `transfer_compile` differential suite).
    if transfer_micro_only {
        let tmicro = measure_transfer_micro();
        println!(
            "transfer micro: compiled {:.1} ns, interp {:.1} ns ({:.2}x per cell), \
             fused {:.1} ns/stmt, {} compiled / {} interp edges, {} fused run(s)",
            tmicro.compiled_ns,
            tmicro.interp_ns,
            tmicro.speedup(),
            tmicro.fused_ns_per_stmt,
            tmicro.compiled_edges,
            tmicro.interp_edges,
            tmicro.fused_runs
        );
        let fig10 = measure_transfer_micro_fig10();
        println!(
            "transfer micro (fig10 population): compiled {:.1} ns, interp {:.1} ns \
             ({:.2}x per cell), {} staged / {} unstaged edges",
            fig10.compiled_ns,
            fig10.interp_ns,
            fig10.per_cell_ratio,
            fig10.staged_edges,
            fig10.unstaged_edges
        );
        let dual = measure_throughput_dual(&DaigBenchParams::smoke());
        println!(
            "transfer sweep (smoke, interleaved A/B): compiled median {:.1} qps, \
             interp median {:.1} qps ({:.2}x)",
            dual.0.median(),
            dual.1.median(),
            dual.0.median() / dual.1.median().max(1e-9)
        );
        return;
    }

    // `--explain`: the CI explain-smoke gate. Serves the fig10 octagon
    // sweep with attribution on; `measure_explain` aborts unless both
    // captures are accounting-exact against the engine's counters, and
    // the gate below enforces work/span ≥ 1 (span is a path through the
    // work, so a ratio under 1 means the capture is lying). The per-cell
    // reports go to stdout as one JSON object for artifact upload.
    if explain_only {
        let ex = measure_explain();
        eprintln!(
            "explain (fig10 octagon, cold): {} cells, {} fixes, work {} ns, span {} ns, \
             work/span {:.2}x",
            ex.cold.cells.len(),
            ex.cold.fixes.len(),
            ex.cold.work_ns,
            ex.cold.span_ns,
            ex.cold.parallelism()
        );
        eprintln!(
            "explain (fig10 octagon, warm): {} cells, work {} ns, work/span {:.2}x",
            ex.warm.cells.len(),
            ex.warm.work_ns,
            ex.warm.parallelism()
        );
        if ex.cold.parallelism() < 1.0 || ex.warm.parallelism() < 1.0 {
            die("explain capture reports work/span < 1.0 — span exceeds attributed work");
        }
        eprintln!("explain accounting identity holds on both captures — OK");
        println!(
            "{{\"workload\": \"fig10_synthetic_octagon\",\n \"cold\": {},\n \"warm\": {}}}",
            ex.cold.to_json(10),
            ex.warm.to_json(10)
        );
        return;
    }

    // `--baseline-qps`: gate this build's smoke median against a number
    // measured elsewhere — the trace-smoke CI job's probes-compiled vs
    // no-probe comparison.
    if let Some(base) = baseline_qps {
        let smoke = measure_throughput(&DaigBenchParams::smoke());
        let measured = smoke.median();
        let floor = base * (1.0 - max_regress);
        println!(
            "trace probes compiled: {}; runtime tracing enabled: {}",
            dai_trace::TraceConfig::probes_compiled(),
            dai_trace::config().is_enabled(),
        );
        println!(
            "measured smoke median {measured:.1} qps vs baseline {base:.1} \
             (floor {floor:.1}, tolerance {max_regress})"
        );
        if measured < floor {
            die(&format!(
                "warm-path qps regressed vs baseline: measured {measured:.1} < floor {floor:.1} \
                 (baseline {base:.1}, tolerance {max_regress})"
            ));
        }
        println!("warm-path throughput within {max_regress} of the baseline — OK");
        return;
    }

    if let Some(path) = check_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        let committed_smoke =
            validate_artifact(&committed).unwrap_or_else(|e| die(&format!("invalid {path}: {e}")));
        println!(
            "{path}: all required fields present; committed smoke median {committed_smoke:.1} qps"
        );
        // The re-run exercises the compiled warm path — the default
        // engine configuration since the staged-transfer PR.
        let smoke = measure_throughput(&DaigBenchParams::smoke());
        let measured = smoke.median();
        println!(
            "measured smoke median (compiled transfers): {measured:.1} qps ({} queries/sweep)",
            smoke.queries
        );
        let floor = committed_smoke * (1.0 - max_regress);
        if measured < floor {
            die(&format!(
                "single-worker qps regressed: measured {measured:.1} < floor {floor:.1} \
                 (committed {committed_smoke:.1}, tolerance {max_regress})"
            ));
        }
        println!("throughput within {max_regress} of the committed smoke point — OK");
        return;
    }

    let params = match profile.as_str() {
        "full" => DaigBenchParams::full(),
        "smoke" => DaigBenchParams::smoke(),
        other => die(&format!("unknown profile `{other}`")),
    };
    // Smoke first, from a near-cold process: `--check` re-measures the
    // smoke point at process start, so recording it after minutes of
    // full-profile load would bake in a systematically hot committed
    // number and make the 30% regression floor flaky.
    println!("measuring smoke profile…");
    let smoke = measure_throughput(&DaigBenchParams::smoke());
    println!("smoke: median {:.1} qps", smoke.median());
    println!("measuring {profile} profile ({} repeats)…", params.repeats);
    let full = measure_throughput(&params);
    println!(
        "after: {} queries/sweep, median {:.1} qps, best {:.1} qps",
        full.queries,
        full.median(),
        full.best()
    );
    println!("measuring compiled vs interpreted sweep (interleaved A/B)…");
    let dual = measure_throughput_dual(&params);
    println!(
        "transfer sweep: compiled median {:.1} qps, interp median {:.1} qps ({:.2}x)",
        dual.0.median(),
        dual.1.median(),
        dual.0.median() / dual.1.median().max(1e-9)
    );
    println!("measuring per-cell transfer latency…");
    let tmicro = measure_transfer_micro();
    println!(
        "transfer micro: compiled {:.1} ns, interp {:.1} ns ({:.2}x), fused {:.1} ns/stmt, \
         {} compiled / {} interp edges, {} fused run(s)",
        tmicro.compiled_ns,
        tmicro.interp_ns,
        tmicro.speedup(),
        tmicro.fused_ns_per_stmt,
        tmicro.compiled_edges,
        tmicro.interp_edges,
        tmicro.fused_runs
    );
    println!("measuring per-cell transfer latency (fig10 population)…");
    let tmicro_fig10 = measure_transfer_micro_fig10();
    println!(
        "transfer micro (fig10): compiled {:.1} ns, interp {:.1} ns ({:.2}x), \
         {} staged / {} unstaged edges",
        tmicro_fig10.compiled_ns,
        tmicro_fig10.interp_ns,
        tmicro_fig10.per_cell_ratio,
        tmicro_fig10.staged_edges,
        tmicro_fig10.unstaged_edges
    );
    println!("measuring explain attribution (fig10 cold + warm sweeps)…");
    let explain = measure_explain();
    println!(
        "explain: cold {} cells / {} fixes, work/span {:.2}x; warm {} cells, work/span {:.2}x \
         (accounting exact on both)",
        explain.cold.cells.len(),
        explain.cold.fixes.len(),
        explain.cold.parallelism(),
        explain.warm.cells.len(),
        explain.warm.parallelism()
    );
    println!("measuring representation micro-costs…");
    let micro = measure_micro();
    println!(
        "micro: initial_daig {:.0} ns, cold exit query {:.0} ns, edit+requery {:.0} ns, \
         cone_walks {} (unrolls {})",
        micro.initial_daig_ns,
        micro.cold_exit_query_ns,
        micro.edit_requery_ns,
        micro.cone_walks,
        micro.unrolls
    );
    println!(
        "speedup vs PR 1 file ({PR1_FILE_QPS:.1}): {:.2}x",
        full.median() / PR1_FILE_QPS
    );
    if let Some(q) = before_remeasured {
        println!(
            "speedup vs remeasured baseline ({q:.1}): {:.2}x",
            full.median() / q
        );
    }

    let json = to_json(
        &profile,
        &params,
        &full,
        &smoke,
        &micro,
        &dual,
        &tmicro,
        &tmicro_fig10,
        &explain,
        PR1_FILE_QPS,
        before_remeasured,
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            println!("artifact written to {path}");
        }
        None => print!("{json}"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("daig_bench: {msg}");
    std::process::exit(2);
}
