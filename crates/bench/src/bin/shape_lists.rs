//! Regenerates the §7.2 shape-analysis result: memory safety and
//! list-well-formedness verification of `append` (the paper's Fig. 1) and
//! the linked-list utilities, with the demanded-unrolling count.
//!
//! Paper reference: all procedures verified; append's loop converges in
//! one demanded unrolling.

use dai_bench::lists::run_lists;

fn main() {
    println!("== §7.2: separation-logic shape analysis of list procedures ==");
    println!("(paper: all verified; append converges in one demanded unrolling)\n");
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10}",
        "procedure", "memory-safe", "returns-list", "unrolls", "disjuncts"
    );
    for c in run_lists() {
        println!(
            "{:<10} {:>12} {:>14} {:>10} {:>10}",
            c.name,
            if c.memory_safe { "yes" } else { "NO" },
            match c.returns_list {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "n/a (int)",
            },
            c.unrollings,
            c.exit_disjuncts
        );
    }
}
