//! Records the persistence baseline (`BENCH_persist.json`) and serves as
//! the CI roundtrip gate for `dai-persist`.
//!
//! ```text
//! $ cargo run --release --bin persist_bench -- --out BENCH_persist.json
//! $ cargo run --release --bin persist_bench -- --profile smoke
//! $ cargo run --release --bin persist_bench -- --check BENCH_persist.json
//! ```
//!
//! `--check` validates the committed artifact's fields, then re-runs the
//! smoke profile and asserts the count-based invariants (identical
//! answers cold vs restored; strictly fewer `Q-Miss` computations warm
//! than cold) — deterministic counters, so shared-runner timing noise
//! cannot flake the gate.

use dai_bench::persist_bench::{
    check_invariants, run_persist_bench, to_json, validate_artifact, PersistBenchParams,
    PersistBenchResult,
};

fn main() {
    let mut profile = "full".to_string();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                profile = args
                    .next()
                    .filter(|p| p == "full" || p == "smoke")
                    .unwrap_or_else(|| die("--profile takes full|smoke"));
            }
            "--out" => out_path = args.next(),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| die("--check FILE"))),
            "--help" | "-h" => {
                println!(
                    "usage: persist_bench [--profile full|smoke] [--out FILE.json] \
                     [--check BENCH_persist.json]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    if let Some(path) = check_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        validate_artifact(&committed).unwrap_or_else(|e| die(&e));
        println!("{path}: all required fields present");
        // The live gate: a fresh save/load roundtrip on the smoke profile
        // must answer identically and measurably reduce evaluations.
        let r = run(&PersistBenchParams::smoke());
        check_invariants(&r).unwrap_or_else(|e| die(&e));
        println!(
            "roundtrip ok: answers identical; computed cold {} / memo-warm {} / full-warm {}",
            r.cold.computed, r.memo_warm.computed, r.full_warm.computed
        );
        return;
    }

    let params = match profile.as_str() {
        "smoke" => PersistBenchParams::smoke(),
        _ => PersistBenchParams::full(),
    };
    let r = run(&params);
    check_invariants(&r).unwrap_or_else(|e| die(&e));
    print_table(&r);
    if let Some(path) = out_path {
        let json = to_json(&profile, &params, &r);
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("baseline written to {path}");
    }
}

fn run(params: &PersistBenchParams) -> PersistBenchResult {
    let dir = std::env::temp_dir().join(format!("dai-persist-bench-{}", std::process::id()));
    let r = run_persist_bench(params, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    r
}

fn print_table(r: &PersistBenchResult) {
    println!(
        "persist_bench (Fig. 10 workload, octagon) — host_cpus {}, snapshot {} bytes \
         ({} DAIGs, {} memo entries), save {:.2?}, load {:.2?}",
        r.host_cpus, r.snapshot_bytes, r.funcs_saved, r.memo_entries, r.save, r.load
    );
    println!(
        "{:>10} {:>9} {:>13} {:>10} {:>13} {:>9}",
        "variant", "queries", "elapsed(med)", "computed", "memo-matched", "reused"
    );
    for (label, v) in [
        ("cold", &r.cold),
        ("memo-warm", &r.memo_warm),
        ("full-warm", &r.full_warm),
    ] {
        println!(
            "{:>10} {:>9} {:>13.3?} {:>10} {:>13} {:>9}",
            label, v.queries, v.elapsed, v.computed, v.memo_matched, v.reused
        );
    }
    println!(
        "full-warm computes {:.1}% of cold's cell evaluations; answers identical: {}",
        100.0 * r.full_warm.computed as f64 / (r.cold.computed as f64).max(1.0),
        r.answers_identical
    );
}

fn die(msg: &str) -> ! {
    eprintln!("persist_bench: {msg}");
    std::process::exit(2)
}
