//! Records an engine-scaling baseline: runs the worker-count sweep of
//! [`dai_bench::engine_scaling`] and writes the points (plus hardware
//! context, without which scaling numbers are meaningless) as JSON.
//!
//! ```text
//! $ cargo run --release --bin engine_scaling -- --out BENCH_engine.json
//! $ cargo run --release --bin engine_scaling -- --sessions 16 --grow 80
//! ```

use dai_bench::engine_scaling::{
    flat_scaling_check, format_points, run_scaling, speedup_base, ScalingParams, ScalingRun,
};
use std::fmt::Write as _;

fn main() {
    let mut params = ScalingParams::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => params.sessions = num(args.next(), "--sessions"),
            "--grow" => params.grow_edits = num(args.next(), "--grow"),
            "--seed" => params.seed = num(args.next(), "--seed") as u64,
            "--workers" => {
                params.worker_counts = args
                    .next()
                    .unwrap_or_default()
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse()
                            .unwrap_or_else(|_| die("--workers takes N,N,N"))
                    })
                    .collect();
            }
            "--out" => out_path = args.next(),
            "--help" | "-h" => {
                println!(
                    "usage: engine_scaling [--sessions N] [--grow N] [--seed N] \
                     [--workers 1,2,4,8] [--out FILE.json]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    let run = run_scaling(&params);
    println!("host_cpus: {}", run.host_cpus);
    print!("{}", format_points(&run.points));

    // The scaling sanity gate: skipped (with an explanation) on 1-CPU
    // hosts, where every worker count measures the same serial machine.
    // Whether it was skipped is recorded in the artifact, so a baseline
    // blessed on a serial host can't masquerade as a verified one.
    let skipped_flat_assertion = match flat_scaling_check(&run) {
        Ok(Some(skipped)) => {
            println!("{skipped}");
            true
        }
        Ok(None) => {
            println!(
                "flat-scaling assertion passed (host_cpus = {})",
                run.host_cpus
            );
            false
        }
        Err(msg) => die(&msg),
    };

    if let Some(path) = out_path {
        let json = to_json(&params, &run, skipped_flat_assertion);
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("baseline written to {path}");
    }
}

fn num(v: Option<String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("engine_scaling: {msg}");
    std::process::exit(2)
}

/// Hand-rolled JSON (the workspace is offline; no serde): stable field
/// order, one point object per worker count. `host_cpus` comes from the
/// [`ScalingRun`] — sampled when the sweep *ran*, so an artifact can
/// never carry throughput from one machine and a CPU count from another.
fn to_json(params: &ScalingParams, run: &ScalingRun, skipped_flat_assertion: bool) -> String {
    let points = &run.points[..];
    let base = speedup_base(points);
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"bench\": \"engine_scaling\",");
    let _ = writeln!(s, "  \"workload\": \"fig10_synthetic_octagon\",");
    let _ = writeln!(s, "  \"host_cpus\": {},", run.host_cpus);
    let _ = writeln!(
        s,
        "  \"host_cpus_provenance\": \"available_parallelism at measurement time\","
    );
    let _ = writeln!(s, "  \"skipped_flat_assertion\": {skipped_flat_assertion},");
    let _ = writeln!(s, "  \"sessions\": {},", params.sessions);
    let _ = writeln!(s, "  \"grow_edits\": {},", params.grow_edits);
    let _ = writeln!(s, "  \"seed\": {},", params.seed);
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workers\": {}, \"queries\": {}, \"elapsed_ms\": {:.3}, \
             \"qps\": {:.1}, \"speedup_vs_1\": {:.3}}}",
            p.workers,
            p.queries,
            p.elapsed.as_secs_f64() * 1e3,
            p.qps,
            p.qps / base.max(1e-9),
        );
        s.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
