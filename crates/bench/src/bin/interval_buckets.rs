//! Regenerates the §7.2 interval / context-sensitivity result: the number
//! of array accesses verified safe under 0-, 1-, and 2-call-string
//! context policies on the Buckets.js-style array suite.
//!
//! Paper reference numbers: k=2 verified 85/85, k=1 verified 71/74 (96%),
//! k=0 verified 4/18 (22%).

use dai_bench::buckets::{run_buckets, run_buckets_functional};
use dai_core::interproc::ContextPolicy;

fn main() {
    println!("== §7.2: interval array-bounds verification vs. context sensitivity ==");
    println!("(paper: k=2 -> 85/85 100%, k=1 -> 71/74 96%, k=0 -> 4/18 22%)\n");
    println!(
        "{:<22} {:>10} {:>8} {:>8}",
        "policy", "verified", "total", "ratio"
    );
    for (name, policy) in [
        ("2-call-string", ContextPolicy::CallString(2)),
        ("1-call-string", ContextPolicy::CallString(1)),
        ("context-insensitive", ContextPolicy::Insensitive),
    ] {
        let r = run_buckets(policy);
        println!(
            "{:<22} {:>10} {:>8} {:>7.0}%",
            name,
            r.verified,
            r.total,
            r.ratio() * 100.0
        );
    }
    // Extension beyond the paper's three policies: the §2.3 functional
    // approach (entry-state-keyed summaries), at least as precise as any
    // k-call-string policy.
    let r = run_buckets_functional();
    println!(
        "{:<22} {:>10} {:>8} {:>7.0}%",
        "functional (§2.3)",
        r.verified,
        r.total,
        r.ratio() * 100.0
    );
}
