//! Regenerates Fig. 10: the scalability comparison of the four analysis
//! configurations on the §7.3 synthetic workload (octagon domain,
//! context-insensitive, interleaved random edits and queries).
//!
//! Prints the summary statistics table (always), and optionally the CDF
//! (`--cdf`) and the per-sample scatter data (`--scatter`, CSV). Use
//! `--edits 3000 --trials 9` for the paper-scale run.

use dai_bench::harness::{cdf, format_summary, run_fig10, summarize, Fig10Params};
use std::env;

fn main() {
    let mut params = Fig10Params::default();
    let mut show_cdf = false;
    let mut show_scatter = false;
    let mut chrome_trace: Option<String> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--edits" => {
                params.edits = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--edits needs a number"));
            }
            "--trials" => {
                params.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--trials needs a number"));
            }
            "--queries" => {
                params.queries_per_edit = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queries needs a number"));
            }
            "--cdf" => show_cdf = true,
            "--scatter" => show_scatter = true,
            "--chrome-trace" => {
                chrome_trace = Some(
                    args.next()
                        .unwrap_or_else(|| die("--chrome-trace needs a path")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "fig10 [--edits N] [--trials T] [--queries Q] [--cdf] [--scatter] \
                     [--chrome-trace FILE.json]\n\
                     Reproduces Fig. 10 of 'Demanded Abstract Interpretation' (PLDI 2021).\n\
                     Paper-scale: --edits 3000 --trials 9 --queries 5"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    eprintln!(
        "fig10: {} edits x {} trials, {} queries/edit, 4 configurations \
         (octagon, context-insensitive)",
        params.edits, params.trials, params.queries_per_edit
    );
    if chrome_trace.is_some() {
        if !dai_trace::TraceConfig::probes_compiled() {
            die("--chrome-trace needs trace probes compiled in (build with default features)");
        }
        let _ = dai_trace::drain();
        dai_trace::config().set_enabled(true);
    }
    let samples = run_fig10(params);
    if let Some(path) = &chrome_trace {
        dai_trace::config().set_enabled(false);
        let dump = dai_trace::drain();
        let json = dai_trace::chrome_trace_json(&dump);
        // Re-parse what was just emitted: the smoke run dies — loudly —
        // if the exporter ever produces JSON a viewer would reject.
        let summary = dai_trace::validate_chrome_trace(&json)
            .unwrap_or_else(|e| die(&format!("emitted Chrome trace does not re-parse: {e}")));
        std::fs::write(path, &json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        eprintln!(
            "fig10: chrome trace written to {path}: {} events \
             ({} spans, {} instants, {} thread-metadata; {} record(s) dropped)",
            summary.total, summary.complete, summary.instants, summary.metadata, dump.dropped
        );
    }

    println!("== Fig. 10 summary table (per-configuration latency) ==");
    print!("{}", format_summary(&summarize(&samples)));

    if show_cdf {
        println!("\n== Fig. 10 CDF (fraction of runs completed within t) ==");
        println!("config,t_ms,fraction");
        for p in cdf(&samples, 40) {
            println!(
                "{},{:.3},{:.4}",
                p.config.label(),
                p.upto.as_secs_f64() * 1e3,
                p.fraction
            );
        }
    }

    if show_scatter {
        println!("\n== Fig. 10 scatter data (program size vs latency) ==");
        println!("config,trial,edit,program_size,latency_ms");
        for s in &samples {
            println!(
                "{},{},{},{},{:.3}",
                s.config.label(),
                s.trial,
                s.edit_index,
                s.program_size,
                s.latency.as_secs_f64() * 1e3
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fig10: {msg}");
    std::process::exit(2);
}
