//! Regenerates Fig. 10: the scalability comparison of the four analysis
//! configurations on the §7.3 synthetic workload (octagon domain,
//! context-insensitive, interleaved random edits and queries).
//!
//! Prints the summary statistics table (always), and optionally the CDF
//! (`--cdf`) and the per-sample scatter data (`--scatter`, CSV). Use
//! `--edits 3000 --trials 9` for the paper-scale run.

use dai_bench::harness::{cdf, format_summary, run_fig10, summarize, Fig10Params};
use std::env;

fn main() {
    let mut params = Fig10Params::default();
    let mut show_cdf = false;
    let mut show_scatter = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--edits" => {
                params.edits = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--edits needs a number"));
            }
            "--trials" => {
                params.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--trials needs a number"));
            }
            "--queries" => {
                params.queries_per_edit = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queries needs a number"));
            }
            "--cdf" => show_cdf = true,
            "--scatter" => show_scatter = true,
            "--help" | "-h" => {
                println!(
                    "fig10 [--edits N] [--trials T] [--queries Q] [--cdf] [--scatter]\n\
                     Reproduces Fig. 10 of 'Demanded Abstract Interpretation' (PLDI 2021).\n\
                     Paper-scale: --edits 3000 --trials 9 --queries 5"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    eprintln!(
        "fig10: {} edits x {} trials, {} queries/edit, 4 configurations \
         (octagon, context-insensitive)",
        params.edits, params.trials, params.queries_per_edit
    );
    let samples = run_fig10(params);

    println!("== Fig. 10 summary table (per-configuration latency) ==");
    print!("{}", format_summary(&summarize(&samples)));

    if show_cdf {
        println!("\n== Fig. 10 CDF (fraction of runs completed within t) ==");
        println!("config,t_ms,fraction");
        for p in cdf(&samples, 40) {
            println!(
                "{},{:.3},{:.4}",
                p.config.label(),
                p.upto.as_secs_f64() * 1e3,
                p.fraction
            );
        }
    }

    if show_scatter {
        println!("\n== Fig. 10 scatter data (program size vs latency) ==");
        println!("config,trial,edit,program_size,latency_ms");
        for s in &samples {
            println!(
                "{},{},{},{},{:.3}",
                s.config.label(),
                s.trial,
                s.edit_index,
                s.program_size,
                s.latency.as_secs_f64() * 1e3
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fig10: {msg}");
    std::process::exit(2);
}
