//! Records (or checks) the replication + sharding benchmark.
//!
//! ```text
//! replica_bench [--profile full|smoke] [--out FILE.json] [--check FILE.json]
//! ```
//!
//! `--out` writes the JSON artifact (`BENCH_replica.json` in CI).
//! `--check` validates a committed artifact's recorded invariants, then
//! re-runs the smoke profile live and gates on [`check_invariants`] —
//! the deterministic facts (follower equality, zero lag, closed
//! accounting), never wall-clock.

use dai_bench::replica_bench::{
    check_invariants, run_replica_bench, to_json, validate_artifact, ReplicaBenchParams,
    ReplicaBenchResult,
};

fn die(msg: &str) -> ! {
    eprintln!("replica_bench: {msg}");
    std::process::exit(2);
}

fn print_table(r: &ReplicaBenchResult) {
    println!(
        "replica bench: {} cpus, {} queries per sweep",
        r.host_cpus, r.queries_per_sweep
    );
    println!("  sessions  engines  queries      ms        qps  accounting");
    for p in &r.scaling {
        println!(
            "  {:>8}  {:>7}  {:>7}  {:>8.1}  {:>9.0}  {}",
            p.sessions,
            p.engines,
            p.total_queries,
            p.elapsed.as_secs_f64() * 1e3,
            p.qps(),
            if p.accounting_closed() {
                "closed"
            } else {
                "OPEN"
            }
        );
    }
    let rep = &r.replication;
    println!(
        "  catch-up: {} frames in {:.1} ms; after restart {:.1} ms; lag {}",
        rep.initial.applied,
        rep.initial.elapsed.as_secs_f64() * 1e3,
        rep.restart.elapsed.as_secs_f64() * 1e3,
        rep.lag_after
    );
    println!(
        "  follower equality: answers {}, dot {}",
        rep.answers_equal, rep.dot_equal
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = "full".to_string();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => {
                i += 1;
                profile = args
                    .get(i)
                    .unwrap_or_else(|| die("--profile needs full|smoke"))
                    .clone();
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--out needs a file path"))
                        .clone(),
                );
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--check needs a recorded artifact path"))
                        .clone(),
                );
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    if let Some(recorded) = check {
        let json = std::fs::read_to_string(&recorded)
            .unwrap_or_else(|e| die(&format!("cannot read {recorded}: {e}")));
        if let Err(e) = validate_artifact(&json) {
            die(&format!("recorded artifact invalid: {e}"));
        }
        println!("recorded artifact {recorded}: ok");
        // Then re-measure live at smoke scale and gate on the
        // deterministic invariants.
        let params = ReplicaBenchParams::smoke();
        let result = run_replica_bench(&params);
        print_table(&result);
        if let Err(e) = check_invariants(&result) {
            die(&format!("live invariant violated: {e}"));
        }
        println!("live smoke invariants: ok");
        return;
    }

    let params = match profile.as_str() {
        "full" => ReplicaBenchParams::full(),
        "smoke" => ReplicaBenchParams::smoke(),
        other => die(&format!("unknown profile {other}")),
    };
    let result = run_replica_bench(&params);
    print_table(&result);
    if let Err(e) = check_invariants(&result) {
        die(&format!("invariant violated: {e}"));
    }
    let json = to_json(&profile, &params, &result);
    if let Err(e) = validate_artifact(&json) {
        die(&format!("self-check of rendered artifact failed: {e}"));
    }
    if let Some(path) = out {
        std::fs::write(&path, &json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
}
