//! Records the socket-vs-in-process baseline (`BENCH_rpc.json`) and
//! serves as the CI wire-protocol gate for `dai-rpc`.
//!
//! ```text
//! $ cargo run --release --bin rpc_bench -- --out BENCH_rpc.json
//! $ cargo run --release --bin rpc_bench -- --profile smoke
//! $ cargo run --release --bin rpc_bench -- --check BENCH_rpc.json
//! ```
//!
//! `--check` validates the committed artifact (required fields, and the
//! recorded saturated socket/in-process throughput ratio holding the
//! ≥ 60% acceptance gate), then re-runs the smoke profile — including
//! the connection-count × pipelined-depth saturation sweep — and
//! asserts the count-based invariants: identical answers through every
//! socket shape, the sweep frame reproducing the in-process
//! `BatchStats` lock/walk profile exactly, pipelined per-query frames
//! keeping locks ≈ batches (never ≈ queries), and strictly fewer
//! session locks for one sweep frame than for per-query frames —
//! deterministic counters, so shared-runner timing noise cannot flake
//! the gate (wall-clock is gated only on the committed artifact).

use dai_bench::rpc_bench::{
    check_invariants, run_rpc_bench, to_json, validate_artifact, validate_recorded_gate,
    RpcBenchParams, RpcBenchResult,
};

fn main() {
    let mut profile = "full".to_string();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                profile = args
                    .next()
                    .filter(|p| p == "full" || p == "smoke")
                    .unwrap_or_else(|| die("--profile takes full|smoke"));
            }
            "--out" => out_path = args.next(),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| die("--check FILE"))),
            "--help" | "-h" => {
                println!(
                    "usage: rpc_bench [--profile full|smoke] [--out FILE.json] \
                     [--check BENCH_rpc.json]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    if let Some(path) = check_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        validate_artifact(&committed).unwrap_or_else(|e| die(&e));
        validate_recorded_gate(&committed).unwrap_or_else(|e| die(&e));
        println!("{path}: all required fields present, recorded throughput ratio ≥ 0.60");
        // The live gate: socket answers identical to in-process, one
        // sweep frame strictly cheaper in session locks than per-query
        // frames, pipelined frames coalescing, and the saturation
        // matrix well-formed.
        let r = run_rpc_bench(&RpcBenchParams::smoke());
        check_invariants(&r).unwrap_or_else(|e| die(&e));
        println!(
            "wire ok: answers identical; locks {} sweep-frame vs {} pipelined vs {} per-query \
             frames (in-process sweep {}); {} batches, {} union-cone walks; \
             {} saturation points",
            r.socket_sweep.cold_counters.session_locks,
            r.socket_pipelined.cold_counters.session_locks,
            r.socket_per_query.cold_counters.session_locks,
            r.in_process.cold_counters.session_locks,
            r.socket_sweep.cold_counters.batch.batches,
            r.socket_sweep.cold_counters.batch.union_cone_walks,
            r.saturation.len(),
        );
        return;
    }

    let params = match profile.as_str() {
        "smoke" => RpcBenchParams::smoke(),
        _ => RpcBenchParams::full(),
    };
    let r = run_rpc_bench(&params);
    check_invariants(&r).unwrap_or_else(|e| die(&e));
    print_table(&r);
    if let Some(path) = out_path {
        let json = to_json(&profile, &params, &r);
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("baseline written to {path}");
    }
}

fn print_table(r: &RpcBenchResult) {
    println!(
        "rpc_bench (Fig. 10 workload, octagon, unix socket) — host_cpus {}, {} functions, \
         {} queries/sweep",
        r.host_cpus, r.functions, r.in_process.queries
    );
    println!(
        "{:>17} {:>12} {:>14} {:>13} {:>8} {:>11} {:>11}",
        "variant", "cold", "warm(median)", "warm qps", "locks", "batches", "cone walks"
    );
    for (label, v) in [
        ("in-process sweep", &r.in_process),
        ("socket sweep", &r.socket_sweep),
        ("socket pipelined", &r.socket_pipelined),
        ("socket per-query", &r.socket_per_query),
    ] {
        println!(
            "{:>17} {:>12.3?} {:>14.3?} {:>13.1} {:>8} {:>11} {:>11}",
            label,
            v.cold,
            v.warm_median,
            v.warm_qps(),
            v.cold_counters.session_locks,
            v.cold_counters.batch.batches,
            v.cold_counters.batch.union_cone_walks,
        );
    }
    println!(
        "in-process saturated: {:.1} qps (best over 1/2/4 threads)",
        r.in_process_saturated_qps
    );
    println!("saturation (connections × pipelined depth):");
    for p in &r.saturation {
        println!(
            "{:>17} {:>12} {:>14.3?} {:>13.1}",
            format!("{} conn{}", p.conns, if p.conns == 1 { "" } else { "s" }),
            format!("depth {}", p.depth),
            p.elapsed,
            p.qps(),
        );
    }
    println!(
        "sweep frame takes {:.1}% of per-query locks; single-stream socket sweep runs at \
         {:.1}% of in-process qps, saturated at {:.1}%; answers identical: {}",
        100.0 * r.socket_sweep.cold_counters.session_locks as f64
            / (r.socket_per_query.cold_counters.session_locks as f64).max(1.0),
        100.0 * r.socket_sweep.warm_qps() / r.in_process.warm_qps().max(1e-12),
        100.0 * r.socket_vs_in_process_qps_ratio(),
        r.answers_identical
    );
}

fn die(msg: &str) -> ! {
    eprintln!("rpc_bench: {msg}");
    std::process::exit(2)
}
