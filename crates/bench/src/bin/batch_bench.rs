//! Records the query-batching baseline (`BENCH_batch.json`) and serves as
//! the CI coalescing gate for `dai-engine`.
//!
//! ```text
//! $ cargo run --release --bin batch_bench -- --out BENCH_batch.json
//! $ cargo run --release --bin batch_bench -- --profile smoke
//! $ cargo run --release --bin batch_bench -- --check BENCH_batch.json
//! ```
//!
//! `--check` validates the committed artifact's fields, then re-runs the
//! smoke profile and asserts the count-based invariants: identical
//! answers batched vs sequential, strictly fewer session-lock
//! acquisitions batched, exactly one lock and one union-cone traversal
//! per cold coalesced batch — deterministic counters, so shared-runner
//! timing noise cannot flake the gate.

use dai_bench::batch_bench::{
    check_invariants, run_batch_bench, to_json, validate_artifact, BatchBenchParams,
    BatchBenchResult,
};

fn main() {
    let mut profile = "full".to_string();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                profile = args
                    .next()
                    .filter(|p| p == "full" || p == "smoke")
                    .unwrap_or_else(|| die("--profile takes full|smoke"));
            }
            "--out" => out_path = args.next(),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| die("--check FILE"))),
            "--help" | "-h" => {
                println!(
                    "usage: batch_bench [--profile full|smoke] [--out FILE.json] \
                     [--check BENCH_batch.json]"
                );
                return;
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }

    if let Some(path) = check_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        validate_artifact(&committed).unwrap_or_else(|e| die(&e));
        println!("{path}: all required fields present");
        // The live gate: a fresh smoke comparison must answer identically
        // and take strictly fewer locks batched than sequential.
        let r = run_batch_bench(&BatchBenchParams::smoke());
        check_invariants(&r).unwrap_or_else(|e| die(&e));
        println!(
            "coalescing ok: answers identical; locks {} batched vs {} sequential \
             ({} batches, {} union-cone walks)",
            r.batched.cold_counters.session_locks,
            r.sequential.cold_counters.session_locks,
            r.batched.cold_counters.batch.batches,
            r.batched.cold_counters.batch.union_cone_walks,
        );
        return;
    }

    let params = match profile.as_str() {
        "smoke" => BatchBenchParams::smoke(),
        _ => BatchBenchParams::full(),
    };
    let r = run_batch_bench(&params);
    check_invariants(&r).unwrap_or_else(|e| die(&e));
    print_table(&r);
    if let Some(path) = out_path {
        let json = to_json(&profile, &params, &r);
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        println!("baseline written to {path}");
    }
}

fn print_table(r: &BatchBenchResult) {
    println!(
        "batch_bench (Fig. 10 workload, octagon) — host_cpus {}, {} functions, {} queries/sweep",
        r.host_cpus, r.functions, r.sequential.queries
    );
    println!(
        "{:>11} {:>12} {:>14} {:>13} {:>8} {:>11} {:>11}",
        "variant", "cold", "warm(median)", "warm qps", "locks", "batches", "cone walks"
    );
    for (label, v) in [("sequential", &r.sequential), ("batched", &r.batched)] {
        println!(
            "{:>11} {:>12.3?} {:>14.3?} {:>13.1} {:>8} {:>11} {:>11}",
            label,
            v.cold,
            v.warm_median,
            v.warm_qps(),
            v.cold_counters.session_locks,
            v.cold_counters.batch.batches,
            v.cold_counters.batch.union_cone_walks,
        );
    }
    println!(
        "batched takes {:.1}% of sequential's lock acquisitions; answers identical: {}",
        100.0 * r.batched.cold_counters.session_locks as f64
            / (r.sequential.cold_counters.session_locks as f64).max(1.0),
        r.answers_identical
    );
}

fn die(msg: &str) -> ! {
    eprintln!("batch_bench: {msg}");
    std::process::exit(2)
}
