//! Batched vs sequential query dispatch behind `BENCH_batch.json`.
//!
//! The engine's query coalescing answers every concurrently pending query
//! against one `(session, function)` from a single union demanded-cone
//! evaluation under a single session-lock acquisition, instead of one
//! lock round-trip (and one cone) per query. This harness quantifies
//! that on the Fig. 10 synthetic octagon workload: a session is grown by
//! random edits, and the full `(function × location)` sweep is then
//! measured two ways on fresh, identically grown engines:
//!
//! * **sequential** — one synchronous `Request::Query` at a time: every
//!   query is its own drain, so the sweep takes one session-lock
//!   acquisition *per query* and coalesces nothing (the pre-batching
//!   dispatch);
//! * **batched** — one coalesced batch per function through
//!   `Engine::submit_query_batch`: one session-lock acquisition and (on
//!   a cold session) exactly one union-cone traversal per function.
//!
//! Each variant runs a **cold** sweep (fresh DAIGs — dominated by
//! analysis work) and `repeats` **warm** sweeps (everything answered from
//! per-epoch resolved caches — dominated by dispatch overhead, which is
//! where batching shows up in wall-clock). Wall-clock is noisy on shared
//! hosts, so the CI gate (`check_invariants`) asserts only the
//! deterministic counters: identical answers, strictly fewer lock
//! acquisitions batched than sequential, one union-cone traversal per
//! cold coalesced batch, and consistent `BatchStats` accounting.

use dai_core::driver::ProgramEdit;
use dai_domains::OctagonDomain;
use dai_engine::{BatchStats, Engine, Request, SessionId, Ticket};
use dai_lang::Loc;
use std::time::{Duration, Instant};

use crate::workload::Workload;

type D = OctagonDomain;

/// Parameters of one batching measurement.
#[derive(Debug, Clone)]
pub struct BatchBenchParams {
    /// Random edits growing the session before the sweeps.
    pub grow_edits: usize,
    /// Workload seed.
    pub seed: u64,
    /// Warm-sweep repetitions per variant (medians reported).
    pub repeats: usize,
}

impl BatchBenchParams {
    /// The recording profile (matches the other Fig. 10 engine baselines).
    pub fn full() -> BatchBenchParams {
        BatchBenchParams {
            grow_edits: 40,
            seed: 379422,
            repeats: 7,
        }
    }

    /// A seconds-scale profile for CI smoke runs.
    pub fn smoke() -> BatchBenchParams {
        BatchBenchParams {
            grow_edits: 8,
            seed: 379422,
            repeats: 3,
        }
    }
}

/// Deterministic dispatch counters of one sweep (deltas of
/// `EngineStats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepCounters {
    /// Queries answered.
    pub queries: u64,
    /// Session-lock acquisitions taken.
    pub session_locks: u64,
    /// Coalescing counters (batches, members, singletons, union cones).
    pub batch: BatchStats,
}

/// One variant's measurement.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Queries per sweep.
    pub queries: usize,
    /// Wall-clock of the cold sweep.
    pub cold: Duration,
    /// Median wall-clock of the warm sweeps.
    pub warm_median: Duration,
    /// Counter deltas of the cold sweep.
    pub cold_counters: SweepCounters,
    /// Counter deltas summed over all warm sweeps.
    pub warm_counters: SweepCounters,
}

impl VariantResult {
    /// Warm-sweep throughput (queries per second) from the median sweep.
    pub fn warm_qps(&self) -> f64 {
        self.queries as f64 / self.warm_median.as_secs_f64().max(1e-12)
    }
}

/// A complete sequential-vs-batched comparison.
#[derive(Debug, Clone)]
pub struct BatchBenchResult {
    /// `available_parallelism` at measurement time.
    pub host_cpus: usize,
    /// Functions in the sweep (one coalesced batch each).
    pub functions: usize,
    /// The sequential (one-lock-per-query) dispatch.
    pub sequential: VariantResult,
    /// The coalesced (one-lock-per-function) dispatch.
    pub batched: VariantResult,
    /// Every sweep of both variants answered every query identically.
    pub answers_identical: bool,
}

fn grow(engine: &Engine<D>, session: SessionId, seed: u64, edits: usize) {
    let mut gen = Workload::new(seed);
    for _ in 0..edits {
        let program = engine.program_of(session).expect("session open");
        let edit: ProgramEdit = gen.next_edit(&program);
        engine
            .request(Request::Edit { session, edit })
            .expect("bench edit applies");
    }
}

fn targets_of(engine: &Engine<D>, session: SessionId) -> Vec<(String, Loc)> {
    let program = engine.program_of(session).expect("session open");
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    targets
}

/// A freshly grown engine + session plus the sweep targets.
fn build(params: &BatchBenchParams) -> (Engine<D>, SessionId, Vec<(String, Loc)>) {
    let engine: Engine<D> = Engine::new(1);
    let session = engine.open_session("batch-bench", Workload::initial_program());
    grow(&engine, session, params.seed, params.grow_edits);
    let targets = targets_of(&engine, session);
    (engine, session, targets)
}

fn counters_delta(engine: &Engine<D>, before: &dai_engine::EngineStats) -> SweepCounters {
    let after = engine.stats();
    SweepCounters {
        queries: after.queries - before.queries,
        session_locks: after.session_locks - before.session_locks,
        batch: BatchStats {
            batches: after.batch.batches - before.batch.batches,
            coalesced_queries: after.batch.coalesced_queries - before.batch.coalesced_queries,
            singleton_queries: after.batch.singleton_queries - before.batch.singleton_queries,
            union_cone_cells: after.batch.union_cone_cells - before.batch.union_cone_cells,
            union_cone_walks: after.batch.union_cone_walks - before.batch.union_cone_walks,
        },
    }
}

/// One sequential sweep: synchronous queries, one at a time, in target
/// order — every query is its own singleton drain.
fn sweep_sequential(
    engine: &Engine<D>,
    session: SessionId,
    targets: &[(String, Loc)],
) -> (Duration, Vec<D>) {
    let t0 = Instant::now();
    let answers = targets
        .iter()
        .map(|(f, loc)| {
            engine
                .query(session, f, *loc)
                .expect("bench query succeeds")
        })
        .collect();
    (t0.elapsed(), answers)
}

/// One batched sweep: one deliberate coalesced batch per function
/// (targets are sorted, so functions are contiguous).
fn sweep_batched(
    engine: &Engine<D>,
    session: SessionId,
    targets: &[(String, Loc)],
) -> (Duration, Vec<D>) {
    let t0 = Instant::now();
    let tickets = engine.submit_query_sweep(session, targets);
    let answers = Ticket::wait_all(tickets)
        .expect("bench queries succeed")
        .into_iter()
        .map(|r| r.into_state().expect("query response"))
        .collect();
    (t0.elapsed(), answers)
}

fn median(mut v: Vec<Duration>) -> Duration {
    v.sort();
    v[v.len() / 2]
}

/// Runs the full comparison.
pub fn run_batch_bench(params: &BatchBenchParams) -> BatchBenchResult {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut answers_identical = true;
    let mut reference: Option<Vec<D>> = None;

    let mut measure = |batched: bool| -> (VariantResult, usize) {
        let (engine, session, targets) = build(params);
        let sweep = |eng: &Engine<D>, s: SessionId, t: &[(String, Loc)]| {
            if batched {
                sweep_batched(eng, s, t)
            } else {
                sweep_sequential(eng, s, t)
            }
        };
        let functions = {
            let mut fs: Vec<&String> = targets.iter().map(|(f, _)| f).collect();
            fs.dedup();
            fs.len()
        };
        let before = engine.stats();
        let (cold, answers) = sweep(&engine, session, &targets);
        let cold_counters = counters_delta(&engine, &before);
        match &reference {
            None => reference = Some(answers),
            Some(r) => answers_identical &= *r == answers,
        }
        let mut warm = Vec::with_capacity(params.repeats.max(1));
        let before = engine.stats();
        for _ in 0..params.repeats.max(1) {
            let (dt, answers) = sweep(&engine, session, &targets);
            answers_identical &= reference.as_ref() == Some(&answers);
            warm.push(dt);
        }
        let warm_counters = counters_delta(&engine, &before);
        (
            VariantResult {
                queries: targets.len(),
                cold,
                warm_median: median(warm),
                cold_counters,
                warm_counters,
            },
            functions,
        )
    };

    let (sequential, functions) = measure(false);
    let (batched, _) = measure(true);
    BatchBenchResult {
        host_cpus,
        functions,
        sequential,
        batched,
        answers_identical,
    }
}

/// The invariants the acceptance gate (and CI) assert, independent of
/// timing noise.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn check_invariants(r: &BatchBenchResult) -> Result<(), String> {
    if !r.answers_identical {
        return Err("batched sweep answered differently from the sequential sweep".to_string());
    }
    let seq = &r.sequential.cold_counters;
    let bat = &r.batched.cold_counters;
    if bat.session_locks >= seq.session_locks {
        return Err(format!(
            "batched sweep did not reduce lock acquisitions: {} >= {}",
            bat.session_locks, seq.session_locks
        ));
    }
    if seq.batch.coalesced_queries != 0 {
        return Err(format!(
            "sequential (synchronous) sweep unexpectedly coalesced {} queries",
            seq.batch.coalesced_queries
        ));
    }
    if seq.batch.singleton_queries != seq.queries {
        return Err(format!(
            "sequential sweep accounting broken: {} singletons for {} queries",
            seq.batch.singleton_queries, seq.queries
        ));
    }
    if bat.batch.coalesced_queries + bat.batch.singleton_queries != bat.queries {
        return Err(format!(
            "batched sweep accounting broken: {} coalesced + {} singleton != {} queries",
            bat.batch.coalesced_queries, bat.batch.singleton_queries, bat.queries
        ));
    }
    if bat.batch.batches != r.functions as u64 {
        return Err(format!(
            "expected one coalesced batch per function: {} batches for {} functions",
            bat.batch.batches, r.functions
        ));
    }
    if bat.session_locks != bat.batch.batches {
        return Err(format!(
            "a coalesced batch must take exactly one session lock: {} locks for {} batches",
            bat.session_locks, bat.batch.batches
        ));
    }
    if bat.batch.union_cone_walks != bat.batch.batches {
        return Err(format!(
            "a cold coalesced batch must traverse exactly one union cone: \
             {} walks for {} batches",
            bat.batch.union_cone_walks, bat.batch.batches
        ));
    }
    let warm = &r.batched.warm_counters;
    if warm.batch.union_cone_walks != 0 {
        return Err(format!(
            "warm coalesced sweeps must answer without cone traversals, saw {}",
            warm.batch.union_cone_walks
        ));
    }
    Ok(())
}

fn counters_json(c: &SweepCounters) -> String {
    format!(
        "{{\"queries\": {}, \"session_locks\": {}, \"batches\": {}, \
         \"coalesced_queries\": {}, \"singleton_queries\": {}, \
         \"union_cone_cells\": {}, \"union_cone_walks\": {}}}",
        c.queries,
        c.session_locks,
        c.batch.batches,
        c.batch.coalesced_queries,
        c.batch.singleton_queries,
        c.batch.union_cone_cells,
        c.batch.union_cone_walks
    )
}

fn variant_json(v: &VariantResult) -> String {
    format!(
        "{{\n    \"queries\": {}, \"cold_ms\": {:.3}, \"warm_ms_median\": {:.3}, \
         \"warm_qps_median\": {:.1},\n    \"cold_counters\": {},\n    \"warm_counters\": {}\n  }}",
        v.queries,
        v.cold.as_secs_f64() * 1e3,
        v.warm_median.as_secs_f64() * 1e3,
        v.warm_qps(),
        counters_json(&v.cold_counters),
        counters_json(&v.warm_counters)
    )
}

/// Renders the JSON artifact (hand-rolled; the workspace is offline).
pub fn to_json(profile: &str, params: &BatchBenchParams, r: &BatchBenchResult) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"batch\",\n");
    s.push_str("  \"workload\": \"fig10_synthetic_octagon\",\n");
    s.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    s.push_str(&format!("  \"host_cpus\": {},\n", r.host_cpus));
    s.push_str("  \"host_cpus_provenance\": \"available_parallelism at measurement time\",\n");
    s.push_str(&format!(
        "  \"grow_edits\": {}, \"seed\": {}, \"repeats\": {},\n",
        params.grow_edits, params.seed, params.repeats
    ));
    s.push_str(&format!("  \"functions\": {},\n", r.functions));
    s.push_str(&format!(
        "  \"sequential\": {},\n",
        variant_json(&r.sequential)
    ));
    s.push_str(&format!("  \"batched\": {},\n", variant_json(&r.batched)));
    s.push_str(&format!(
        "  \"lock_ratio_batched_vs_sequential\": {:.4},\n",
        r.batched.cold_counters.session_locks as f64
            / (r.sequential.cold_counters.session_locks as f64).max(1.0)
    ));
    s.push_str(&format!(
        "  \"warm_qps_ratio_batched_vs_sequential\": {:.4},\n",
        r.batched.warm_qps() / r.sequential.warm_qps().max(1e-12)
    ));
    s.push_str(&format!(
        "  \"answers_identical\": {}\n",
        r.answers_identical
    ));
    s.push_str("}\n");
    s
}

/// Validates a committed `BENCH_batch.json` (required fields present and
/// the recorded invariants hold).
///
/// # Errors
///
/// A human-readable description of the first problem.
pub fn validate_artifact(json: &str) -> Result<(), String> {
    for field in [
        "\"bench\": \"batch\"",
        "\"workload\"",
        "\"host_cpus\"",
        "\"functions\"",
        "\"sequential\"",
        "\"batched\"",
        "\"session_locks\"",
        "\"union_cone_cells\"",
        "\"union_cone_walks\"",
        "\"lock_ratio_batched_vs_sequential\"",
        "\"answers_identical\": true",
    ] {
        if !json.contains(field) {
            return Err(format!("BENCH_batch.json is missing {field}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_batching_beats_sequential_on_locks_and_agrees() {
        let params = BatchBenchParams {
            grow_edits: 4,
            seed: 7,
            repeats: 1,
        };
        let r = run_batch_bench(&params);
        check_invariants(&r).unwrap();
        assert!(r.functions >= 2, "fig10 workload has several functions");
        assert!(
            r.batched.cold_counters.batch.union_cone_cells > 0,
            "cold batches load union cones"
        );
        let json = to_json("smoke", &params, &r);
        validate_artifact(&json).unwrap();
    }
}
