//! The §7.2 shape-analysis experiment.
//!
//! "We have applied this DAIG-based shape analysis to successfully verify
//! the correctness and memory-safety of the list append procedure of
//! Fig. 2, along with several linked list utilities from the
//! aforementioned Buckets.js library including foreach and indexof.
//! Analysis of the ℓ3-to-ℓ4-to-ℓ3 loop of the list append procedure
//! converges in one demanded unrolling with a precise result."
//!
//! Each procedure is analyzed with the separation-logic shape domain under
//! the precondition that its list parameters are well-formed
//! (`lseg(p, null)` per parameter, pairwise disjoint), demanding the exit
//! state. Verification checks: no possible null-dereference
//! ([`dai_domains::ShapeDomain::may_error`]) and well-formedness of the
//! returned list ([`dai_domains::ShapeDomain::proves_list`]).

use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::ShapeDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_lang::RETURN_VAR;
use dai_memo::MemoTable;

/// The Fig. 1 `append` procedure plus ported list utilities.
pub const LISTS_SRC: &str = r#"
// Fig. 1 of the paper.
function append(p, q) {
    if (p == null) { return q; }
    var r = p;
    while (r.next != null) { r = r.next; }
    r.next = q;
    return p;
}

// Buckets.js-style forEach: traverse, touching each element.
function foreach(p) {
    var r = p;
    while (r != null) {
        var v = r.data;
        r = r.next;
    }
    return p;
}

// Buckets.js-style indexOf: traverse with a counter.
function indexof(p) {
    var r = p;
    var i = 0;
    var at = 0 - 1;
    while (r != null) {
        var v = r.data;
        if (v == 7 && at < 0) { at = i; }
        i = i + 1;
        r = r.next;
    }
    return at;
}

// Prepend a fresh cell (cons).
function cons(p) {
    var n = new Node();
    n.next = p;
    return n;
}

// Drop the head if present.
function tail(p) {
    if (p == null) { return null; }
    var t = p.next;
    return t;
}
"#;

/// Verification outcome for one procedure.
#[derive(Debug, Clone)]
pub struct ListCheck {
    /// Procedure name.
    pub name: String,
    /// No null-dereference is possible.
    pub memory_safe: bool,
    /// The returned value is a well-formed (acyclic, null-terminated)
    /// list. `None` when the procedure's return value is not a pointer
    /// (e.g. `indexof` returns an integer).
    pub returns_list: Option<bool>,
    /// Demanded loop unrollings performed while answering the exit query.
    pub unrollings: u64,
    /// Disjuncts in the exit state.
    pub exit_disjuncts: usize,
}

/// Analyzes one procedure under the list precondition.
pub fn check_procedure(name: &str, expect_list_return: bool) -> ListCheck {
    let program =
        lower_program(&parse_program(LISTS_SRC).expect("suite parses")).expect("suite lowers");
    let cfg = program.by_name(name).expect("procedure exists").clone();
    let params: Vec<&str> = cfg.params().iter().map(|p| p.as_str()).collect();
    let phi0 = ShapeDomain::with_lists(&params);
    let mut analysis = FuncAnalysis::new(cfg, phi0);
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    let exit = analysis
        .query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .expect("analysis succeeds");
    ListCheck {
        name: name.to_string(),
        memory_safe: !exit.may_error(),
        returns_list: expect_list_return.then(|| exit.proves_list(RETURN_VAR)),
        unrollings: stats.unrolls,
        exit_disjuncts: exit.disjunct_count(),
    }
}

/// Runs the whole experiment: every procedure in [`LISTS_SRC`].
pub fn run_lists() -> Vec<ListCheck> {
    vec![
        check_procedure("append", true),
        check_procedure("foreach", true),
        check_procedure("indexof", false),
        check_procedure("cons", true),
        check_procedure("tail", true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_verifies_memory_safety_and_listness() {
        let c = check_procedure("append", true);
        assert!(c.memory_safe, "append must not dereference null: {c:?}");
        assert_eq!(
            c.returns_list,
            Some(true),
            "append must return a list: {c:?}"
        );
    }

    #[test]
    fn append_converges_in_one_demanded_unrolling() {
        // The paper's headline shape result: the ℓ3–ℓ4–ℓ3 loop converges
        // in one demanded unrolling.
        let c = check_procedure("append", true);
        assert_eq!(c.unrollings, 1, "{c:?}");
    }

    #[test]
    fn foreach_and_indexof_verify() {
        let f = check_procedure("foreach", true);
        assert!(f.memory_safe, "{f:?}");
        assert_eq!(f.returns_list, Some(true));
        let i = check_procedure("indexof", false);
        assert!(i.memory_safe, "{i:?}");
    }

    #[test]
    fn cons_and_tail_verify() {
        let c = check_procedure("cons", true);
        assert!(c.memory_safe && c.returns_list == Some(true), "{c:?}");
        let t = check_procedure("tail", true);
        assert!(t.memory_safe && t.returns_list == Some(true), "{t:?}");
    }

    #[test]
    fn all_procedures_report() {
        let all = run_lists();
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|c| c.memory_safe), "{all:?}");
    }
}
