//! Cold-start vs warm-start measurement behind `BENCH_persist.json`.
//!
//! The snapshot format is lossy by design (dropping cached analysis state
//! is always sound), so the interesting questions are *quantitative*:
//! what does a restored session actually save? This harness grows one
//! Fig. 10 synthetic-workload session through the engine, warms it with a
//! full `(function × location)` query sweep, saves it, and then measures
//! the same sweep three ways on fresh engines:
//!
//! * **cold** — no snapshot: re-open from source, replay the edit stream,
//!   answer every query from scratch;
//! * **memo-warm** — restore the snapshot with its `FUNC` (DAIG) sections
//!   stripped ([`dai_persist::strip_sections`]): only memo entries
//!   survive, exercising exactly the degraded path a damaged DAIG section
//!   takes;
//! * **full-warm** — restore the complete snapshot: DAIG values answer
//!   most queries by `Q-Reuse`.
//!
//! Alongside wall-clock latency (noisy on shared hosts) the harness
//! records the **deterministic work counters** (`QueryStats::computed`,
//! `memo_matched`, `reused`), which is what the CI gate asserts on:
//! warm restores must perform strictly fewer `Q-Miss` computations than
//! cold starts, and every variant must produce identical answers.

use dai_core::driver::ProgramEdit;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, PersistOutcome, Request, SessionId, Ticket};
use dai_lang::Loc;
use dai_persist::{strip_sections, TAG_FUNC};
use std::time::{Duration, Instant};

use crate::workload::Workload;

type D = OctagonDomain;

/// Parameters of one persistence measurement.
#[derive(Debug, Clone)]
pub struct PersistBenchParams {
    /// Random edits growing the session before the save.
    pub grow_edits: usize,
    /// Workload seed.
    pub seed: u64,
    /// Sweep repetitions per variant (medians reported).
    pub repeats: usize,
}

impl PersistBenchParams {
    /// The recording profile (matches the Fig. 10 engine baselines).
    pub fn full() -> PersistBenchParams {
        PersistBenchParams {
            grow_edits: 40,
            seed: 379422,
            repeats: 5,
        }
    }

    /// A seconds-scale profile for CI smoke runs.
    pub fn smoke() -> PersistBenchParams {
        PersistBenchParams {
            grow_edits: 8,
            seed: 379422,
            repeats: 2,
        }
    }
}

/// One variant's sweep measurement.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Queries per sweep.
    pub queries: usize,
    /// Median wall-clock per sweep across repeats.
    pub elapsed: Duration,
    /// `Q-Miss` computations in one sweep (deterministic).
    pub computed: u64,
    /// `Q-Match` memo hits in one sweep.
    pub memo_matched: u64,
    /// `Q-Reuse` cell reuses in one sweep.
    pub reused: u64,
}

/// A complete cold/memo-warm/full-warm comparison.
#[derive(Debug, Clone)]
pub struct PersistBenchResult {
    /// `available_parallelism` at measurement time.
    pub host_cpus: usize,
    /// Snapshot file size.
    pub snapshot_bytes: usize,
    /// Function DAIGs in the snapshot.
    pub funcs_saved: usize,
    /// Memo entries in the snapshot.
    pub memo_entries: usize,
    /// Wall-clock of the save request.
    pub save: Duration,
    /// Wall-clock of the full-snapshot load request.
    pub load: Duration,
    /// The three sweep variants.
    pub cold: VariantResult,
    /// Memo-only restore (DAIG sections stripped).
    pub memo_warm: VariantResult,
    /// Complete restore.
    pub full_warm: VariantResult,
    /// Every variant answered every query identically.
    pub answers_identical: bool,
}

fn grow(engine: &Engine<D>, session: SessionId, seed: u64, edits: usize) {
    let mut gen = Workload::new(seed);
    for _ in 0..edits {
        let program = engine.program_of(session).expect("session open");
        let edit: ProgramEdit = gen.next_edit(&program);
        engine
            .request(Request::Edit { session, edit })
            .expect("bench edit applies");
    }
}

fn targets_of(engine: &Engine<D>, session: SessionId) -> Vec<(String, Loc)> {
    let program = engine.program_of(session).expect("session open");
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    targets
}

/// One timed sweep; returns the answers in target order. The sweep goes
/// out through the engine's batch path — one coalesced query batch (one
/// session-lock acquisition, one union-cone evaluation) per function —
/// exactly like the REPL's `serve`.
fn sweep(engine: &Engine<D>, session: SessionId, targets: &[(String, Loc)]) -> (Duration, Vec<D>) {
    let t0 = Instant::now();
    let tickets = engine.submit_query_sweep(session, targets);
    let answers = Ticket::wait_all(tickets)
        .expect("bench queries succeed")
        .into_iter()
        .map(|r| r.into_state().expect("query response"))
        .collect();
    (t0.elapsed(), answers)
}

fn median(mut v: Vec<Duration>) -> Duration {
    v.sort();
    v[v.len() / 2]
}

/// A ready-to-measure engine + session, the sweep targets, and the
/// reference answers.
type WarmSession = (Engine<D>, SessionId, Vec<(String, Loc)>, Vec<D>);

/// A freshly grown, fully swept (warm) engine + session.
fn build_warm(params: &PersistBenchParams) -> WarmSession {
    let engine: Engine<D> = Engine::new(1);
    let session = engine
        .open_session_src("persist-bench", &Workload::initial_source())
        .expect("workload source compiles");
    grow(&engine, session, params.seed, params.grow_edits);
    let targets = targets_of(&engine, session);
    let (_, answers) = sweep(&engine, session, &targets);
    (engine, session, targets, answers)
}

fn load_into_fresh(bytes_path: &str) -> (Engine<D>, SessionId, PersistOutcome, Duration) {
    let engine: Engine<D> = Engine::new(1);
    let t0 = Instant::now();
    let (session, outcome) = engine
        .request(Request::Load {
            path: bytes_path.to_string(),
        })
        .expect("load succeeds")
        .into_loaded()
        .expect("load answers Loaded");
    (engine, session, outcome, t0.elapsed())
}

/// Runs the full comparison. `scratch_dir` receives the snapshot files.
pub fn run_persist_bench(
    params: &PersistBenchParams,
    scratch_dir: &std::path::Path,
) -> PersistBenchResult {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    std::fs::create_dir_all(scratch_dir).expect("scratch dir");
    let full_path = scratch_dir.join("persist_bench_full.daip");
    let memo_path = scratch_dir.join("persist_bench_memo_only.daip");

    // Grow + warm the reference session, then save it.
    let (engine, session, targets, reference) = build_warm(params);
    let t0 = Instant::now();
    let saved = engine
        .request(Request::Save {
            session,
            path: full_path.to_string_lossy().into_owned(),
        })
        .expect("save succeeds")
        .into_saved()
        .expect("save answers Saved");
    let save = t0.elapsed();
    drop(engine);

    // The memo-only restore point: the same file minus its DAIG sections —
    // byte-identical to what a reader sees when every FUNC section is
    // damaged.
    let full_bytes = std::fs::read(&full_path).expect("snapshot written");
    let memo_only = strip_sections(&full_bytes, TAG_FUNC).expect("snapshot parses");
    std::fs::write(&memo_path, &memo_only).expect("memo-only snapshot written");

    let mut answers_identical = true;
    let mut measure = |mut make: Box<dyn FnMut() -> (Engine<D>, SessionId)>| -> VariantResult {
        let mut elapsed = Vec::with_capacity(params.repeats.max(1));
        let mut counters = None;
        for _ in 0..params.repeats.max(1) {
            let (engine, session) = make();
            let stats_before = engine.stats().query_stats;
            let (dt, answers) = sweep(&engine, session, &targets);
            answers_identical &= answers == reference;
            let stats_after = engine.stats().query_stats;
            elapsed.push(dt);
            counters.get_or_insert((
                stats_after.computed - stats_before.computed,
                stats_after.memo_matched - stats_before.memo_matched,
                stats_after.reused - stats_before.reused,
            ));
        }
        let (computed, memo_matched, reused) = counters.expect("at least one repeat");
        VariantResult {
            queries: targets.len(),
            elapsed: median(elapsed),
            computed,
            memo_matched,
            reused,
        }
    };

    let (seed, grow_edits) = (params.seed, params.grow_edits);
    let cold = measure(Box::new(move || {
        let engine: Engine<D> = Engine::new(1);
        let session = engine
            .open_session_src("persist-bench", &Workload::initial_source())
            .expect("workload source compiles");
        grow(&engine, session, seed, grow_edits);
        (engine, session)
    }));
    let memo_path_s = memo_path.to_string_lossy().into_owned();
    let memo_warm = measure(Box::new(move || {
        let (engine, session, outcome, _) = load_into_fresh(&memo_path_s);
        assert_eq!(outcome.funcs, 0, "DAIG sections were stripped");
        assert!(outcome.memo_entries > 0, "memo section survives");
        (engine, session)
    }));
    let full_path_s = full_path.to_string_lossy().into_owned();
    let mut load_time = Duration::ZERO;
    let full_warm = {
        let lt = &mut load_time;
        let mut make = || {
            let (engine, session, outcome, dt) = load_into_fresh(&full_path_s);
            assert!(outcome.funcs > 0, "full snapshot restores DAIGs");
            *lt = dt;
            (engine, session)
        };
        measure(Box::new(&mut make))
    };

    PersistBenchResult {
        host_cpus,
        snapshot_bytes: saved.bytes,
        funcs_saved: saved.funcs,
        memo_entries: saved.memo_entries,
        save,
        load: load_time,
        cold,
        memo_warm,
        full_warm,
        answers_identical,
    }
}

/// The invariants the acceptance gate (and CI) assert, independent of
/// timing noise: identical answers everywhere, and strictly fewer
/// `Q-Miss` computations for both warm variants than for the cold start.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn check_invariants(r: &PersistBenchResult) -> Result<(), String> {
    if !r.answers_identical {
        return Err("restored sessions answered differently from the live session".to_string());
    }
    if r.full_warm.computed >= r.cold.computed {
        return Err(format!(
            "full warm-start did not reduce cell evaluations: {} >= {}",
            r.full_warm.computed, r.cold.computed
        ));
    }
    if r.memo_warm.computed >= r.cold.computed {
        return Err(format!(
            "memo-only warm-start did not reduce cell evaluations: {} >= {}",
            r.memo_warm.computed, r.cold.computed
        ));
    }
    Ok(())
}

fn variant_json(v: &VariantResult) -> String {
    format!(
        "{{\"queries\": {}, \"elapsed_ms_median\": {:.3}, \"computed\": {}, \
         \"memo_matched\": {}, \"reused\": {}}}",
        v.queries,
        v.elapsed.as_secs_f64() * 1e3,
        v.computed,
        v.memo_matched,
        v.reused
    )
}

/// Renders the JSON artifact (hand-rolled; the workspace is offline).
pub fn to_json(profile: &str, params: &PersistBenchParams, r: &PersistBenchResult) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"persist\",\n");
    s.push_str("  \"workload\": \"fig10_synthetic_octagon\",\n");
    s.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    s.push_str(&format!("  \"host_cpus\": {},\n", r.host_cpus));
    s.push_str("  \"host_cpus_provenance\": \"available_parallelism at measurement time\",\n");
    s.push_str(&format!(
        "  \"grow_edits\": {}, \"seed\": {}, \"repeats\": {},\n",
        params.grow_edits, params.seed, params.repeats
    ));
    s.push_str(&format!(
        "  \"snapshot_bytes\": {}, \"funcs_saved\": {}, \"memo_entries\": {},\n",
        r.snapshot_bytes, r.funcs_saved, r.memo_entries
    ));
    s.push_str(&format!(
        "  \"save_ms\": {:.3}, \"load_ms\": {:.3},\n",
        r.save.as_secs_f64() * 1e3,
        r.load.as_secs_f64() * 1e3
    ));
    s.push_str(&format!("  \"cold\": {},\n", variant_json(&r.cold)));
    s.push_str(&format!(
        "  \"memo_warm\": {},\n",
        variant_json(&r.memo_warm)
    ));
    s.push_str(&format!(
        "  \"full_warm\": {},\n",
        variant_json(&r.full_warm)
    ));
    s.push_str(&format!(
        "  \"computed_ratio_full_vs_cold\": {:.4},\n",
        r.full_warm.computed as f64 / (r.cold.computed as f64).max(1.0)
    ));
    s.push_str(&format!(
        "  \"answers_identical\": {}\n",
        r.answers_identical
    ));
    s.push_str("}\n");
    s
}

/// Validates a committed `BENCH_persist.json` (required fields present
/// and the recorded invariants hold).
///
/// # Errors
///
/// A human-readable description of the first problem.
pub fn validate_artifact(json: &str) -> Result<(), String> {
    for field in [
        "\"bench\": \"persist\"",
        "\"workload\"",
        "\"host_cpus\"",
        "\"snapshot_bytes\"",
        "\"cold\"",
        "\"memo_warm\"",
        "\"full_warm\"",
        "\"computed_ratio_full_vs_cold\"",
        "\"answers_identical\": true",
    ] {
        if !json.contains(field) {
            return Err(format!("BENCH_persist.json is missing {field}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_roundtrip_warms_and_agrees() {
        let params = PersistBenchParams {
            grow_edits: 4,
            seed: 7,
            repeats: 1,
        };
        let dir = std::env::temp_dir().join(format!("dai-persist-bench-{}", std::process::id()));
        let r = run_persist_bench(&params, &dir);
        check_invariants(&r).unwrap();
        assert!(r.snapshot_bytes > 0);
        assert!(r.funcs_saved > 0);
        assert!(r.memo_entries > 0);
        // Full warm restores serve mostly by reuse.
        assert!(r.full_warm.reused > 0);
        // Memo-only warm matches memo entries instead of computing.
        assert!(r.memo_warm.memo_matched > 0);
        let json = to_json("smoke", &params, &r);
        validate_artifact(&json).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
