//! Replication and sharding behind `BENCH_replica.json`.
//!
//! Two questions, one artifact:
//!
//! * **does sharding scale?** — a sessions × engines matrix: S
//!   sessions consistent-hashed by a `dai_rpc::Router` across E
//!   single-worker engines, each session warm-sweeping the Fig. 10
//!   synthetic octagon workload. Throughput per point, plus the
//!   accounting identity (`routed == served` on every shard) that makes
//!   the numbers trustworthy;
//! * **what does catch-up cost?** — a journaled leader served over a
//!   real socket, a follower tailing it: time to catch up from genesis,
//!   and again after an injected follower restart (all follower state
//!   discarded, fresh engine, replay from frame zero).
//!
//! Wall-clock is noisy on shared hosts, so the CI gate
//! ([`check_invariants`]) asserts only deterministic facts: the
//! caught-up follower answering — and DOT-rendering — byte-identically
//! to the leader, zero lag after sync, the restart replaying exactly
//! the same frame count, and the router accounting closing on every
//! matrix point.

use dai_core::driver::ProgramEdit;
use dai_domains::OctagonDomain;
use dai_engine::{Engine, JournalConfig, Service, SessionId};
use dai_lang::Loc;
use dai_rpc::{Addr, Client, Replica, Router, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::workload::Workload;

type D = OctagonDomain;

/// Parameters of one replication/sharding measurement.
#[derive(Debug, Clone)]
pub struct ReplicaBenchParams {
    /// Random edits growing each session before the sweeps.
    pub grow_edits: usize,
    /// Workload seed.
    pub seed: u64,
    /// Warm-sweep repetitions per session per matrix point.
    pub repeats: usize,
}

impl ReplicaBenchParams {
    /// The recording profile (the Fig. 10 baseline workload size).
    pub fn full() -> ReplicaBenchParams {
        ReplicaBenchParams {
            grow_edits: 30,
            seed: 379422,
            repeats: 5,
        }
    }

    /// A seconds-scale profile for CI smoke runs.
    pub fn smoke() -> ReplicaBenchParams {
        ReplicaBenchParams {
            grow_edits: 6,
            seed: 379422,
            repeats: 2,
        }
    }
}

/// One point of the sessions × engines matrix.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Concurrent sessions routed.
    pub sessions: usize,
    /// Backend engines on the ring.
    pub engines: usize,
    /// Queries answered during the timed warm window.
    pub total_queries: usize,
    /// Wall-clock of the warm window.
    pub elapsed: Duration,
    /// Query members the router counted out, per shard.
    pub routed: Vec<u64>,
    /// Queries each backend counted served.
    pub served: Vec<u64>,
}

impl ScalingPoint {
    /// Aggregate throughput at this point (queries per second).
    pub fn qps(&self) -> f64 {
        self.total_queries as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Whether `routed == served` on every shard.
    pub fn accounting_closed(&self) -> bool {
        self.routed == self.served
    }
}

/// One timed follower catch-up.
#[derive(Debug, Clone)]
pub struct CatchUp {
    /// Journal frames applied.
    pub applied: u64,
    /// Wall-clock of the catch-up loop.
    pub elapsed: Duration,
}

/// The replication half of the artifact.
#[derive(Debug, Clone)]
pub struct ReplicationResult {
    /// Frames in the leader's journal (1 open + 1 per edit).
    pub history_frames: u64,
    /// A fresh follower catching up from genesis.
    pub initial: CatchUp,
    /// The injected restart: all follower state discarded, a second
    /// fresh follower replays the identical history.
    pub restart: CatchUp,
    /// Follower lag after the final sync (must be 0).
    pub lag_after: u64,
    /// Caught-up follower's sweep answers equal the leader's.
    pub answers_equal: bool,
    /// Caught-up follower's session DOT bytes equal the leader's.
    pub dot_equal: bool,
}

/// A complete measurement.
#[derive(Debug, Clone)]
pub struct ReplicaBenchResult {
    /// `available_parallelism` at measurement time.
    pub host_cpus: usize,
    /// Queries per sweep.
    pub queries_per_sweep: usize,
    /// The sessions × engines scaling matrix.
    pub scaling: Vec<ScalingPoint>,
    /// The socket replication measurement.
    pub replication: ReplicationResult,
}

/// The deterministic edit script (the same recorded-sequence trick the
/// other benches use, so every service replays identical history).
fn edit_script(params: &ReplicaBenchParams) -> (String, Vec<ProgramEdit>, Vec<(String, Loc)>) {
    let source = Workload::initial_source();
    let engine: Engine<D> = Engine::new(1);
    let session = engine
        .open_session_src("replica-bench-gen", &source)
        .expect("initial source parses");
    let mut gen = Workload::new(params.seed);
    let mut edits = Vec::with_capacity(params.grow_edits);
    for _ in 0..params.grow_edits {
        let program = engine.program_of(session).expect("session open");
        let edit = gen.next_edit(&program);
        Service::<D>::edit(&engine, session, &edit).expect("bench edit applies");
        edits.push(edit);
    }
    let program = engine.program_of(session).expect("session open");
    let mut targets = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    (source, edits, targets)
}

fn sweep<S: Service<D>>(service: &S, session: SessionId, targets: &[(String, Loc)]) -> Vec<D> {
    service
        .query_sweep(session, targets)
        .into_iter()
        .map(|r| r.expect("bench query succeeds"))
        .collect()
}

/// A throwaway scratch path unique to this process.
fn scratch(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("dai-replica-bench-{tag}-{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// One matrix point: S sessions over a router of E fresh engines.
fn measure_scaling(
    source: &str,
    edits: &[ProgramEdit],
    targets: &[(String, Loc)],
    sessions: usize,
    engines: usize,
    repeats: usize,
) -> ScalingPoint {
    let backends: Vec<Arc<Engine<D>>> = (0..engines).map(|_| Arc::new(Engine::new(1))).collect();
    let router = Router::new(backends.clone());
    let mut ids = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let session = router
            .open(&format!("tenant-{i}"), source)
            .expect("bench session opens");
        for edit in edits {
            router.edit(session, edit).expect("bench edit applies");
        }
        // Cold sweep outside the timed window: the matrix measures the
        // steady (warm) state, like the other engine baselines.
        let _ = sweep(&router, session, targets);
        ids.push(session);
    }
    let t0 = Instant::now();
    for _ in 0..repeats.max(1) {
        for &session in &ids {
            let _ = sweep(&router, session, targets);
        }
    }
    let elapsed = t0.elapsed();
    let served = backends.iter().map(|b| b.stats().queries).collect();
    ScalingPoint {
        sessions,
        engines,
        total_queries: repeats.max(1) * sessions * targets.len(),
        elapsed,
        routed: router.routed_queries(),
        served,
    }
}

/// The socket replication measurement: journaled leader, two fresh
/// followers (the second is the injected restart).
fn measure_replication(
    source: &str,
    edits: &[ProgramEdit],
    targets: &[(String, Loc)],
) -> ReplicationResult {
    let journal = scratch("leader.daij");
    let _ = std::fs::remove_file(&journal);
    let leader: Arc<Engine<D>> = Arc::new(Engine::new(1));
    leader
        .open_journal(&journal, JournalConfig::default())
        .expect("fresh journal attaches");
    let session = leader.open("replica-bench", source).expect("leader opens");
    for edit in edits {
        leader.edit(session, edit).expect("leader edit applies");
    }
    let leader_answers = sweep(leader.as_ref(), session, targets);
    let leader_dot = leader.snapshot(session).expect("leader DOT");
    let history_frames = leader.journal().expect("journal attached").frames();

    let server =
        Server::bind(&Addr::Unix(scratch("leader.sock")), Arc::clone(&leader)).expect("binds");
    let addr = server.addr().to_string();

    let catch_up_once = || -> (Replica<D>, CatchUp) {
        let client: Client<D> = Client::connect(&addr).expect("follower connects");
        let follower = Replica::new(client, Arc::new(Engine::new(1)));
        let t0 = Instant::now();
        let applied = follower.catch_up().expect("catch-up succeeds");
        (
            follower,
            CatchUp {
                applied,
                elapsed: t0.elapsed(),
            },
        )
    };

    let (follower, initial) = catch_up_once();
    let replica_session = SessionId(1);
    let follower_answers = sweep(follower.engine().as_ref(), replica_session, targets);
    let follower_dot = follower
        .engine()
        .snapshot(replica_session)
        .expect("follower DOT");
    let lag_after = follower
        .sync_batch(dai_rpc::DEFAULT_PULL_BATCH)
        .expect("sync succeeds")
        .lag;

    // Injected restart: every byte of follower state gone; a second
    // fresh follower replays the identical history over the wire.
    drop(follower);
    let (_follower2, restart) = catch_up_once();

    server.shutdown();
    let _ = std::fs::remove_file(&journal);
    ReplicationResult {
        history_frames,
        initial,
        restart,
        lag_after,
        answers_equal: follower_answers == leader_answers,
        dot_equal: follower_dot == leader_dot,
    }
}

/// Runs the full measurement: the scaling matrix, then replication.
pub fn run_replica_bench(params: &ReplicaBenchParams) -> ReplicaBenchResult {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (source, edits, targets) = edit_script(params);
    let mut scaling = Vec::new();
    for engines in [1usize, 2, 3] {
        for sessions in [1usize, 2, 4] {
            scaling.push(measure_scaling(
                &source,
                &edits,
                &targets,
                sessions,
                engines,
                params.repeats,
            ));
        }
    }
    let replication = measure_replication(&source, &edits, &targets);
    ReplicaBenchResult {
        host_cpus,
        queries_per_sweep: targets.len(),
        scaling,
        replication,
    }
}

/// The invariants the acceptance gate (and CI) assert, independent of
/// timing noise.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn check_invariants(r: &ReplicaBenchResult) -> Result<(), String> {
    let rep = &r.replication;
    if !rep.answers_equal {
        return Err("caught-up follower answered differently from the leader".to_string());
    }
    if !rep.dot_equal {
        return Err("caught-up follower's session DOT differs from the leader's".to_string());
    }
    if rep.lag_after != 0 {
        return Err(format!(
            "follower still lags {} frames after catch-up",
            rep.lag_after
        ));
    }
    if rep.initial.applied != rep.history_frames {
        return Err(format!(
            "initial catch-up applied {} frames for a {}-frame history",
            rep.initial.applied, rep.history_frames
        ));
    }
    if rep.restart.applied != rep.initial.applied {
        return Err(format!(
            "restarted follower replayed {} frames, the first replayed {}",
            rep.restart.applied, rep.initial.applied
        ));
    }
    if r.scaling.is_empty() {
        return Err("scaling matrix is empty".to_string());
    }
    for p in &r.scaling {
        if !p.accounting_closed() {
            return Err(format!(
                "{} sessions × {} engines: routed {:?} != served {:?}",
                p.sessions, p.engines, p.routed, p.served
            ));
        }
        if p.total_queries == 0 || p.elapsed.is_zero() {
            return Err(format!(
                "degenerate scaling point: {} queries in {:?} ({} sessions, {} engines)",
                p.total_queries, p.elapsed, p.sessions, p.engines
            ));
        }
    }
    Ok(())
}

/// Renders the JSON artifact (hand-rolled; the workspace is offline).
pub fn to_json(profile: &str, params: &ReplicaBenchParams, r: &ReplicaBenchResult) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"replica\",\n");
    s.push_str("  \"workload\": \"fig10_synthetic_octagon\",\n");
    s.push_str("  \"transport\": \"unix-socket\",\n");
    s.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    s.push_str(&format!("  \"host_cpus\": {},\n", r.host_cpus));
    s.push_str("  \"host_cpus_provenance\": \"available_parallelism at measurement time\",\n");
    s.push_str(&format!(
        "  \"grow_edits\": {}, \"seed\": {}, \"repeats\": {},\n",
        params.grow_edits, params.seed, params.repeats
    ));
    s.push_str(&format!(
        "  \"queries_per_sweep\": {},\n",
        r.queries_per_sweep
    ));
    s.push_str("  \"scaling\": [\n");
    for (i, p) in r.scaling.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"sessions\": {}, \"engines\": {}, \"total_queries\": {}, \
             \"elapsed_ms\": {:.3}, \"qps\": {:.1}, \"accounting_closed\": {}}}{}\n",
            p.sessions,
            p.engines,
            p.total_queries,
            p.elapsed.as_secs_f64() * 1e3,
            p.qps(),
            p.accounting_closed(),
            if i + 1 < r.scaling.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let rep = &r.replication;
    s.push_str("  \"replication\": {\n");
    s.push_str(&format!(
        "    \"history_frames\": {},\n",
        rep.history_frames
    ));
    s.push_str(&format!(
        "    \"catch_up_ms\": {:.3}, \"catch_up_frames\": {},\n",
        rep.initial.elapsed.as_secs_f64() * 1e3,
        rep.initial.applied
    ));
    s.push_str(&format!(
        "    \"restart_catch_up_ms\": {:.3}, \"restart_catch_up_frames\": {},\n",
        rep.restart.elapsed.as_secs_f64() * 1e3,
        rep.restart.applied
    ));
    s.push_str(&format!("    \"lag_after\": {},\n", rep.lag_after));
    s.push_str(&format!(
        "    \"answers_equal\": {}, \"dot_equal\": {}\n",
        rep.answers_equal, rep.dot_equal
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Validates a committed `BENCH_replica.json` (required fields present
/// and the recorded invariants hold).
///
/// # Errors
///
/// A human-readable description of the first problem.
pub fn validate_artifact(json: &str) -> Result<(), String> {
    for field in [
        "\"bench\": \"replica\"",
        "\"workload\"",
        "\"transport\"",
        "\"host_cpus\"",
        "\"queries_per_sweep\"",
        "\"scaling\"",
        "\"sessions\"",
        "\"engines\"",
        "\"qps\"",
        "\"replication\"",
        "\"history_frames\"",
        "\"catch_up_ms\"",
        "\"restart_catch_up_ms\"",
        "\"lag_after\": 0",
        "\"answers_equal\": true, \"dot_equal\": true",
    ] {
        if !json.contains(field) {
            return Err(format!("BENCH_replica.json is missing {field}"));
        }
    }
    if json.contains("\"accounting_closed\": false") {
        return Err("BENCH_replica.json records an open accounting identity".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_replication_and_sharding_invariants_hold() {
        let params = ReplicaBenchParams {
            grow_edits: 3,
            seed: 7,
            repeats: 1,
        };
        let r = run_replica_bench(&params);
        check_invariants(&r).unwrap();
        assert_eq!(r.scaling.len(), 9, "3 engine counts × 3 session counts");
        assert_eq!(
            r.replication.history_frames,
            1 + params.grow_edits as u64,
            "one open frame plus one per edit"
        );
        let json = to_json("smoke", &params, &r);
        validate_artifact(&json).unwrap();
    }
}
