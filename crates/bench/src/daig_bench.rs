//! The DAIG representation microbench behind `BENCH_daig.json`.
//!
//! Measures two things about the interned-id DAIG (PR 2):
//!
//! 1. **End-to-end single-worker throughput** on the Fig. 10 synthetic
//!    octagon workload — the same sweep `BENCH_engine.json` records
//!    (sessions grown by random edits, then every `(function, location)`
//!    queried through the engine), repeated several times because
//!    single-CPU container timing is noisy; the medians are what count.
//! 2. **Representation micro-costs**: `initial_daig` construction,
//!    a cold demanded exit query, an edit-plus-requery round trip, and a
//!    counter check that the demanded cone is traversed exactly once per
//!    evaluation no matter how many times loops unroll.
//!
//! The `--check` mode is the CI contract: it validates a committed
//! `BENCH_daig.json` (fields present), re-runs the smoke profile under
//! the compiled warm path, and fails on a large throughput regression
//! against the committed smoke point.
//!
//! Since PR 7 the sweep runs **dual-mode**: compiled (staged transfer
//! closures) and interpreted repeats are interleaved A/B on the same
//! host so the `transfer` section's speedup compares like with like, and
//! [`measure_transfer_micro`] isolates the per-cell transfer-application
//! latency (compiled vs interpreted vs fused straight-line runs).

use dai_core::analysis::FuncAnalysis;
use dai_core::explain::{CellOutcome, ExplainReport};
use dai_core::query::{IntraResolver, QueryStats};
use dai_core::{TransferMode, TransferTable, Value};
use dai_domains::{AbstractDomain, OctagonDomain};
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_memo::{content_digest, MemoTable};
use std::time::Instant;

use crate::engine_scaling::{run_scaling, ScalingParams};

/// Workload sizes for one measurement.
#[derive(Debug, Clone)]
pub struct DaigBenchParams {
    /// Engine sessions.
    pub sessions: usize,
    /// Random edits growing each session before measurement.
    pub grow_edits: usize,
    /// Workload seed (the PR 1 baseline used 379422).
    pub seed: u64,
    /// Full-sweep repetitions (medians reported).
    pub repeats: usize,
}

impl DaigBenchParams {
    /// The profile matching the PR 1 `BENCH_engine.json` recording.
    pub fn full() -> DaigBenchParams {
        DaigBenchParams {
            sessions: 8,
            grow_edits: 40,
            seed: 379422,
            repeats: 7,
        }
    }

    /// A seconds-scale profile for CI smoke runs.
    pub fn smoke() -> DaigBenchParams {
        DaigBenchParams {
            sessions: 2,
            grow_edits: 6,
            seed: 379422,
            repeats: 3,
        }
    }
}

/// One measured throughput series.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Queries per sweep.
    pub queries: usize,
    /// Per-repeat queries/second, unsorted.
    pub runs: Vec<f64>,
}

impl Throughput {
    /// The median of the runs.
    pub fn median(&self) -> f64 {
        let mut v = self.runs.clone();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    /// The best run.
    pub fn best(&self) -> f64 {
        self.runs.iter().copied().fold(0.0, f64::max)
    }
}

/// Representation micro-costs and the incrementality witness.
#[derive(Debug, Clone)]
pub struct MicroCosts {
    /// `initial_daig` construction over the loopy reference function.
    pub initial_daig_ns: f64,
    /// Cold demanded exit query (sequential evaluator, octagon).
    pub cold_exit_query_ns: f64,
    /// Statement relabel + exit re-query (incremental path).
    pub edit_requery_ns: f64,
    /// Unrolls the cold query performed.
    pub unrolls: u64,
    /// Demanded-cone traversals the *engine scheduler* performed for one
    /// exit evaluation of the same function (must be 1 — the whole point
    /// of incremental cone maintenance).
    pub cone_walks: u64,
}

const LOOPY: &str = "function f(n) { var i = 0; var s = 0; \
                     while (i < 9) { var j = 0; while (j < 4) { s = s + j; j = j + 1; } i = i + 1; } \
                     return s; }";

/// Per-cell transfer-application latency, compiled vs interpreted
/// (PR 7's staged-closure tentpole), plus the fused straight-line runs.
#[derive(Debug, Clone)]
pub struct TransferMicro {
    /// One staged-closure application (octagon, loopy reference CFG).
    pub compiled_ns: f64,
    /// One `AbstractDomain::transfer` interpretation of the same
    /// (statement, pre-state) pairs.
    pub interp_ns: f64,
    /// Amortized per-statement cost through the fused straight-line
    /// runs (`NaN` when the CFG fuses no run).
    pub fused_ns_per_stmt: f64,
    /// Edges with a staged closure.
    pub compiled_edges: usize,
    /// Edges falling back to the interpreter.
    pub interp_edges: usize,
    /// Fused runs the table precomputed.
    pub fused_runs: usize,
    /// Median of the per-round interp/compiled ratios (each round times
    /// both modes back to back, so host noise cancels within the pair).
    pub per_cell_ratio: f64,
}

impl TransferMicro {
    /// Interpreted-over-compiled latency ratio (> 1 means staging wins):
    /// the paired-round median, which is robust to the drift that makes
    /// a single ratio-of-totals swing wildly on a shared host.
    pub fn speedup(&self) -> f64 {
        self.per_cell_ratio
    }
}

/// Measures [`TransferMicro`] on the loopy reference function under the
/// octagon domain. Pre-states are grown by interpreting the edge
/// statements in order, so closures are applied to constrained octagons
/// rather than ⊤ — the shape the warm path actually sees.
pub fn measure_transfer_micro() -> TransferMicro {
    let cfg = lower_program(&parse_program(LOOPY).expect("loopy parses"))
        .expect("loopy lowers")
        .cfgs()[0]
        .clone();
    let table = TransferTable::<OctagonDomain>::build(&cfg);
    let digest =
        |stmt: &dai_lang::Stmt| content_digest(&Value::<OctagonDomain>::Stmt(stmt.clone()));

    // (edge, statement, pre-state) in edge order, state evolved by the
    // interpreter so both measured paths see identical inputs.
    let mut state = OctagonDomain::top();
    let mut pairs = Vec::new();
    for e in cfg.edges() {
        pairs.push((e.id, e.stmt.clone(), state.clone()));
        state = state.transfer(&e.stmt);
    }

    let staged: Vec<_> = pairs
        .iter()
        .filter_map(|(id, stmt, pre)| table.lookup(*id, digest(stmt)).map(|ct| (ct, pre)))
        .collect();
    assert!(!staged.is_empty(), "loopy edges stage under octagon");

    // Paired rounds: each round times both modes back to back (order
    // alternating to cancel drift) and contributes one ratio sample.
    // On a shared 1-CPU host a single long timing pass per mode is
    // hopeless — the medians below are stable where one pass is not.
    let rounds = 25usize;
    let iters = 200u32;
    let time_interp = || {
        let t0 = Instant::now();
        for _ in 0..iters {
            for (_, stmt, pre) in &pairs {
                std::hint::black_box(pre.transfer(stmt));
            }
        }
        t0.elapsed().as_nanos() as f64 / (iters as usize * pairs.len()) as f64
    };
    let time_compiled = || {
        let t0 = Instant::now();
        for _ in 0..iters {
            for (ct, pre) in &staged {
                std::hint::black_box(ct.apply(pre));
            }
        }
        t0.elapsed().as_nanos() as f64 / (iters as usize * staged.len()) as f64
    };
    let mut interp_samples = Vec::with_capacity(rounds);
    let mut compiled_samples = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let (c, i) = if r % 2 == 0 {
            let c = time_compiled();
            (c, time_interp())
        } else {
            let i = time_interp();
            (time_compiled(), i)
        };
        compiled_samples.push(c);
        interp_samples.push(i);
        ratios.push(i / c.max(1e-9));
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let compiled_ns = median(compiled_samples);
    let interp_ns = median(interp_samples);
    let per_cell_ratio = median(ratios);

    // Fused runs: one closure application covers the whole chain; the
    // per-statement figure amortizes it over the member edges.
    let runs = table.fused_runs();
    let fused_ns_per_stmt = if runs.is_empty() {
        f64::NAN
    } else {
        let inputs: Vec<_> = runs
            .iter()
            .map(|r| {
                let pre = pairs
                    .iter()
                    .find(|(id, _, _)| *id == r.edges[0])
                    .map(|(_, _, pre)| pre.clone())
                    .unwrap_or_else(OctagonDomain::top);
                (&r.ct, pre, r.edges.len())
            })
            .collect();
        let stmts: usize = inputs.iter().map(|(_, _, n)| n).sum();
        let t0 = Instant::now();
        for _ in 0..iters {
            for (ct, pre, _) in &inputs {
                std::hint::black_box(ct.apply(pre));
            }
        }
        t0.elapsed().as_nanos() as f64 / (iters as usize * stmts) as f64
    };

    TransferMicro {
        compiled_ns,
        interp_ns,
        fused_ns_per_stmt,
        compiled_edges: table.compiled_edges(),
        interp_edges: table.interp_edges(),
        fused_runs: runs.len(),
        per_cell_ratio,
    }
}

/// Per-cell transfer latency over the **grown fig10 workload program**
/// — the same statement population the end-to-end sweep evaluates, so
/// this is the per-cell figure for the acceptance workload. The fig10
/// octagons track up to the full 8-variable pool, so the shared
/// matrix-clone-and-write cost (paid identically by both modes)
/// dominates and the staging win is structurally smaller than on the
/// 4-variable loopy function.
#[derive(Debug, Clone)]
pub struct TransferMicroFig10 {
    /// One staged-closure application, median of paired rounds.
    pub compiled_ns: f64,
    /// One interpreter application of the same (statement, pre-state)s.
    pub interp_ns: f64,
    /// Median of per-round interp/compiled ratios.
    pub per_cell_ratio: f64,
    /// Edges with a staged closure (the measured population).
    pub staged_edges: usize,
    /// Edges the table left to the interpreter (calls), excluded from
    /// both timed loops so the comparison stays like-with-like.
    pub unstaged_edges: usize,
}

/// Measures [`TransferMicroFig10`]: one session grown by the sweep's
/// edit mix, every staged edge applied to a pre-state evolved by
/// interpreting its function's edges in order (bottoms skipped so the
/// closures see real matrices).
pub fn measure_transfer_micro_fig10() -> TransferMicroFig10 {
    use dai_engine::{Engine, EngineConfig, Request};
    let engine: Engine<OctagonDomain> = Engine::with_config(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let id = engine.open_session(
        "transfer-micro".to_string(),
        crate::workload::Workload::initial_program(),
    );
    let defaults = DaigBenchParams::full();
    let mut gen = crate::workload::Workload::new(defaults.seed);
    for _ in 0..defaults.grow_edits {
        let program = engine.program_of(id).expect("session open");
        let edit: dai_core::driver::ProgramEdit = gen.next_edit(&program);
        engine
            .request(Request::Edit { session: id, edit })
            .expect("bench edit applies");
    }
    let program = engine.program_of(id).expect("session open");

    let tables: Vec<TransferTable<OctagonDomain>> = program
        .cfgs()
        .iter()
        .map(TransferTable::<OctagonDomain>::build)
        .collect();
    let mut triples = Vec::new();
    let mut unstaged_edges = 0usize;
    for (cfg, table) in program.cfgs().iter().zip(&tables) {
        let mut state = OctagonDomain::top();
        for e in cfg.edges() {
            let d = content_digest(&Value::<OctagonDomain>::Stmt(e.stmt.clone()));
            match table.lookup(e.id, d) {
                Some(ct) => triples.push((ct, e.stmt.clone(), state.clone())),
                None => unstaged_edges += 1,
            }
            let next = state.transfer(&e.stmt);
            if !next.is_bottom() {
                state = next;
            }
        }
    }
    assert!(!triples.is_empty(), "grown fig10 program stages edges");

    let rounds = 25usize;
    let iters = 40u32;
    let time_interp = || {
        let t0 = Instant::now();
        for _ in 0..iters {
            for (_, stmt, pre) in &triples {
                std::hint::black_box(pre.transfer(stmt));
            }
        }
        t0.elapsed().as_nanos() as f64 / (iters as usize * triples.len()) as f64
    };
    let time_compiled = || {
        let t0 = Instant::now();
        for _ in 0..iters {
            for (ct, _, pre) in &triples {
                std::hint::black_box(ct.apply(pre));
            }
        }
        t0.elapsed().as_nanos() as f64 / (iters as usize * triples.len()) as f64
    };
    let mut compiled_samples = Vec::with_capacity(rounds);
    let mut interp_samples = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let (c, i) = if r % 2 == 0 {
            let c = time_compiled();
            (c, time_interp())
        } else {
            let i = time_interp();
            (time_compiled(), i)
        };
        compiled_samples.push(c);
        interp_samples.push(i);
        ratios.push(i / c.max(1e-9));
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    TransferMicroFig10 {
        compiled_ns: median(compiled_samples),
        interp_ns: median(interp_samples),
        per_cell_ratio: median(ratios),
        staged_edges: triples.len(),
        unstaged_edges,
    }
}

/// The fig10 explain captures behind the artifact's `"explain"` section:
/// one session grown by the sweep's edit mix, the whole-program sweep
/// served twice with cost attribution on — **cold** (the union cone
/// computed from scratch; the work/span figure the paper's demanded-cone
/// parallelism argument is about) and **warm** (the same sweep re-served
/// against the populated DAIG, so reuse dominates and the attributed
/// work collapses).
#[derive(Debug, Clone)]
pub struct ExplainFig10 {
    /// The cold-sweep capture.
    pub cold: ExplainReport,
    /// The warm re-sweep capture.
    pub warm: ExplainReport,
}

/// A field-wise `QueryStats` delta (`after - before`), for checking the
/// explain accounting identity against exactly one sweep's counters.
fn stats_delta(after: &QueryStats, before: &QueryStats) -> QueryStats {
    QueryStats {
        computed: after.computed - before.computed,
        memo_matched: after.memo_matched - before.memo_matched,
        reused: after.reused - before.reused,
        unrolls: after.unrolls - before.unrolls,
        fix_converged: after.fix_converged - before.fix_converged,
        cone_walks: after.cone_walks - before.cone_walks,
        cone_cells: after.cone_cells - before.cone_cells,
        transfers_compiled: after.transfers_compiled - before.transfers_compiled,
        transfers_interp: after.transfers_interp - before.transfers_interp,
    }
}

/// Measures [`ExplainFig10`] on the grown fig10 octagon workload. Both
/// captures have the accounting identity checked against the engine's
/// `QueryStats` delta before this returns — a report that disagrees
/// with the counters aborts the bench rather than recording fiction.
pub fn measure_explain() -> ExplainFig10 {
    use dai_engine::{Engine, EngineConfig, Request};
    let engine: Engine<OctagonDomain> = Engine::with_config(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let id = engine.open_session(
        "explain-bench".to_string(),
        crate::workload::Workload::initial_program(),
    );
    let defaults = DaigBenchParams::full();
    let mut gen = crate::workload::Workload::new(defaults.seed);
    for _ in 0..defaults.grow_edits {
        let program = engine.program_of(id).expect("session open");
        let edit: dai_core::driver::ProgramEdit = gen.next_edit(&program);
        engine
            .request(Request::Edit { session: id, edit })
            .expect("bench edit applies");
    }
    let program = engine.program_of(id).expect("session open");
    let mut targets: Vec<(String, dai_lang::Loc)> = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();

    let capture = |label: &str| {
        let before = engine.stats().query_stats;
        let report = engine.explain_sweep(id, &targets).expect("explain sweep");
        let delta = stats_delta(&engine.stats().query_stats, &before);
        report
            .check_accounting(&delta)
            .unwrap_or_else(|e| panic!("{label} explain capture is not accounting-exact: {e}"));
        report
    };
    let cold = capture("cold");
    let warm = capture("warm");
    ExplainFig10 { cold, warm }
}

/// Runs the end-to-end single-worker sweep `repeats` times under
/// `transfer`.
pub fn measure_throughput_mode(params: &DaigBenchParams, transfer: TransferMode) -> Throughput {
    let mut runs = Vec::with_capacity(params.repeats);
    let mut queries = 0;
    for _ in 0..params.repeats {
        let run = run_scaling(&ScalingParams {
            sessions: params.sessions,
            grow_edits: params.grow_edits,
            worker_counts: vec![1],
            seed: params.seed,
            transfer,
        });
        let p = run.points.first().expect("one point per sweep");
        queries = p.queries;
        runs.push(p.qps);
    }
    Throughput { queries, runs }
}

/// Runs the sweep under the default (compiled) warm path.
pub fn measure_throughput(params: &DaigBenchParams) -> Throughput {
    measure_throughput_mode(params, TransferMode::default())
}

/// Compiled and interpreted sweeps, measured **interleaved A/B** — one
/// compiled repeat then one interpreted repeat, `repeats` times — so
/// host noise (thermal drift, noisy neighbors) hits both series alike
/// and the ratio is meaningful.
pub fn measure_throughput_dual(params: &DaigBenchParams) -> (Throughput, Throughput) {
    let one = DaigBenchParams {
        repeats: 1,
        ..params.clone()
    };
    let mut compiled = Throughput {
        queries: 0,
        runs: Vec::with_capacity(params.repeats),
    };
    let mut interp = Throughput {
        queries: 0,
        runs: Vec::with_capacity(params.repeats),
    };
    for _ in 0..params.repeats {
        let c = measure_throughput_mode(&one, TransferMode::Compiled);
        compiled.queries = c.queries;
        compiled.runs.extend(c.runs);
        let i = measure_throughput_mode(&one, TransferMode::Interp);
        interp.queries = i.queries;
        interp.runs.extend(i.runs);
    }
    (compiled, interp)
}

/// Measures the representation micro-costs on the loopy reference
/// function.
pub fn measure_micro() -> MicroCosts {
    let cfg = lower_program(&parse_program(LOOPY).expect("loopy parses"))
        .expect("loopy lowers")
        .cfgs()[0]
        .clone();

    let iters = 400u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(dai_core::build::initial_daig::<OctagonDomain>(
            &cfg,
            OctagonDomain::top(),
        ));
    }
    let initial_daig_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Cold demanded exit query (sequential evaluator).
    let cold_iters = 50u32;
    let mut unrolls = 0;
    let t0 = Instant::now();
    for _ in 0..cold_iters {
        let mut fa: FuncAnalysis<OctagonDomain> =
            FuncAnalysis::new(cfg.clone(), OctagonDomain::top());
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .expect("cold query succeeds");
        unrolls = stats.unrolls;
    }
    let cold_exit_query_ns = t0.elapsed().as_nanos() as f64 / cold_iters as f64;

    // Edit + requery round trip on a warm analysis.
    let mut fa: FuncAnalysis<OctagonDomain> = FuncAnalysis::new(cfg.clone(), OctagonDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .expect("warm-up query succeeds");
    let edit_edge = fa
        .cfg()
        .edges()
        .find(|e| e.stmt.to_string() == "s = (s + j)")
        .expect("edit target exists")
        .id;
    let edit_iters = 100u32;
    let t0 = Instant::now();
    for i in 0..edit_iters {
        let stmt = dai_lang::Stmt::Assign(
            "s".into(),
            dai_lang::parse_expr(&format!("s + j + {}", i % 2)).expect("expr parses"),
        );
        fa.relabel(edit_edge, stmt).expect("relabel succeeds");
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .expect("requery succeeds");
    }
    let edit_requery_ns = t0.elapsed().as_nanos() as f64 / edit_iters as f64;

    // Incrementality witness: one engine-side evaluation, however many
    // unrolls it takes, walks the cone once.
    let pool = dai_engine::WorkerPool::new(1);
    let memo = dai_memo::SharedMemoTable::new(4);
    let mut fa: FuncAnalysis<OctagonDomain> = FuncAnalysis::new(cfg.clone(), OctagonDomain::top());
    let mut estats = QueryStats::default();
    let exit = dai_core::Name::State {
        loc: fa.cfg().exit(),
        ctx: dai_core::IterCtx::root(),
    };
    dai_engine::evaluate_targets(
        &mut fa,
        &[exit],
        &memo,
        &IntraResolver,
        &pool.handle(),
        &mut estats,
    )
    .expect("engine evaluation succeeds");

    MicroCosts {
        initial_daig_ns,
        cold_exit_query_ns,
        edit_requery_ns,
        unrolls,
        cone_walks: estats.cone_walks,
    }
}

/// Renders the JSON artifact. `transfer_dual` is the interleaved
/// (compiled, interpreted) sweep pair; `tmicro` the per-cell
/// transfer-application latencies.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    profile: &str,
    params: &DaigBenchParams,
    full: &Throughput,
    smoke: &Throughput,
    micro: &MicroCosts,
    transfer_dual: &(Throughput, Throughput),
    tmicro: &TransferMicro,
    tmicro_fig10: &TransferMicroFig10,
    explain: &ExplainFig10,
    before_file_qps: f64,
    before_remeasured_qps: Option<f64>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"daig_interned\",\n");
    out.push_str("  \"workload\": \"fig10_synthetic_octagon\",\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    out.push_str(&format!(
        "  \"sessions\": {}, \"grow_edits\": {}, \"seed\": {}, \"repeats\": {},\n",
        params.sessions, params.grow_edits, params.seed, params.repeats
    ));
    let runs = |t: &Throughput| {
        t.runs
            .iter()
            .map(|q| format!("{q:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str("  \"before\": {\n");
    out.push_str(&format!("    \"pr1_file_qps\": {before_file_qps:.1},\n"));
    match before_remeasured_qps {
        Some(q) => out.push_str(&format!(
            "    \"remeasured_qps_median\": {q:.1},\n    \"remeasured_how\": \"PR 1 binary rebuilt from its commit and interleaved A/B on this host\"\n"
        )),
        None => out.push_str("    \"remeasured_qps_median\": null\n"),
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"after\": {{\"workers\": 1, \"queries\": {}, \"qps_median\": {:.1}, \"qps_best\": {:.1}, \"runs\": [{}]}},\n",
        full.queries,
        full.median(),
        full.best(),
        runs(full)
    ));
    out.push_str(&format!(
        "  \"smoke\": {{\"queries\": {}, \"qps_median\": {:.1}, \"runs\": [{}]}},\n",
        smoke.queries,
        smoke.median(),
        runs(smoke)
    ));
    out.push_str(&format!(
        "  \"speedup_vs_pr1_file\": {:.2},\n",
        full.median() / before_file_qps
    ));
    if let Some(q) = before_remeasured_qps {
        out.push_str(&format!(
            "  \"speedup_vs_remeasured\": {:.2},\n",
            full.median() / q
        ));
    }
    let (compiled, interp) = transfer_dual;
    out.push_str("  \"transfer\": {\n");
    out.push_str(&format!(
        "    \"compiled_qps_median\": {:.1}, \"interp_qps_median\": {:.1}, \"compiled_speedup\": {:.2},\n",
        compiled.median(),
        interp.median(),
        compiled.median() / interp.median().max(1e-9)
    ));
    out.push_str(&format!(
        "    \"compiled_runs\": [{}], \"interp_runs\": [{}],\n",
        runs(compiled),
        runs(interp)
    ));
    out.push_str(&format!(
        "    \"measured_how\": \"single worker, fig10 octagon sweep, repeats interleaved A/B\",\n\
         \x20   \"micro\": {{\"compiled_ns\": {:.1}, \"interp_ns\": {:.1}, \"fused_ns_per_stmt\": {}, \"per_cell_speedup\": {:.2}, \"compiled_edges\": {}, \"interp_edges\": {}, \"fused_runs\": {}}},\n",
        tmicro.compiled_ns,
        tmicro.interp_ns,
        if tmicro.fused_ns_per_stmt.is_nan() {
            "null".to_string()
        } else {
            format!("{:.1}", tmicro.fused_ns_per_stmt)
        },
        tmicro.speedup(),
        tmicro.compiled_edges,
        tmicro.interp_edges,
        tmicro.fused_runs
    ));
    out.push_str(&format!(
        "    \"micro_fig10\": {{\"compiled_ns\": {:.1}, \"interp_ns\": {:.1}, \"per_cell_speedup\": {:.2}, \"staged_edges\": {}, \"unstaged_edges\": {}}}\n",
        tmicro_fig10.compiled_ns,
        tmicro_fig10.interp_ns,
        tmicro_fig10.per_cell_ratio,
        tmicro_fig10.staged_edges,
        tmicro_fig10.unstaged_edges
    ));
    out.push_str("  },\n");
    let report_json = |r: &ExplainReport| {
        format!(
            "{{\"cells\": {}, \"computed\": {}, \"memo_matched\": {}, \"reused\": {}, \
             \"fixes\": {}, \"unrolls\": {}, \"work_ns\": {}, \"span_ns\": {}, \
             \"work_span_parallelism\": {:.2}, \"lock_wait_ns\": {}, \"lock_held_ns\": {}, \
             \"eval_ns\": {}}}",
            r.cells.len(),
            r.outcome_cells(CellOutcome::Computed),
            r.outcome_cells(CellOutcome::MemoMatched),
            r.outcome_cells(CellOutcome::Reused),
            r.fixes.len(),
            r.unrolls(),
            r.work_ns,
            r.span_ns,
            r.parallelism(),
            r.lock_wait_ns,
            r.lock_held_ns,
            r.eval_ns
        )
    };
    out.push_str(&format!(
        "  \"explain\": {{\n    \"domain\": \"{}\", \"transfer\": \"{}\", \"accounting\": \"exact\",\n",
        explain.cold.domain, explain.cold.transfer
    ));
    out.push_str(&format!(
        "    \"cold\": {},\n    \"warm\": {}\n  }},\n",
        report_json(&explain.cold),
        report_json(&explain.warm)
    ));
    out.push_str(&format!(
        "  \"micro\": {{\"initial_daig_ns\": {:.0}, \"cold_exit_query_ns\": {:.0}, \"edit_requery_ns\": {:.0}, \"unrolls\": {}, \"cone_walks\": {}}}\n",
        micro.initial_daig_ns,
        micro.cold_exit_query_ns,
        micro.edit_requery_ns,
        micro.unrolls,
        micro.cone_walks
    ));
    out.push_str("}\n");
    out
}

/// Fields the CI check requires in a committed `BENCH_daig.json`, paired
/// with the smoke-point extractor. Returns the committed smoke median.
///
/// # Errors
///
/// A human-readable description of the first missing field.
pub fn validate_artifact(json: &str) -> Result<f64, String> {
    for field in [
        "\"bench\"",
        "\"workload\"",
        "\"before\"",
        "\"after\"",
        "\"smoke\"",
        "\"qps_median\"",
        "\"speedup_vs_pr1_file\"",
        "\"transfer\"",
        "\"compiled_qps_median\"",
        "\"interp_qps_median\"",
        "\"micro_fig10\"",
        "\"explain\"",
        "\"work_span_parallelism\"",
        "\"micro\"",
        "\"cone_walks\"",
    ] {
        if !json.contains(field) {
            return Err(format!("BENCH_daig.json is missing field {field}"));
        }
    }
    // Extract the smoke median: the `"qps_median"` inside the "smoke"
    // object (the artifact is written by `to_json`, so plain scanning is
    // reliable).
    let smoke_at = json
        .find("\"smoke\"")
        .ok_or_else(|| "missing smoke section".to_string())?;
    let tail = &json[smoke_at..];
    let key = "\"qps_median\": ";
    let at = tail
        .find(key)
        .ok_or_else(|| "smoke section lacks qps_median".to_string())?;
    let rest = &tail[at + key.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| "malformed smoke qps_median".to_string())?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("smoke qps_median is not a number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_measures_and_serializes() {
        let params = DaigBenchParams {
            sessions: 1,
            grow_edits: 2,
            seed: 7,
            repeats: 2,
        };
        let t = measure_throughput(&params);
        assert_eq!(t.runs.len(), 2);
        assert!(t.median() > 0.0);
        assert!(t.best() >= t.median());
        let micro = measure_micro();
        assert!(micro.initial_daig_ns > 0.0);
        assert!(micro.unrolls >= 2, "loopy function must unroll");
        assert_eq!(micro.cone_walks, 1, "cone traversed once despite unrolls");
        let tmicro = measure_transfer_micro();
        assert!(tmicro.compiled_ns > 0.0 && tmicro.interp_ns > 0.0);
        assert!(tmicro.compiled_edges > 0, "loopy edges stage under octagon");
        let tmicro_fig10 = measure_transfer_micro_fig10();
        assert!(tmicro_fig10.compiled_ns > 0.0 && tmicro_fig10.interp_ns > 0.0);
        assert!(tmicro_fig10.staged_edges > 0, "fig10 edges stage");
        let dual = measure_throughput_dual(&DaigBenchParams {
            repeats: 1,
            ..params.clone()
        });
        assert_eq!(dual.0.runs.len(), 1);
        assert_eq!(dual.1.runs.len(), 1);
        // Both modes answer the identical sweep.
        assert_eq!(dual.0.queries, dual.1.queries);
        // Explain: accounting identity is checked inside measure_explain;
        // here the structural shape of the two captures.
        let explain = measure_explain();
        assert!(!explain.cold.cells.is_empty(), "cold cone has cells");
        assert!(explain.cold.parallelism() >= 1.0, "span never exceeds work");
        assert!(
            explain.cold.outcome_cells(CellOutcome::Computed) > 0,
            "a cold sweep computes"
        );
        assert_eq!(
            explain.warm.outcome_cells(CellOutcome::Computed),
            0,
            "a warm re-sweep recomputes nothing"
        );
        let json = to_json(
            "smoke",
            &params,
            &t,
            &t,
            &micro,
            &dual,
            &tmicro,
            &tmicro_fig10,
            &explain,
            55697.9,
            Some(45991.0),
        );
        let committed_median = validate_artifact(&json).expect("artifact validates");
        // The artifact rounds to one decimal place.
        assert!((committed_median - t.median()).abs() <= 0.05 + 1e-9);
    }

    #[test]
    fn validate_rejects_missing_fields() {
        assert!(validate_artifact("{}").is_err());
        assert!(validate_artifact("{\"bench\": 1}").is_err());
    }
}
