//! The DAIG representation microbench behind `BENCH_daig.json`.
//!
//! Measures two things about the interned-id DAIG (PR 2):
//!
//! 1. **End-to-end single-worker throughput** on the Fig. 10 synthetic
//!    octagon workload — the same sweep `BENCH_engine.json` records
//!    (sessions grown by random edits, then every `(function, location)`
//!    queried through the engine), repeated several times because
//!    single-CPU container timing is noisy; the medians are what count.
//! 2. **Representation micro-costs**: `initial_daig` construction,
//!    a cold demanded exit query, an edit-plus-requery round trip, and a
//!    counter check that the demanded cone is traversed exactly once per
//!    evaluation no matter how many times loops unroll.
//!
//! The `--check` mode is the CI contract: it validates a committed
//! `BENCH_daig.json` (fields present), re-runs the smoke profile, and
//! fails on a large throughput regression against the committed smoke
//! point.

use dai_core::analysis::FuncAnalysis;
use dai_core::query::{IntraResolver, QueryStats};
use dai_domains::OctagonDomain;
use dai_lang::cfg::lower_program;
use dai_lang::parser::parse_program;
use dai_memo::MemoTable;
use std::time::Instant;

use crate::engine_scaling::{run_scaling, ScalingParams};

/// Workload sizes for one measurement.
#[derive(Debug, Clone)]
pub struct DaigBenchParams {
    /// Engine sessions.
    pub sessions: usize,
    /// Random edits growing each session before measurement.
    pub grow_edits: usize,
    /// Workload seed (the PR 1 baseline used 379422).
    pub seed: u64,
    /// Full-sweep repetitions (medians reported).
    pub repeats: usize,
}

impl DaigBenchParams {
    /// The profile matching the PR 1 `BENCH_engine.json` recording.
    pub fn full() -> DaigBenchParams {
        DaigBenchParams {
            sessions: 8,
            grow_edits: 40,
            seed: 379422,
            repeats: 7,
        }
    }

    /// A seconds-scale profile for CI smoke runs.
    pub fn smoke() -> DaigBenchParams {
        DaigBenchParams {
            sessions: 2,
            grow_edits: 6,
            seed: 379422,
            repeats: 3,
        }
    }
}

/// One measured throughput series.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Queries per sweep.
    pub queries: usize,
    /// Per-repeat queries/second, unsorted.
    pub runs: Vec<f64>,
}

impl Throughput {
    /// The median of the runs.
    pub fn median(&self) -> f64 {
        let mut v = self.runs.clone();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    /// The best run.
    pub fn best(&self) -> f64 {
        self.runs.iter().copied().fold(0.0, f64::max)
    }
}

/// Representation micro-costs and the incrementality witness.
#[derive(Debug, Clone)]
pub struct MicroCosts {
    /// `initial_daig` construction over the loopy reference function.
    pub initial_daig_ns: f64,
    /// Cold demanded exit query (sequential evaluator, octagon).
    pub cold_exit_query_ns: f64,
    /// Statement relabel + exit re-query (incremental path).
    pub edit_requery_ns: f64,
    /// Unrolls the cold query performed.
    pub unrolls: u64,
    /// Demanded-cone traversals the *engine scheduler* performed for one
    /// exit evaluation of the same function (must be 1 — the whole point
    /// of incremental cone maintenance).
    pub cone_walks: u64,
}

const LOOPY: &str = "function f(n) { var i = 0; var s = 0; \
                     while (i < 9) { var j = 0; while (j < 4) { s = s + j; j = j + 1; } i = i + 1; } \
                     return s; }";

/// Runs the end-to-end single-worker sweep `repeats` times.
pub fn measure_throughput(params: &DaigBenchParams) -> Throughput {
    let mut runs = Vec::with_capacity(params.repeats);
    let mut queries = 0;
    for _ in 0..params.repeats {
        let run = run_scaling(&ScalingParams {
            sessions: params.sessions,
            grow_edits: params.grow_edits,
            worker_counts: vec![1],
            seed: params.seed,
        });
        let p = run.points.first().expect("one point per sweep");
        queries = p.queries;
        runs.push(p.qps);
    }
    Throughput { queries, runs }
}

/// Measures the representation micro-costs on the loopy reference
/// function.
pub fn measure_micro() -> MicroCosts {
    let cfg = lower_program(&parse_program(LOOPY).expect("loopy parses"))
        .expect("loopy lowers")
        .cfgs()[0]
        .clone();

    let iters = 400u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(dai_core::build::initial_daig::<OctagonDomain>(
            &cfg,
            OctagonDomain::top(),
        ));
    }
    let initial_daig_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Cold demanded exit query (sequential evaluator).
    let cold_iters = 50u32;
    let mut unrolls = 0;
    let t0 = Instant::now();
    for _ in 0..cold_iters {
        let mut fa: FuncAnalysis<OctagonDomain> =
            FuncAnalysis::new(cfg.clone(), OctagonDomain::top());
        let mut memo = MemoTable::new();
        let mut stats = QueryStats::default();
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .expect("cold query succeeds");
        unrolls = stats.unrolls;
    }
    let cold_exit_query_ns = t0.elapsed().as_nanos() as f64 / cold_iters as f64;

    // Edit + requery round trip on a warm analysis.
    let mut fa: FuncAnalysis<OctagonDomain> = FuncAnalysis::new(cfg.clone(), OctagonDomain::top());
    let mut memo = MemoTable::new();
    let mut stats = QueryStats::default();
    fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
        .expect("warm-up query succeeds");
    let edit_edge = fa
        .cfg()
        .edges()
        .find(|e| e.stmt.to_string() == "s = (s + j)")
        .expect("edit target exists")
        .id;
    let edit_iters = 100u32;
    let t0 = Instant::now();
    for i in 0..edit_iters {
        let stmt = dai_lang::Stmt::Assign(
            "s".into(),
            dai_lang::parse_expr(&format!("s + j + {}", i % 2)).expect("expr parses"),
        );
        fa.relabel(edit_edge, stmt).expect("relabel succeeds");
        fa.query_exit(&mut memo, &mut IntraResolver, &mut stats)
            .expect("requery succeeds");
    }
    let edit_requery_ns = t0.elapsed().as_nanos() as f64 / edit_iters as f64;

    // Incrementality witness: one engine-side evaluation, however many
    // unrolls it takes, walks the cone once.
    let pool = dai_engine::WorkerPool::new(1);
    let memo = dai_memo::SharedMemoTable::new(4);
    let mut fa: FuncAnalysis<OctagonDomain> = FuncAnalysis::new(cfg.clone(), OctagonDomain::top());
    let mut estats = QueryStats::default();
    let exit = dai_core::Name::State {
        loc: fa.cfg().exit(),
        ctx: dai_core::IterCtx::root(),
    };
    dai_engine::evaluate_targets(
        &mut fa,
        &[exit],
        &memo,
        &IntraResolver,
        &pool.handle(),
        &mut estats,
    )
    .expect("engine evaluation succeeds");

    MicroCosts {
        initial_daig_ns,
        cold_exit_query_ns,
        edit_requery_ns,
        unrolls,
        cone_walks: estats.cone_walks,
    }
}

/// Renders the JSON artifact.
pub fn to_json(
    profile: &str,
    params: &DaigBenchParams,
    full: &Throughput,
    smoke: &Throughput,
    micro: &MicroCosts,
    before_file_qps: f64,
    before_remeasured_qps: Option<f64>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"daig_interned\",\n");
    out.push_str("  \"workload\": \"fig10_synthetic_octagon\",\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, usize::from)
    ));
    out.push_str(&format!(
        "  \"sessions\": {}, \"grow_edits\": {}, \"seed\": {}, \"repeats\": {},\n",
        params.sessions, params.grow_edits, params.seed, params.repeats
    ));
    let runs = |t: &Throughput| {
        t.runs
            .iter()
            .map(|q| format!("{q:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str("  \"before\": {\n");
    out.push_str(&format!("    \"pr1_file_qps\": {before_file_qps:.1},\n"));
    match before_remeasured_qps {
        Some(q) => out.push_str(&format!(
            "    \"remeasured_qps_median\": {q:.1},\n    \"remeasured_how\": \"PR 1 binary rebuilt from its commit and interleaved A/B on this host\"\n"
        )),
        None => out.push_str("    \"remeasured_qps_median\": null\n"),
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"after\": {{\"workers\": 1, \"queries\": {}, \"qps_median\": {:.1}, \"qps_best\": {:.1}, \"runs\": [{}]}},\n",
        full.queries,
        full.median(),
        full.best(),
        runs(full)
    ));
    out.push_str(&format!(
        "  \"smoke\": {{\"queries\": {}, \"qps_median\": {:.1}, \"runs\": [{}]}},\n",
        smoke.queries,
        smoke.median(),
        runs(smoke)
    ));
    out.push_str(&format!(
        "  \"speedup_vs_pr1_file\": {:.2},\n",
        full.median() / before_file_qps
    ));
    if let Some(q) = before_remeasured_qps {
        out.push_str(&format!(
            "  \"speedup_vs_remeasured\": {:.2},\n",
            full.median() / q
        ));
    }
    out.push_str(&format!(
        "  \"micro\": {{\"initial_daig_ns\": {:.0}, \"cold_exit_query_ns\": {:.0}, \"edit_requery_ns\": {:.0}, \"unrolls\": {}, \"cone_walks\": {}}}\n",
        micro.initial_daig_ns,
        micro.cold_exit_query_ns,
        micro.edit_requery_ns,
        micro.unrolls,
        micro.cone_walks
    ));
    out.push_str("}\n");
    out
}

/// Fields the CI check requires in a committed `BENCH_daig.json`, paired
/// with the smoke-point extractor. Returns the committed smoke median.
///
/// # Errors
///
/// A human-readable description of the first missing field.
pub fn validate_artifact(json: &str) -> Result<f64, String> {
    for field in [
        "\"bench\"",
        "\"workload\"",
        "\"before\"",
        "\"after\"",
        "\"smoke\"",
        "\"qps_median\"",
        "\"speedup_vs_pr1_file\"",
        "\"micro\"",
        "\"cone_walks\"",
    ] {
        if !json.contains(field) {
            return Err(format!("BENCH_daig.json is missing field {field}"));
        }
    }
    // Extract the smoke median: the `"qps_median"` inside the "smoke"
    // object (the artifact is written by `to_json`, so plain scanning is
    // reliable).
    let smoke_at = json
        .find("\"smoke\"")
        .ok_or_else(|| "missing smoke section".to_string())?;
    let tail = &json[smoke_at..];
    let key = "\"qps_median\": ";
    let at = tail
        .find(key)
        .ok_or_else(|| "smoke section lacks qps_median".to_string())?;
    let rest = &tail[at + key.len()..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| "malformed smoke qps_median".to_string())?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("smoke qps_median is not a number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_measures_and_serializes() {
        let params = DaigBenchParams {
            sessions: 1,
            grow_edits: 2,
            seed: 7,
            repeats: 2,
        };
        let t = measure_throughput(&params);
        assert_eq!(t.runs.len(), 2);
        assert!(t.median() > 0.0);
        assert!(t.best() >= t.median());
        let micro = measure_micro();
        assert!(micro.initial_daig_ns > 0.0);
        assert!(micro.unrolls >= 2, "loopy function must unroll");
        assert_eq!(micro.cone_walks, 1, "cone traversed once despite unrolls");
        let json = to_json("smoke", &params, &t, &t, &micro, 55697.9, Some(45991.0));
        let committed_median = validate_artifact(&json).expect("artifact validates");
        // The artifact rounds to one decimal place.
        assert!((committed_median - t.median()).abs() <= 0.05 + 1e-9);
    }

    #[test]
    fn validate_rejects_missing_fields() {
        assert!(validate_artifact("{}").is_err());
        assert!(validate_artifact("{\"bench\": 1}").is_err());
    }
}
