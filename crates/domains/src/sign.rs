//! The sign abstract domain: a *finite-height* lattice instantiation.
//!
//! The paper observes (§2.3) that "for an abstract domain of finite height
//! 𝑘, it would have been sufficient to encode the unrolling of fix eagerly
//! into an acyclic DAIG by inlining the abstract iteration 𝑘 times" — and
//! that demanded unrolling handles such domains as a special case, with
//! widening degenerating to join. This module provides the textbook
//! finite-height example to exercise exactly that path: the eight-element
//! sign lattice
//!
//! ```text
//!            ⊤
//!         /  |  \
//!       ≤0   ≠0  ≥0
//!       | \ /  \/ |
//!       | / \  /\ |
//!       −    0    +
//!         \  |  /
//!            ⊥
//! ```
//!
//! over environments mapping variables to signs. A binding `x ↦ s` asserts
//! that `x` currently holds an *integer* whose sign is described by `s`
//! (so even `x ↦ ⊤sign` carries information: "x is a number"); variables
//! that may hold non-numeric values are simply untracked.
//!
//! [`Sign::widen`] is [`Sign::join`]: every ascending chain has length at
//! most 3, so convergence needs no extrapolation — the DAIG's `∇` edges
//! are then plain upper bounds, and demanded unrolling terminates by
//! lattice height alone.

use crate::bool3::Bool3;
use crate::{AbstractDomain, CallSite};
use dai_lang::interp::{ConcreteState, Value};
use dai_lang::{BinOp, Expr, Stmt, Symbol, UnOp, RETURN_VAR};
use std::collections::BTreeMap;
use std::fmt;

/// An element of the sign lattice, represented as a bitset over the three
/// atoms `−` (negative), `0` (zero), `+` (positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sign(u8);

const N: u8 = 0b001;
const Z: u8 = 0b010;
const P: u8 = 0b100;

// The arithmetic methods intentionally mirror the other domains' naming
// (`Interval::add`, `Interval::neg`, …) rather than the std ops traits:
// they are *abstract* operations returning over-approximations, and a `+`
// that silently widens would mislead at call sites.
#[allow(clippy::should_implement_trait)]
impl Sign {
    /// The raw `−/0/+` bitset (persistence accessor).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds a sign from its bitset; `None` for out-of-range bits (a
    /// corrupted snapshot must not materialize a ninth lattice element).
    pub fn from_bits(bits: u8) -> Option<Sign> {
        (bits <= (N | Z | P)).then_some(Sign(bits))
    }

    /// `⊥` — no integer at all.
    pub const BOT: Sign = Sign(0);
    /// Strictly negative.
    pub const NEG: Sign = Sign(N);
    /// Exactly zero.
    pub const ZERO: Sign = Sign(Z);
    /// Strictly positive.
    pub const POS: Sign = Sign(P);
    /// `≤ 0`.
    pub const NONPOS: Sign = Sign(N | Z);
    /// `≥ 0`.
    pub const NONNEG: Sign = Sign(Z | P);
    /// `≠ 0`.
    pub const NONZERO: Sign = Sign(N | P);
    /// Any integer.
    pub const TOP: Sign = Sign(N | Z | P);

    /// The sign of a concrete integer.
    pub fn of(n: i64) -> Sign {
        match n.cmp(&0) {
            std::cmp::Ordering::Less => Sign::NEG,
            std::cmp::Ordering::Equal => Sign::ZERO,
            std::cmp::Ordering::Greater => Sign::POS,
        }
    }

    /// Is this `⊥`?
    pub fn is_bottom(self) -> bool {
        self.0 == 0
    }

    /// May this sign include negative values?
    pub fn has_neg(self) -> bool {
        self.0 & N != 0
    }

    /// May this sign include zero?
    pub fn has_zero(self) -> bool {
        self.0 & Z != 0
    }

    /// May this sign include positive values?
    pub fn has_pos(self) -> bool {
        self.0 & P != 0
    }

    /// Does the concretization contain `n`?
    pub fn contains(self, n: i64) -> bool {
        self.meet(Sign::of(n)) == Sign::of(n)
    }

    /// Least upper bound.
    pub fn join(self, other: Sign) -> Sign {
        Sign(self.0 | other.0)
    }

    /// Greatest lower bound.
    pub fn meet(self, other: Sign) -> Sign {
        Sign(self.0 & other.0)
    }

    /// Inclusion `⊑`.
    pub fn leq(self, other: Sign) -> bool {
        self.0 & !other.0 == 0
    }

    /// Widening — the lattice is finite, so this is just [`Sign::join`]
    /// (the degenerate case the paper's §2.3 discussion anticipates).
    pub fn widen(self, next: Sign) -> Sign {
        self.join(next)
    }

    /// Enumerates the atomic signs (`−`, `0`, `+`) included in this value.
    fn atoms(self) -> impl Iterator<Item = Sign> {
        [Sign::NEG, Sign::ZERO, Sign::POS]
            .into_iter()
            .filter(move |a| a.leq(self))
    }

    /// Abstract negation. (Concrete negation traps on `i64::MIN`; trapped
    /// executions have no post-state, so flipping atoms is sound.)
    pub fn neg(self) -> Sign {
        let mut bits = self.0 & Z;
        if self.0 & N != 0 {
            bits |= P;
        }
        if self.0 & P != 0 {
            bits |= N;
        }
        Sign(bits)
    }

    /// Abstract addition.
    pub fn add(self, other: Sign) -> Sign {
        let mut out = Sign::BOT;
        for a in self.atoms() {
            for b in other.atoms() {
                out = out.join(match (a, b) {
                    (Sign::ZERO, x) | (x, Sign::ZERO) => x,
                    (Sign::NEG, Sign::NEG) => Sign::NEG,
                    (Sign::POS, Sign::POS) => Sign::POS,
                    _ => Sign::TOP,
                });
            }
        }
        out
    }

    /// Abstract subtraction.
    pub fn sub(self, other: Sign) -> Sign {
        self.add(other.neg())
    }

    /// Abstract multiplication.
    pub fn mul(self, other: Sign) -> Sign {
        let mut out = Sign::BOT;
        for a in self.atoms() {
            for b in other.atoms() {
                out = out.join(match (a, b) {
                    (Sign::ZERO, _) | (_, Sign::ZERO) => Sign::ZERO,
                    (Sign::NEG, Sign::NEG) | (Sign::POS, Sign::POS) => Sign::POS,
                    _ => Sign::NEG,
                });
            }
        }
        out
    }

    /// Abstract (truncating) division. Division by zero traps, so the `0`
    /// atoms of the divisor contribute nothing.
    pub fn div(self, other: Sign) -> Sign {
        let mut out = Sign::BOT;
        for a in self.atoms() {
            for b in other.atoms() {
                out = out.join(match (a, b) {
                    (_, Sign::ZERO) => Sign::BOT, // traps
                    (Sign::ZERO, _) => Sign::ZERO,
                    // Truncation can reach zero: 3/5 = 0.
                    (Sign::POS, Sign::POS) | (Sign::NEG, Sign::NEG) => Sign::NONNEG,
                    _ => Sign::NONPOS,
                });
            }
        }
        out
    }

    /// Abstract remainder (sign follows the dividend; may be zero).
    pub fn rem(self, other: Sign) -> Sign {
        let mut out = Sign::BOT;
        for a in self.atoms() {
            for b in other.atoms() {
                out = out.join(match (a, b) {
                    (_, Sign::ZERO) => Sign::BOT, // traps
                    (Sign::ZERO, _) => Sign::ZERO,
                    (Sign::POS, _) => Sign::NONNEG,
                    _ => Sign::NONPOS,
                });
            }
        }
        out
    }

    /// Abstract `<` as a three-valued boolean.
    pub fn lt(self, other: Sign) -> Bool3 {
        let mut out = Bool3::Bot;
        for a in self.atoms() {
            for b in other.atoms() {
                out = out.join(match (a, b) {
                    (Sign::NEG, Sign::ZERO | Sign::POS) | (Sign::ZERO, Sign::POS) => Bool3::True,
                    (Sign::ZERO, Sign::ZERO)
                    | (Sign::ZERO, Sign::NEG)
                    | (Sign::POS, Sign::NEG | Sign::ZERO) => Bool3::False,
                    _ => Bool3::Top,
                });
            }
        }
        out
    }

    /// Abstract `<=`.
    pub fn le(self, other: Sign) -> Bool3 {
        let mut out = Bool3::Bot;
        for a in self.atoms() {
            for b in other.atoms() {
                out = out.join(match (a, b) {
                    (Sign::NEG, Sign::ZERO | Sign::POS) | (Sign::ZERO, Sign::ZERO | Sign::POS) => {
                        Bool3::True
                    }
                    (Sign::ZERO, Sign::NEG) | (Sign::POS, Sign::NEG | Sign::ZERO) => Bool3::False,
                    _ => Bool3::Top,
                });
            }
        }
        out
    }

    /// Abstract `==`.
    pub fn eq_abs(self, other: Sign) -> Bool3 {
        let mut out = Bool3::Bot;
        for a in self.atoms() {
            for b in other.atoms() {
                out = out.join(match (a, b) {
                    (Sign::ZERO, Sign::ZERO) => Bool3::True,
                    (x, y) if x == y => Bool3::Top, // two negatives may differ
                    _ => Bool3::False,
                });
            }
        }
        out
    }

    /// Refines `self` under the assumption `self op other`.
    pub fn refine(self, op: BinOp, other: Sign) -> Sign {
        if other.is_bottom() {
            return Sign::BOT; // comparison never executes
        }
        let region = match op {
            BinOp::Lt => {
                if other.has_pos() {
                    Sign::TOP
                } else {
                    Sign::NEG // x < y ≤ 0 ⟹ x < 0
                }
            }
            BinOp::Le => {
                if other.has_pos() {
                    Sign::TOP
                } else if other.has_zero() {
                    Sign::NONPOS
                } else {
                    Sign::NEG
                }
            }
            BinOp::Gt => {
                if other.has_neg() {
                    Sign::TOP
                } else {
                    Sign::POS // x > y ≥ 0 ⟹ x > 0
                }
            }
            BinOp::Ge => {
                if other.has_neg() {
                    Sign::TOP
                } else if other.has_zero() {
                    Sign::NONNEG
                } else {
                    Sign::POS
                }
            }
            BinOp::Eq => other,
            BinOp::Ne => {
                if other == Sign::ZERO {
                    Sign::NONZERO
                } else {
                    Sign::TOP
                }
            }
            _ => Sign::TOP,
        };
        self.meet(region)
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match *self {
            Sign::BOT => "⊥",
            Sign::NEG => "−",
            Sign::ZERO => "0",
            Sign::POS => "+",
            Sign::NONPOS => "≤0",
            Sign::NONNEG => "≥0",
            Sign::NONZERO => "≠0",
            Sign::TOP => "⊤",
            _ => unreachable!("all 8 elements covered"),
        };
        write!(f, "{s}")
    }
}

/// Result of abstractly evaluating an expression in a sign environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SVal {
    /// The expression cannot produce a value (its evaluation traps).
    Bot,
    /// Definitely an integer with the given sign.
    Num(Sign),
    /// Definitely not an integer (boolean, reference, array, …).
    NonNum,
    /// Could be anything.
    Any,
}

impl SVal {
    /// The numeric projection: what integer values can this be? Non-numbers
    /// contribute `⊥` because using them as numbers traps.
    fn as_num(self) -> Sign {
        match self {
            SVal::Bot | SVal::NonNum => Sign::BOT,
            SVal::Num(s) => s,
            SVal::Any => Sign::TOP,
        }
    }
}

/// The sign domain: `⊥` or an environment of sign bindings. A binding
/// asserts its variable holds an integer of that sign; unbound variables
/// may hold anything.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SignDomain {
    /// Unreachable.
    Bottom,
    /// Reachable with the given sign constraints.
    Env(BTreeMap<Symbol, Sign>),
}

impl SignDomain {
    /// The unconstrained state (no bindings).
    pub fn top() -> SignDomain {
        SignDomain::Env(BTreeMap::new())
    }

    /// A state from explicit bindings.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Symbol, Sign)>) -> SignDomain {
        let mut env = BTreeMap::new();
        for (k, v) in bindings {
            if v.is_bottom() {
                return SignDomain::Bottom;
            }
            env.insert(k, v);
        }
        SignDomain::Env(env)
    }

    /// The sign of `var` (`⊤` when untracked, `⊥` in the bottom state).
    pub fn sign_of(&self, var: &str) -> Sign {
        match self {
            SignDomain::Bottom => Sign::BOT,
            SignDomain::Env(env) => env.get(&Symbol::new(var)).copied().unwrap_or(Sign::TOP),
        }
    }

    fn with_binding(&self, var: &Symbol, v: SVal) -> SignDomain {
        let SignDomain::Env(env) = self else {
            return SignDomain::Bottom;
        };
        let mut env = env.clone();
        match v {
            SVal::Bot => return SignDomain::Bottom,
            SVal::Num(s) if s.is_bottom() => return SignDomain::Bottom,
            SVal::Num(s) => {
                env.insert(var.clone(), s);
            }
            SVal::NonNum | SVal::Any => {
                env.remove(var);
            }
        }
        SignDomain::Env(env)
    }

    /// Refines this state by assuming `cond` evaluates to `expected`.
    fn refine(&self, cond: &Expr, expected: bool) -> SignDomain {
        let SignDomain::Env(env) = self else {
            return SignDomain::Bottom;
        };
        let b = eval_bool(env, cond);
        let possible = if expected {
            b.may_true()
        } else {
            b.may_false()
        };
        if !possible {
            return SignDomain::Bottom;
        }
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.refine(inner, !expected),
            Expr::Binary(BinOp::And, l, r) if expected => {
                let first = self.refine(l, true);
                if first.is_bottom() {
                    first
                } else {
                    first.refine(r, true)
                }
            }
            Expr::Binary(BinOp::And, l, r) => self.refine(l, false).join(&self.refine(r, false)),
            Expr::Binary(BinOp::Or, l, r) if expected => {
                self.refine(l, true).join(&self.refine(r, true))
            }
            Expr::Binary(BinOp::Or, l, r) => {
                let first = self.refine(l, false);
                if first.is_bottom() {
                    first
                } else {
                    first.refine(r, false)
                }
            }
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let op = if expected {
                    *op
                } else {
                    op.negate_comparison().expect("comparison")
                };
                let mut out = self.refine_side(op, l, r);
                if let Some(flipped) = op.flip_comparison() {
                    if !out.is_bottom() {
                        out = out.refine_side(flipped, r, l);
                    }
                }
                out
            }
            _ => self.clone(),
        }
    }

    /// Refines the left side of `l op r` when `l` is a variable.
    fn refine_side(&self, op: BinOp, l: &Expr, r: &Expr) -> SignDomain {
        let SignDomain::Env(env) = self else {
            return SignDomain::Bottom;
        };
        let Expr::Var(x) = l else { return self.clone() };
        let rv = eval_sign(env, r);
        let rs = match rv {
            SVal::Num(s) => s,
            // Comparing against a non-number: order comparisons trap, and
            // (in)equality against untracked values refines nothing.
            _ => return self.clone(),
        };
        // A surviving numeric comparison proves `x` is a number even when
        // previously untracked.
        let xs = env.get(x).copied().unwrap_or(Sign::TOP);
        let refined = xs.refine(op, rs);
        self.with_binding(x, SVal::Num(refined))
    }
}

impl fmt::Display for SignDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignDomain::Bottom => write!(f, "⊥"),
            SignDomain::Env(env) => {
                write!(f, "{{")?;
                for (i, (k, v)) in env.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Evaluates the sign of `expr` in `env`.
impl crate::compile::CompileTransfer for SignDomain {
    fn stage(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        use crate::compile::{CompiledTransfer, TransferShape};
        match stmt {
            Stmt::Skip | Stmt::Print(_) => Some(CompiledTransfer::new(
                TransferShape::Identity,
                |pre: &SignDomain| match pre {
                    SignDomain::Env(_) => pre.clone(),
                    SignDomain::Bottom => SignDomain::Bottom,
                },
            )),
            Stmt::Assign(x, e) => {
                let x = x.clone();
                match e {
                    // Literal right-hand sides evaluate the same in every
                    // environment: stage the abstract value itself.
                    Expr::Int(_) | Expr::Bool(_) | Expr::Null => {
                        let v = eval_sign(&BTreeMap::new(), e);
                        Some(CompiledTransfer::new(
                            TransferShape::ConstAssign,
                            move |pre: &SignDomain| match pre {
                                SignDomain::Env(_) => pre.with_binding(&x, v),
                                SignDomain::Bottom => SignDomain::Bottom,
                            },
                        ))
                    }
                    _ => {
                        let shape = if matches!(e, Expr::Var(_)) {
                            TransferShape::CopyAssign
                        } else {
                            TransferShape::Assign
                        };
                        let e = e.clone();
                        Some(CompiledTransfer::new(shape, move |pre: &SignDomain| {
                            let SignDomain::Env(env) = pre else {
                                return SignDomain::Bottom;
                            };
                            pre.with_binding(&x, eval_sign(env, &e))
                        }))
                    }
                }
            }
            Stmt::ArrayWrite(a, i, _) => {
                let a = a.clone();
                let i = i.clone();
                Some(CompiledTransfer::new(
                    TransferShape::HeapWrite,
                    move |pre: &SignDomain| {
                        let SignDomain::Env(env) = pre else {
                            return SignDomain::Bottom;
                        };
                        if eval_sign(env, &i).as_num().is_bottom() {
                            return SignDomain::Bottom;
                        }
                        if env.contains_key(&a) {
                            return SignDomain::Bottom;
                        }
                        pre.clone()
                    },
                ))
            }
            Stmt::FieldWrite(x, _, _) => {
                let x = x.clone();
                Some(CompiledTransfer::new(
                    TransferShape::HeapWrite,
                    move |pre: &SignDomain| {
                        let SignDomain::Env(env) = pre else {
                            return SignDomain::Bottom;
                        };
                        if env.contains_key(&x) {
                            return SignDomain::Bottom;
                        }
                        pre.clone()
                    },
                ))
            }
            Stmt::Assume(e) => {
                let e = e.clone();
                Some(CompiledTransfer::new(
                    TransferShape::Assume,
                    move |pre: &SignDomain| match pre {
                        SignDomain::Env(_) => pre.refine(&e, true),
                        SignDomain::Bottom => SignDomain::Bottom,
                    },
                ))
            }
            Stmt::Call { .. } => None,
        }
    }
}

fn eval_sign(env: &BTreeMap<Symbol, Sign>, expr: &Expr) -> SVal {
    match expr {
        Expr::Int(n) => SVal::Num(Sign::of(*n)),
        Expr::Bool(_) | Expr::Null | Expr::ArrayLit(_) | Expr::AllocNode => SVal::NonNum,
        Expr::Var(x) => env.get(x).map(|s| SVal::Num(*s)).unwrap_or(SVal::Any),
        Expr::Unary(UnOp::Neg, e) => SVal::Num(eval_sign(env, e).as_num().neg()),
        Expr::Unary(UnOp::Not, _) => SVal::NonNum,
        Expr::Binary(op, l, r) => {
            use BinOp::*;
            let (a, b) = (eval_sign(env, l), eval_sign(env, r));
            match op {
                Add => SVal::Num(a.as_num().add(b.as_num())),
                Sub => SVal::Num(a.as_num().sub(b.as_num())),
                Mul => SVal::Num(a.as_num().mul(b.as_num())),
                Div => SVal::Num(a.as_num().div(b.as_num())),
                Mod => SVal::Num(a.as_num().rem(b.as_num())),
                Lt | Le | Gt | Ge | Eq | Ne | And | Or => SVal::NonNum,
            }
        }
        // Array/heap contents are untracked; `len` is provably ≥ 0.
        Expr::ArrayRead(..) | Expr::Field(..) => SVal::Any,
        Expr::ArrayLen(_) => SVal::Num(Sign::NONNEG),
    }
}

/// Evaluates `expr` as a three-valued boolean (for guard feasibility).
fn eval_bool(env: &BTreeMap<Symbol, Sign>, expr: &Expr) -> Bool3 {
    match expr {
        Expr::Bool(b) => Bool3::of(*b),
        Expr::Unary(UnOp::Not, e) => eval_bool(env, e).not(),
        Expr::Binary(op, l, r) => {
            use BinOp::*;
            match op {
                And => eval_bool(env, l).and(eval_bool(env, r)),
                Or => eval_bool(env, l).or(eval_bool(env, r)),
                Lt | Le | Gt | Ge | Eq | Ne => {
                    let (a, b) = (eval_sign(env, l), eval_sign(env, r));
                    let (SVal::Num(sa), SVal::Num(sb)) = (a, b) else {
                        return Bool3::Top;
                    };
                    match op {
                        Lt => sa.lt(sb),
                        Le => sa.le(sb),
                        Gt => sb.lt(sa),
                        Ge => sb.le(sa),
                        Eq => sa.eq_abs(sb),
                        Ne => sa.eq_abs(sb).not(),
                        _ => unreachable!(),
                    }
                }
                _ => Bool3::Top,
            }
        }
        _ => Bool3::Top,
    }
}

impl AbstractDomain for SignDomain {
    fn bottom() -> Self {
        SignDomain::Bottom
    }

    fn is_bottom(&self) -> bool {
        matches!(self, SignDomain::Bottom)
    }

    fn entry_default(_params: &[Symbol]) -> Self {
        SignDomain::top()
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (SignDomain::Bottom, x) | (x, SignDomain::Bottom) => x.clone(),
            (SignDomain::Env(a), SignDomain::Env(b)) => {
                // Unbound means "any value": only variables tracked on both
                // sides stay tracked.
                let mut env = BTreeMap::new();
                for (k, va) in a {
                    if let Some(vb) = b.get(k) {
                        env.insert(k.clone(), va.join(*vb));
                    }
                }
                SignDomain::Env(env)
            }
        }
    }

    fn widen(&self, next: &Self) -> Self {
        // Finite height: join suffices (paper §2.3's degenerate case).
        self.join(next)
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (SignDomain::Bottom, _) => true,
            (_, SignDomain::Bottom) => false,
            (SignDomain::Env(a), SignDomain::Env(b)) => b
                .iter()
                .all(|(k, vb)| a.get(k).map(|va| va.leq(*vb)).unwrap_or(false)),
        }
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        let SignDomain::Env(env) = self else {
            return SignDomain::Bottom;
        };
        match stmt {
            Stmt::Skip | Stmt::Print(_) => self.clone(),
            Stmt::Assign(x, e) => self.with_binding(x, eval_sign(env, e)),
            Stmt::ArrayWrite(a, i, e) => {
                // Indexing with a non-number (or into a tracked number)
                // traps; the array contents themselves are untracked.
                if eval_sign(env, i).as_num().is_bottom() {
                    return SignDomain::Bottom;
                }
                let _ = e;
                if env.contains_key(a) {
                    return SignDomain::Bottom; // numbers are not arrays
                }
                self.clone()
            }
            Stmt::FieldWrite(x, _, _) => {
                if env.contains_key(x) {
                    return SignDomain::Bottom; // numbers are not nodes
                }
                self.clone()
            }
            Stmt::Assume(e) => self.refine(e, true),
            Stmt::Call { lhs, .. } => match lhs {
                Some(x) => self.with_binding(x, SVal::Any),
                None => self.clone(),
            },
        }
    }

    fn compile_transfer(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        <SignDomain as crate::compile::CompileTransfer>::stage(stmt)
    }

    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self {
        let SignDomain::Env(env) = self else {
            return SignDomain::Bottom;
        };
        SignDomain::from_bindings(callee_params.iter().zip(site.args).filter_map(|(p, a)| {
            match eval_sign(env, a) {
                SVal::Num(s) => Some((p.clone(), s)),
                _ => None,
            }
        }))
    }

    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self {
        if self.is_bottom() || callee_exit.is_bottom() {
            return SignDomain::Bottom;
        }
        match site.lhs {
            Some(x) => {
                let ret = match callee_exit {
                    SignDomain::Env(env) => env
                        .get(&Symbol::new(RETURN_VAR))
                        .map(|s| SVal::Num(*s))
                        .unwrap_or(SVal::Any),
                    SignDomain::Bottom => SVal::Bot,
                };
                self.with_binding(x, ret)
            }
            None => self.clone(),
        }
    }

    fn models(&self, concrete: &ConcreteState) -> bool {
        let SignDomain::Env(env) = self else {
            return false;
        };
        concrete.env.iter().all(|(x, v)| match env.get(x) {
            None => true,
            Some(s) => match v {
                Value::Int(n) => s.contains(*n),
                _ => false, // tracked ⟹ integer
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_lang::parse_expr;

    const ALL: [Sign; 8] = [
        Sign::BOT,
        Sign::NEG,
        Sign::ZERO,
        Sign::POS,
        Sign::NONPOS,
        Sign::NONNEG,
        Sign::NONZERO,
        Sign::TOP,
    ];

    #[test]
    fn lattice_laws_hold_exhaustively() {
        for a in ALL {
            assert!(Sign::BOT.leq(a) && a.leq(Sign::TOP));
            assert_eq!(a.join(a), a);
            assert_eq!(a.meet(a), a);
            for b in ALL {
                assert_eq!(a.join(b), b.join(a));
                assert_eq!(a.meet(b), b.meet(a));
                assert!(a.leq(a.join(b)) && b.leq(a.join(b)));
                assert!(a.meet(b).leq(a) && a.meet(b).leq(b));
                // join is the *least* upper bound: any upper bound c is
                // above it.
                for c in ALL {
                    if a.leq(c) && b.leq(c) {
                        assert!(a.join(b).leq(c));
                    }
                }
            }
        }
    }

    #[test]
    fn arithmetic_soundness_spot_checks() {
        // −3 + 5 = 2 (positive result from NEG + POS must be allowed).
        assert!(Sign::NEG.add(Sign::POS).contains(2));
        assert!(Sign::NEG.add(Sign::POS).contains(-2));
        assert_eq!(Sign::POS.add(Sign::POS), Sign::POS);
        assert_eq!(Sign::NEG.add(Sign::ZERO), Sign::NEG);
        assert_eq!(Sign::POS.mul(Sign::NEG), Sign::NEG);
        assert_eq!(Sign::ZERO.mul(Sign::TOP), Sign::ZERO);
        // 3 / 5 = 0: positive ÷ positive includes zero.
        assert!(Sign::POS.div(Sign::POS).contains(0));
        assert!(!Sign::POS.div(Sign::POS).has_neg());
        // Division by (only) zero traps: bottom.
        assert!(Sign::TOP.div(Sign::ZERO).is_bottom());
        // 7 % 3 = 1, 0 % 3 = 0, −7 % 3 = −1.
        assert_eq!(Sign::POS.rem(Sign::POS), Sign::NONNEG);
        assert_eq!(Sign::NEG.rem(Sign::TOP), Sign::NONPOS);
        assert_eq!(Sign::NEG.neg(), Sign::POS);
        assert_eq!(Sign::NONPOS.neg(), Sign::NONNEG);
    }

    #[test]
    fn exhaustive_arithmetic_soundness_against_samples() {
        // For sampled concrete pairs, the abstract op must contain the
        // concrete result.
        let samples: &[i64] = &[-7, -1, 0, 1, 2, 9];
        for &x in samples {
            for &y in samples {
                let (sx, sy) = (Sign::of(x), Sign::of(y));
                assert!(sx.add(sy).contains(x + y), "{x}+{y}");
                assert!(sx.sub(sy).contains(x - y), "{x}-{y}");
                assert!(sx.mul(sy).contains(x * y), "{x}*{y}");
                if y != 0 {
                    assert!(sx.div(sy).contains(x / y), "{x}/{y}");
                    assert!(sx.rem(sy).contains(x % y), "{x}%{y}");
                }
                let lt = sx.lt(sy);
                assert!(
                    if x < y { lt.may_true() } else { lt.may_false() },
                    "{x}<{y}"
                );
            }
        }
    }

    #[test]
    fn refine_against_zero() {
        assert_eq!(Sign::TOP.refine(BinOp::Gt, Sign::ZERO), Sign::POS);
        assert_eq!(Sign::TOP.refine(BinOp::Ge, Sign::ZERO), Sign::NONNEG);
        assert_eq!(Sign::TOP.refine(BinOp::Lt, Sign::ZERO), Sign::NEG);
        assert_eq!(Sign::TOP.refine(BinOp::Le, Sign::ZERO), Sign::NONPOS);
        assert_eq!(Sign::TOP.refine(BinOp::Eq, Sign::ZERO), Sign::ZERO);
        assert_eq!(Sign::TOP.refine(BinOp::Ne, Sign::ZERO), Sign::NONZERO);
        // Refinements meet with existing knowledge.
        assert_eq!(Sign::NONNEG.refine(BinOp::Ne, Sign::ZERO), Sign::POS);
        assert_eq!(Sign::NEG.refine(BinOp::Gt, Sign::ZERO), Sign::BOT);
    }

    #[test]
    fn refine_against_positive_bound() {
        // x < y with y > 0 tells us nothing about x's sign…
        assert_eq!(Sign::TOP.refine(BinOp::Lt, Sign::POS), Sign::TOP);
        // …but x > y with y ≥ 0 forces x positive.
        assert_eq!(Sign::TOP.refine(BinOp::Gt, Sign::NONNEG), Sign::POS);
        assert_eq!(Sign::TOP.refine(BinOp::Lt, Sign::NEG), Sign::NEG);
    }

    #[test]
    fn transfer_tracks_assignments() {
        let d = SignDomain::top().transfer(&Stmt::Assign("x".into(), parse_expr("5").unwrap()));
        assert_eq!(d.sign_of("x"), Sign::POS);
        let d = d.transfer(&Stmt::Assign("y".into(), parse_expr("x * -1").unwrap()));
        assert_eq!(d.sign_of("y"), Sign::NEG);
        let d = d.transfer(&Stmt::Assign("z".into(), parse_expr("x - x").unwrap()));
        // Signs cannot see x − x = 0: ⊤ is the sound answer.
        assert_eq!(d.sign_of("z"), Sign::TOP);
    }

    #[test]
    fn assume_refines_variables() {
        let d = SignDomain::top().transfer(&Stmt::Assume(parse_expr("x > 0").unwrap()));
        assert_eq!(d.sign_of("x"), Sign::POS);
        let d2 = d.transfer(&Stmt::Assume(parse_expr("x < 0").unwrap()));
        assert!(d2.is_bottom(), "contradictory guards are unreachable");
    }

    #[test]
    fn assume_len_is_nonneg() {
        let d =
            SignDomain::top().transfer(&Stmt::Assign("n".into(), parse_expr("len(a)").unwrap()));
        assert_eq!(d.sign_of("n"), Sign::NONNEG);
    }

    #[test]
    fn conjunction_and_negation_refine() {
        let d = SignDomain::top().transfer(&Stmt::Assume(parse_expr("x > 0 && y < 0").unwrap()));
        assert_eq!(d.sign_of("x"), Sign::POS);
        assert_eq!(d.sign_of("y"), Sign::NEG);
        let d = SignDomain::top().transfer(&Stmt::Assume(parse_expr("!(x > 0)").unwrap()));
        assert_eq!(d.sign_of("x"), Sign::NONPOS);
    }

    #[test]
    fn non_numeric_assignment_untracks() {
        let d = SignDomain::top()
            .transfer(&Stmt::Assign("x".into(), parse_expr("5").unwrap()))
            .transfer(&Stmt::Assign("x".into(), parse_expr("true").unwrap()));
        assert_eq!(d.sign_of("x"), Sign::TOP);
        let SignDomain::Env(env) = &d else { panic!() };
        assert!(!env.contains_key(&Symbol::new("x")), "bool binding dropped");
    }

    #[test]
    fn models_concrete_states() {
        let d = SignDomain::from_bindings([(Symbol::new("x"), Sign::POS)]);
        let mut c = ConcreteState::new();
        c.env.insert(Symbol::new("x"), Value::Int(3));
        assert!(d.models(&c));
        c.env.insert(Symbol::new("x"), Value::Int(-3));
        assert!(!d.models(&c));
        c.env.insert(Symbol::new("x"), Value::Bool(true));
        assert!(!d.models(&c), "tracked variables must be integers");
        c.env.remove(&Symbol::new("x"));
        c.env.insert(Symbol::new("other"), Value::Null);
        assert!(d.models(&c), "untracked variables are unconstrained");
    }

    #[test]
    fn join_drops_one_sided_bindings_and_widen_is_join() {
        let a = SignDomain::from_bindings([
            (Symbol::new("x"), Sign::POS),
            (Symbol::new("y"), Sign::NEG),
        ]);
        let b = SignDomain::from_bindings([(Symbol::new("x"), Sign::ZERO)]);
        let j = a.join(&b);
        assert_eq!(j.sign_of("x"), Sign::NONNEG);
        assert_eq!(j.sign_of("y"), Sign::TOP);
        assert_eq!(a.widen(&b), j);
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn display_is_compact() {
        let d = SignDomain::from_bindings([(Symbol::new("x"), Sign::NONNEG)]);
        assert_eq!(d.to_string(), "{x: ≥0}");
        assert_eq!(SignDomain::Bottom.to_string(), "⊥");
    }
}
