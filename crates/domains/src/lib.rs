//! # dai-domains — abstract domains for demanded abstract interpretation
//!
//! The paper's framework is parametric in an abstract interpreter
//! `⟨Σ♯, φ₀, ⟦·⟧♯, ⊑, ⊔, ∇⟩` (§3). This crate defines that interface as the
//! [`AbstractDomain`] trait and provides the three instantiations evaluated
//! in §7, each implemented from scratch:
//!
//! * [`interval`] — the textbook infinite-height interval domain over an
//!   environment of abstract values (numbers, booleans, arrays, references),
//!   with an array-bounds-checking client (the paper used APRON intervals);
//! * [`octagon`] — Miné's relational octagon domain (`±x ±y ≤ c`) via
//!   difference-bound matrices with strong closure (the paper used APRON
//!   octagons);
//! * [`shape`] — a separation-logic shape domain for singly-linked lists
//!   with `points-to` and `lseg` predicates, materialization, and
//!   canonicalization-based widening (after Chang–Rival–Necula, specialized
//!   to list segments as in the paper).
//!
//! All three are infinite-height lattices requiring genuine widening, which
//! is precisely what rules them out of prior incremental/demand-driven
//! frameworks and motivates DAIGs.
//!
//! To exercise the opposite corner of the design space — the finite-height
//! domains the paper's §2.3 notes would admit eager `k`-fold inlining and
//! that prior frameworks (IFDS/IDE, Datalog) *can* express — the crate also
//! provides:
//!
//! * [`sign`] — the eight-element sign lattice (widening degenerates to
//!   join);
//! * [`constprop`] — flat constant propagation à la Sagiv–Reps–Horwitz;
//! * [`product`] — the direct-product combinator `Prod<A, B>`, building new
//!   domain instances compositionally (e.g. intervals × signs).
//!
//! # Staged transfer compilation
//!
//! The [`compile`] module adds the second stage of a two-stage transfer
//! evaluator: [`AbstractDomain::compile_transfer`] specializes a
//! statement against the domain *once* — classifying its shape
//! (constant/copy/shift/linear assignment, assume, skip) and
//! pre-resolving its variables — and returns a [`CompiledTransfer`]
//! closure that jumps straight to the domain's internal primitives on
//! every application. Staged closures are **bit-for-bit identical** to
//! [`AbstractDomain::transfer`] (the module docs state the contract),
//! so the interpreter remains shipped as the differential oracle.
//! Domains without a compiler inherit the default (`None`) and simply
//! always interpret.

pub mod bool3;
pub mod compile;
pub mod constprop;
pub mod interval;
pub mod octagon;
pub mod product;
pub mod shape;
pub mod sign;

pub use bool3::Bool3;
pub use compile::{CompileTransfer, CompiledTransfer, TransferShape};
pub use constprop::ConstDomain;
pub use interval::IntervalDomain;
pub use octagon::OctagonDomain;
pub use product::Prod;
pub use shape::ShapeDomain;
pub use sign::SignDomain;

use dai_lang::interp::ConcreteState;
use dai_lang::{Expr, Stmt, Symbol};
use std::fmt;
use std::hash::Hash;

/// Static description of a call site, passed to interprocedural transfer
/// functions.
#[derive(Debug, Clone, Copy)]
pub struct CallSite<'a> {
    /// Variable receiving the return value, if any.
    pub lhs: Option<&'a Symbol>,
    /// Callee name.
    pub callee: &'a Symbol,
    /// Actual argument expressions, evaluated in the caller's state.
    pub args: &'a [Expr],
    /// A stable, unique key for this call site (function name + edge id),
    /// used by heap domains to frame caller-local bindings across the call.
    pub site_key: &'a str,
}

/// The abstract interpreter interface `⟨Σ♯, φ₀, ⟦·⟧♯, ⊑, ⊔, ∇⟩` of paper §3,
/// extended with the interprocedural hooks of §7.1 and a concretization
/// test used to validate soundness.
///
/// # Lattice laws
///
/// Implementations must provide a join semi-lattice with bottom:
/// `join` is an upper bound for `leq`, `bottom()` is least, and `widen` is
/// an upper-bound operator enforcing convergence — every sequence
/// `w₀, w₀ ∇ φ₁, (w₀ ∇ φ₁) ∇ φ₂, …` with increasing `φᵢ` stabilizes after
/// finitely many steps (paper §3). Additionally `widen(a, a) == a` must
/// hold so converged loops stay converged when re-unrolled.
///
/// `Eq`/`Hash` must agree with semantic equality on *canonical forms*: the
/// DAIG convergence check (`Q-Loop-Converge`) and the memo table both
/// compare states with `==`.
pub trait AbstractDomain:
    Clone + Eq + Hash + fmt::Debug + fmt::Display + Send + Sync + 'static
{
    /// The least element `⊥` (unreachable).
    fn bottom() -> Self;

    /// Is this state `⊥`?
    fn is_bottom(&self) -> bool;

    /// A default initial state `φ₀` for an entry function with the given
    /// parameters (parameters unconstrained). Analyses needing a richer
    /// precondition (e.g. shape analysis assuming well-formed input lists)
    /// construct `φ₀` explicitly instead.
    fn entry_default(params: &[Symbol]) -> Self;

    /// Least upper bound `⊔`.
    fn join(&self, other: &Self) -> Self;

    /// Widening `∇`; `self` is the previous iterate, `next` the new value.
    fn widen(&self, next: &Self) -> Self;

    /// Partial order `⊑`.
    fn leq(&self, other: &Self) -> bool;

    /// Abstract transfer `⟦s⟧♯` for non-call statements. Call statements
    /// are handled by the interprocedural layer; an implementation should
    /// treat a call conservatively (havoc the left-hand side) so that a
    /// purely intraprocedural analysis remains sound.
    fn transfer(&self, stmt: &Stmt) -> Self;

    /// Stages `stmt` into a [`CompiledTransfer`] closure specialized to
    /// this domain, or `None` to evaluate through [`Self::transfer`]
    /// (the interpreter). The default compiles nothing, so plugging in a
    /// new domain never requires touching the compilation layer; domains
    /// with compilers override this to delegate to their
    /// [`compile::CompileTransfer`] impl. A returned closure must be
    /// bit-for-bit identical to the interpreter (see [`compile`] module
    /// docs for the contract and fallback rules).
    fn compile_transfer(stmt: &Stmt) -> Option<CompiledTransfer<Self>> {
        let _ = stmt;
        None
    }

    /// Abstract entry state of a callee: bind `callee_params` to the actual
    /// arguments evaluated in the caller state `self` at the call site.
    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self;

    /// Abstract post-call state: combine the caller state at the call
    /// (`self`) with the callee's exit state.
    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self;

    /// Concretization membership test `σ ⊨ φ` (i.e. `σ ∈ γ(φ)`), used by
    /// the test suites to validate soundness against the concrete
    /// interpreter. Must never return `false` for a state the abstract
    /// semantics claims to cover.
    fn models(&self, concrete: &ConcreteState) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trait must be object-safe enough for generic use and its
    // implementors must be Send + Sync (checked here once for all).
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn domains_are_send_sync() {
        assert_send_sync::<IntervalDomain>();
        assert_send_sync::<OctagonDomain>();
        assert_send_sync::<ShapeDomain>();
    }
}
