//! A four-point abstraction of booleans: `⊥ ⊑ {true, false} ⊑ ⊤`.

use std::fmt;

/// Abstraction of a boolean value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bool3 {
    /// No value (unreachable).
    Bot,
    /// Definitely `true`.
    True,
    /// Definitely `false`.
    False,
    /// Either.
    Top,
}

// `not` is three-valued negation; naming it after the boolean operation
// (rather than implementing `std::ops::Not`) matches the domain-method
// convention used across this crate.
#[allow(clippy::should_implement_trait)]
impl Bool3 {
    /// Abstracts a concrete boolean.
    pub fn of(b: bool) -> Bool3 {
        if b {
            Bool3::True
        } else {
            Bool3::False
        }
    }

    /// May this abstract boolean be `true`?
    pub fn may_true(self) -> bool {
        matches!(self, Bool3::True | Bool3::Top)
    }

    /// May this abstract boolean be `false`?
    pub fn may_false(self) -> bool {
        matches!(self, Bool3::False | Bool3::Top)
    }

    /// Least upper bound.
    pub fn join(self, other: Bool3) -> Bool3 {
        use Bool3::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (True, True) => True,
            (False, False) => False,
            _ => Top,
        }
    }

    /// Partial order.
    pub fn leq(self, other: Bool3) -> bool {
        use Bool3::*;
        matches!(
            (self, other),
            (Bot, _) | (_, Top) | (True, True) | (False, False)
        )
    }

    /// Abstract logical negation.
    pub fn not(self) -> Bool3 {
        use Bool3::*;
        match self {
            Bot => Bot,
            True => False,
            False => True,
            Top => Top,
        }
    }

    /// Abstract conjunction.
    pub fn and(self, other: Bool3) -> Bool3 {
        use Bool3::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Top,
        }
    }

    /// Abstract disjunction.
    pub fn or(self, other: Bool3) -> Bool3 {
        use Bool3::*;
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Top,
        }
    }
}

impl fmt::Display for Bool3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bool3::Bot => write!(f, "⊥b"),
            Bool3::True => write!(f, "true"),
            Bool3::False => write!(f, "false"),
            Bool3::Top => write!(f, "⊤b"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Bool3::*;

    const ALL: [Bool3; 4] = [Bot, True, False, Top];

    #[test]
    fn join_is_lub() {
        for a in ALL {
            for b in ALL {
                let j = a.join(b);
                assert!(a.leq(j) && b.leq(j), "{a} ⊔ {b} = {j} not an upper bound");
            }
        }
    }

    #[test]
    fn leq_is_partial_order() {
        for a in ALL {
            assert!(a.leq(a));
            for b in ALL {
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn not_is_sound_and_involutive_on_precise() {
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Top.not(), Top);
        assert_eq!(Bot.not(), Bot);
    }

    #[test]
    fn and_or_truth_tables() {
        assert_eq!(True.and(False), False);
        assert_eq!(Top.and(False), False);
        assert_eq!(Top.and(True), Top);
        assert_eq!(False.or(True), True);
        assert_eq!(Top.or(True), True);
        assert_eq!(Top.or(False), Top);
    }

    #[test]
    fn of_and_may() {
        assert!(Bool3::of(true).may_true());
        assert!(!Bool3::of(true).may_false());
        assert!(Top.may_true() && Top.may_false());
        assert!(!Bot.may_true() && !Bot.may_false());
    }
}
