//! The interval abstract domain (paper §7.2).
//!
//! "The interval abstract domain is a textbook example of an infinite-height
//! lattice, requiring widening to guarantee analysis convergence." The paper
//! instantiates its framework with APRON intervals; this module implements
//! the same domain from scratch:
//!
//! * [`Interval`] — integer intervals with ±∞ bounds and sound arithmetic
//!   (any finite overflow widens to ⊤, since the concrete semantics wraps);
//! * [`AbsVal`] — a reduced sum abstraction of the language's runtime
//!   values: numbers, booleans, null/node references, and arrays
//!   (abstracted as a length interval plus smashed element abstraction);
//! * [`IntervalDomain`] — environments mapping variables to [`AbsVal`]s,
//!   with transfer functions, branch refinement for `assume`, widening,
//!   and the array-bounds-checking client used by the Buckets experiment.

use crate::bool3::Bool3;
use crate::{AbstractDomain, CallSite};
use dai_lang::interp::{ConcreteState, Value};
use dai_lang::{BinOp, Expr, Stmt, Symbol, UnOp, RETURN_VAR};
use std::collections::BTreeMap;
use std::fmt;

/// An interval endpoint: `-∞`, a finite `i64`, or `+∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bound {
    /// `-∞`
    NegInf,
    /// A finite endpoint.
    Fin(i64),
    /// `+∞`
    PosInf,
}

impl Bound {
    fn as_i128(self) -> Option<i128> {
        match self {
            Bound::Fin(n) => Some(n as i128),
            _ => None,
        }
    }

    /// Clamps an exact i128 endpoint into a sound lower bound.
    fn lower_from_i128(v: i128) -> Bound {
        if v < i64::MIN as i128 {
            Bound::NegInf
        } else if v > i64::MAX as i128 {
            // A lower bound above every representable value: the wrapping
            // concrete semantics makes this unsound to keep; callers detect
            // overflow separately. Used only for refinement bounds, where
            // an impossible lower bound means the refined interval is empty.
            Bound::PosInf
        } else {
            Bound::Fin(v as i64)
        }
    }

    fn upper_from_i128(v: i128) -> Bound {
        if v > i64::MAX as i128 {
            Bound::PosInf
        } else if v < i64::MIN as i128 {
            Bound::NegInf
        } else {
            Bound::Fin(v as i64)
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::NegInf => write!(f, "-inf"),
            Bound::Fin(n) => write!(f, "{n}"),
            Bound::PosInf => write!(f, "+inf"),
        }
    }
}

/// An integer interval `[lo, hi]`, possibly empty.
///
/// The empty interval has a canonical representation so that `Eq`/`Hash`
/// are structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Bound,
    hi: Bound,
}

impl Interval {
    /// The canonical empty interval.
    pub const EMPTY: Interval = Interval {
        lo: Bound::PosInf,
        hi: Bound::NegInf,
    };

    /// The full interval `[-∞, +∞]`.
    pub const TOP: Interval = Interval {
        lo: Bound::NegInf,
        hi: Bound::PosInf,
    };

    /// Creates `[lo, hi]`, normalizing empty intervals.
    pub fn new(lo: Bound, hi: Bound) -> Interval {
        let iv = Interval { lo, hi };
        if iv.is_empty_raw() {
            Interval::EMPTY
        } else {
            iv
        }
    }

    /// The singleton `[n, n]`.
    pub fn constant(n: i64) -> Interval {
        Interval {
            lo: Bound::Fin(n),
            hi: Bound::Fin(n),
        }
    }

    /// `[lo, hi]` from finite endpoints.
    pub fn of(lo: i64, hi: i64) -> Interval {
        Interval::new(Bound::Fin(lo), Bound::Fin(hi))
    }

    /// `[lo, +∞]`.
    pub fn at_least(lo: i64) -> Interval {
        Interval {
            lo: Bound::Fin(lo),
            hi: Bound::PosInf,
        }
    }

    /// `[-∞, hi]`.
    pub fn at_most(hi: i64) -> Interval {
        Interval {
            lo: Bound::NegInf,
            hi: Bound::Fin(hi),
        }
    }

    fn is_empty_raw(&self) -> bool {
        match (self.lo, self.hi) {
            (Bound::Fin(a), Bound::Fin(b)) => a > b,
            (Bound::PosInf, _) | (_, Bound::NegInf) => true,
            _ => false,
        }
    }

    /// Is this the empty interval?
    pub fn is_empty(&self) -> bool {
        *self == Interval::EMPTY
    }

    /// Lower bound.
    pub fn lo(&self) -> Bound {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> Bound {
        self.hi
    }

    /// Does the interval contain `n`?
    pub fn contains(&self, n: i64) -> bool {
        let lo_ok = match self.lo {
            Bound::NegInf => true,
            Bound::Fin(l) => l <= n,
            Bound::PosInf => false,
        };
        let hi_ok = match self.hi {
            Bound::PosInf => true,
            Bound::Fin(h) => n <= h,
            Bound::NegInf => false,
        };
        lo_ok && hi_ok
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Standard interval widening: unstable bounds jump to ±∞.
    pub fn widen(&self, next: &Interval) -> Interval {
        if self.is_empty() {
            return *next;
        }
        if next.is_empty() {
            return *self;
        }
        let lo = if next.lo < self.lo {
            Bound::NegInf
        } else {
            self.lo
        };
        let hi = if next.hi > self.hi {
            Bound::PosInf
        } else {
            self.hi
        };
        Interval { lo, hi }
    }

    /// Inclusion `⊑`.
    pub fn leq(&self, other: &Interval) -> bool {
        self.is_empty() || (!other.is_empty() && other.lo <= self.lo && self.hi <= other.hi)
    }

    fn exact(&self) -> Option<(i128, i128)> {
        match (self.lo.as_i128(), self.hi.as_i128()) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    fn from_exact(lo: i128, hi: i128) -> Interval {
        // Concrete arithmetic wraps on overflow, so an out-of-range exact
        // result set is only soundly approximated by ⊤.
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            Interval::TOP
        } else {
            Interval::of(lo as i64, hi as i64)
        }
    }

    /// Abstract addition.
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let lo = match (self.lo.as_i128(), other.lo.as_i128()) {
            (Some(a), Some(b)) => Bound::lower_from_i128(a + b),
            _ => Bound::NegInf,
        };
        let hi = match (self.hi.as_i128(), other.hi.as_i128()) {
            (Some(a), Some(b)) => Bound::upper_from_i128(a + b),
            _ => Bound::PosInf,
        };
        // Wrapping overflow check: exact finite sums outside i64 must
        // become ⊤.
        if let (Some((a, b)), Some((c, d))) = (self.exact(), other.exact()) {
            return Interval::from_exact(a + c, b + d);
        }
        Interval::new(lo, hi)
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Abstract negation.
    pub fn neg(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        match self.exact() {
            Some((a, b)) => Interval::from_exact(-b, -a),
            None => {
                let lo = match self.hi {
                    Bound::Fin(h) if h != i64::MIN => Bound::Fin(-h),
                    Bound::NegInf => Bound::PosInf,
                    _ => Bound::NegInf,
                };
                let hi = match self.lo {
                    Bound::Fin(l) if l != i64::MIN => Bound::Fin(-l),
                    Bound::PosInf => Bound::NegInf,
                    _ => Bound::PosInf,
                };
                Interval::new(lo, hi)
            }
        }
    }

    /// Abstract multiplication.
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        match (self.exact(), other.exact()) {
            (Some((a, b)), Some((c, d))) => {
                let products = [a * c, a * d, b * c, b * d];
                Interval::from_exact(
                    *products.iter().min().expect("nonempty"),
                    *products.iter().max().expect("nonempty"),
                )
            }
            _ => {
                // With an infinite endpoint, be precise only for the easy
                // zero/one cases; otherwise ⊤ (sound).
                if *self == Interval::constant(0) || *other == Interval::constant(0) {
                    Interval::constant(0)
                } else if *self == Interval::constant(1) {
                    *other
                } else if *other == Interval::constant(1) {
                    *self
                } else {
                    Interval::TOP
                }
            }
        }
    }

    /// Abstract division (truncating; division by zero halts concretely, so
    /// the divisor is implicitly refined to exclude 0).
    pub fn div(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let pos = other.meet(&Interval::at_least(1));
        let neg = other.meet(&Interval::at_most(-1));
        let mut out = Interval::EMPTY;
        for divisor in [pos, neg] {
            if divisor.is_empty() {
                continue;
            }
            out = out.join(&self.div_nonzero(&divisor));
        }
        out
    }

    fn div_nonzero(&self, other: &Interval) -> Interval {
        match (self.exact(), other.exact()) {
            (Some((a, b)), Some((c, d))) => {
                let qs = [a / c, a / d, b / c, b / d];
                Interval::from_exact(
                    *qs.iter().min().expect("nonempty"),
                    *qs.iter().max().expect("nonempty"),
                )
            }
            _ => {
                // Magnitude never grows when dividing by |d| >= 1; the sign
                // may flip, so the sound quick bound is the symmetric hull.
                let m = self.magnitude_bound();
                match m {
                    Some(m) => Interval::of(-m, m),
                    None => Interval::TOP,
                }
            }
        }
    }

    fn magnitude_bound(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Bound::Fin(l), Bound::Fin(h)) => Some(l.unsigned_abs().max(h.unsigned_abs()) as i64),
            _ => None,
        }
    }

    /// Abstract remainder (Rust `%` semantics: result takes the dividend's
    /// sign, `|r| < |divisor|`).
    pub fn rem(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let nonzero = other
            .meet(&Interval::at_least(1))
            .join(&other.meet(&Interval::at_most(-1)));
        if nonzero.is_empty() {
            return Interval::EMPTY; // dividing by 0 always halts
        }
        let mag = match (nonzero.lo, nonzero.hi) {
            (Bound::Fin(l), Bound::Fin(h)) => {
                Some((l.unsigned_abs().max(h.unsigned_abs()) as i64).saturating_sub(1))
            }
            _ => None,
        };
        let base = match mag {
            Some(m) => Interval::of(-m, m),
            None => Interval::TOP,
        };
        // Sign and magnitude follow the dividend.
        let mut refined = base;
        if let Bound::Fin(l) = self.lo {
            if l >= 0 {
                refined = refined.meet(&Interval::at_least(0));
            }
        }
        if let Bound::Fin(h) = self.hi {
            if h <= 0 {
                refined = refined.meet(&Interval::at_most(0));
            }
            // |r| <= |dividend|
            if let Bound::Fin(l) = self.lo {
                let m = l.unsigned_abs().max(h.unsigned_abs()) as i64;
                refined = refined.meet(&Interval::of(-m, m));
            }
        }
        refined
    }

    /// Abstract comparison `self < other` as a [`Bool3`].
    pub fn lt(&self, other: &Interval) -> Bool3 {
        if self.is_empty() || other.is_empty() {
            return Bool3::Bot;
        }
        if self.hi < other.lo {
            return Bool3::True;
        }
        if other.hi <= self.lo {
            return Bool3::False;
        }
        Bool3::Top
    }

    /// Abstract comparison `self <= other`.
    pub fn le(&self, other: &Interval) -> Bool3 {
        if self.is_empty() || other.is_empty() {
            return Bool3::Bot;
        }
        if self.hi <= other.lo {
            return Bool3::True;
        }
        if other.hi < self.lo {
            return Bool3::False;
        }
        Bool3::Top
    }

    /// Abstract equality.
    pub fn eq_abs(&self, other: &Interval) -> Bool3 {
        if self.is_empty() || other.is_empty() {
            return Bool3::Bot;
        }
        if self.meet(other).is_empty() {
            return Bool3::False;
        }
        if self.lo == self.hi && *self == *other {
            return Bool3::True;
        }
        Bool3::Top
    }

    /// Refines `self` assuming `self < other` (strict upper bound).
    pub fn refine_lt(&self, other: &Interval) -> Interval {
        match other.hi.as_i128() {
            Some(h) => self.meet(&Interval::new(Bound::NegInf, Bound::upper_from_i128(h - 1))),
            None => {
                if other.hi == Bound::NegInf {
                    Interval::EMPTY
                } else {
                    *self
                }
            }
        }
    }

    /// Refines `self` assuming `self <= other`.
    pub fn refine_le(&self, other: &Interval) -> Interval {
        match other.hi {
            Bound::Fin(h) => self.meet(&Interval::at_most(h)),
            Bound::PosInf => *self,
            Bound::NegInf => Interval::EMPTY,
        }
    }

    /// Refines `self` assuming `self > other`.
    pub fn refine_gt(&self, other: &Interval) -> Interval {
        match other.lo.as_i128() {
            Some(l) => self.meet(&Interval::new(Bound::lower_from_i128(l + 1), Bound::PosInf)),
            None => {
                if other.lo == Bound::PosInf {
                    Interval::EMPTY
                } else {
                    *self
                }
            }
        }
    }

    /// Refines `self` assuming `self >= other`.
    pub fn refine_ge(&self, other: &Interval) -> Interval {
        match other.lo {
            Bound::Fin(l) => self.meet(&Interval::at_least(l)),
            Bound::NegInf => *self,
            Bound::PosInf => Interval::EMPTY,
        }
    }

    /// Refines `self` assuming `self != other` (only effective when `other`
    /// is a singleton at one of `self`'s endpoints).
    pub fn refine_ne(&self, other: &Interval) -> Interval {
        if let (Bound::Fin(c), true) = (other.lo, other.lo == other.hi) {
            if self.lo == Bound::Fin(c) && self.hi == Bound::Fin(c) {
                return Interval::EMPTY;
            }
            if self.lo == Bound::Fin(c) {
                return Interval::new(Bound::Fin(c.saturating_add(1)), self.hi);
            }
            if self.hi == Bound::Fin(c) {
                return Interval::new(self.lo, Bound::Fin(c.saturating_sub(1)));
            }
        }
        *self
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// Abstraction of an array: a length interval plus a smashed element
/// abstraction covering every element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayAbs {
    /// Possible lengths (always within `[0, +∞]`).
    pub len: Interval,
    /// Abstraction of every element (`⊥` for definitely-empty arrays).
    pub elem: Box<AbsVal>,
}

/// Abstraction of a single runtime value: a reduced sum over the language's
/// value families.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AbsVal {
    /// No value.
    Bot,
    /// An integer in the interval.
    Num(Interval),
    /// A boolean.
    Boolean(Bool3),
    /// Exactly `null`.
    NullRef,
    /// A non-null heap node.
    NodeRef,
    /// `null` or a heap node.
    AnyRef,
    /// An array.
    Arr(ArrayAbs),
    /// Any value at all.
    Top,
}

impl AbsVal {
    /// Normalizes: empty intervals and `⊥` booleans collapse to `Bot`.
    fn normalize(self) -> AbsVal {
        match self {
            AbsVal::Num(i) if i.is_empty() => AbsVal::Bot,
            AbsVal::Boolean(Bool3::Bot) => AbsVal::Bot,
            AbsVal::Arr(a) if a.len.is_empty() => AbsVal::Bot,
            v => v,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Bot, v) | (v, Bot) => v.clone(),
            (Top, _) | (_, Top) => Top,
            (Num(a), Num(b)) => Num(a.join(b)),
            (Boolean(a), Boolean(b)) => Boolean(a.join(*b)),
            (NullRef, NullRef) => NullRef,
            (NodeRef, NodeRef) => NodeRef,
            (NullRef, NodeRef) | (NodeRef, NullRef) => AnyRef,
            (AnyRef, NullRef | NodeRef | AnyRef) | (NullRef | NodeRef, AnyRef) => AnyRef,
            (Arr(a), Arr(b)) => Arr(ArrayAbs {
                len: a.len.join(&b.len),
                elem: Box::new(a.elem.join(&b.elem)),
            }),
            _ => Top,
        }
    }

    /// Widening (pointwise on intervals, join elsewhere — all non-interval
    /// components are finite-height).
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, next) {
            (Bot, v) | (v, Bot) => v.clone(),
            (Num(a), Num(b)) => Num(a.widen(b)),
            (Arr(a), Arr(b)) => Arr(ArrayAbs {
                len: a.len.widen(&b.len),
                elem: Box::new(a.elem.widen(&b.elem)),
            }),
            _ => self.join(next),
        }
    }

    /// Inclusion `⊑`.
    pub fn leq(&self, other: &AbsVal) -> bool {
        use AbsVal::*;
        match (self, other) {
            (Bot, _) => true,
            (_, Top) => true,
            (Num(a), Num(b)) => a.leq(b),
            (Boolean(a), Boolean(b)) => a.leq(*b),
            (NullRef, NullRef | AnyRef) => true,
            (NodeRef, NodeRef | AnyRef) => true,
            (AnyRef, AnyRef) => true,
            (Arr(a), Arr(b)) => a.len.leq(&b.len) && a.elem.leq(&b.elem),
            _ => false,
        }
    }

    /// Does this abstract value cover the concrete value?
    pub fn models(&self, v: &Value) -> bool {
        use AbsVal::*;
        match (self, v) {
            (Top, _) => true,
            (Bot, _) => false,
            (Num(i), Value::Int(n)) => i.contains(*n),
            (Boolean(b), Value::Bool(x)) => Bool3::of(*x).leq(*b),
            (NullRef, Value::Null) => true,
            (NodeRef, Value::Node(_)) => true,
            (AnyRef, Value::Null | Value::Node(_)) => true,
            (Arr(a), Value::Arr(vs)) => {
                a.len.contains(vs.len() as i64) && vs.iter().all(|x| a.elem.models(x))
            }
            _ => false,
        }
    }

    fn as_num(&self) -> Interval {
        match self {
            AbsVal::Num(i) => *i,
            AbsVal::Top => Interval::TOP,
            _ => Interval::EMPTY,
        }
    }

    fn as_bool(&self) -> Bool3 {
        match self {
            AbsVal::Boolean(b) => *b,
            AbsVal::Top => Bool3::Top,
            _ => Bool3::Bot,
        }
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsVal::Bot => write!(f, "⊥"),
            AbsVal::Num(i) => write!(f, "{i}"),
            AbsVal::Boolean(b) => write!(f, "{b}"),
            AbsVal::NullRef => write!(f, "null"),
            AbsVal::NodeRef => write!(f, "node"),
            AbsVal::AnyRef => write!(f, "ref?"),
            AbsVal::Arr(a) => write!(f, "arr(len={}, elem={})", a.len, a.elem),
            AbsVal::Top => write!(f, "⊤"),
        }
    }
}

/// An abstract environment state: `⊥` or a finite map from variables to
/// non-trivial abstract values (unbound variables are `⊤`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntervalDomain {
    /// Unreachable.
    Bottom,
    /// Reachable with the given variable constraints.
    Env(BTreeMap<Symbol, AbsVal>),
}

impl IntervalDomain {
    /// The state constraining nothing (all variables `⊤`).
    pub fn top() -> IntervalDomain {
        IntervalDomain::Env(BTreeMap::new())
    }

    /// Builds a state from explicit bindings (useful for `φ₀` and tests).
    pub fn from_bindings<I>(bindings: I) -> IntervalDomain
    where
        I: IntoIterator<Item = (Symbol, AbsVal)>,
    {
        let mut env = BTreeMap::new();
        for (k, v) in bindings {
            match v.normalize() {
                AbsVal::Bot => return IntervalDomain::Bottom,
                AbsVal::Top => {}
                v => {
                    env.insert(k, v);
                }
            }
        }
        IntervalDomain::Env(env)
    }

    /// The abstract value of `var` (`⊤` when unbound).
    pub fn value_of(&self, var: &str) -> AbsVal {
        match self {
            IntervalDomain::Bottom => AbsVal::Bot,
            IntervalDomain::Env(env) => env.get(var).cloned().unwrap_or(AbsVal::Top),
        }
    }

    /// The interval of `var`, if it is (possibly) numeric.
    pub fn interval_of(&self, var: &str) -> Interval {
        self.value_of(var).as_num()
    }

    /// Abstractly evaluates an expression in this state.
    pub fn eval(&self, expr: &Expr) -> AbsVal {
        let IntervalDomain::Env(env) = self else {
            return AbsVal::Bot;
        };
        eval_in(env, expr)
    }

    fn with_binding(&self, var: &Symbol, v: AbsVal) -> IntervalDomain {
        match self {
            IntervalDomain::Bottom => IntervalDomain::Bottom,
            IntervalDomain::Env(env) => {
                let mut env = env.clone();
                match v.normalize() {
                    AbsVal::Bot => return IntervalDomain::Bottom,
                    AbsVal::Top => {
                        env.remove(var);
                    }
                    v => {
                        env.insert(var.clone(), v);
                    }
                }
                IntervalDomain::Env(env)
            }
        }
    }

    /// Is the array access `arr[idx]` provably in bounds in this state?
    /// (`⊥` states are vacuously safe.) This is the §7.2 client.
    pub fn array_access_safe(&self, arr: &Expr, idx: &Expr) -> bool {
        let IntervalDomain::Env(env) = self else {
            return true;
        };
        let i = eval_in(env, idx).as_num();
        if i.is_empty() {
            return true; // index never evaluates: access unreachable
        }
        let Bound::Fin(ilo) = i.lo() else {
            return false;
        };
        if ilo < 0 {
            return false;
        }
        let AbsVal::Arr(a) = eval_in(env, arr) else {
            return false;
        };
        match (i.hi(), a.len.lo()) {
            (Bound::Fin(ihi), Bound::Fin(llo)) => ihi < llo,
            _ => false,
        }
    }

    /// Refines this state by assuming `cond` evaluates to `expected`.
    fn refine(&self, cond: &Expr, expected: bool) -> IntervalDomain {
        let IntervalDomain::Env(env) = self else {
            return IntervalDomain::Bottom;
        };
        // First: is the expected outcome even possible?
        let b = eval_in(env, cond).as_bool();
        let possible = if expected {
            b.may_true()
        } else {
            b.may_false()
        };
        if !possible {
            return IntervalDomain::Bottom;
        }
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.refine(inner, !expected),
            Expr::Binary(BinOp::And, l, r) if expected => {
                self.refine(l, true).refine_checked(r, true)
            }
            Expr::Binary(BinOp::And, l, r) => {
                // ¬(l ∧ r) = ¬l ∨ ¬r
                self.refine(l, false).join(&self.refine(r, false))
            }
            Expr::Binary(BinOp::Or, l, r) if expected => {
                self.refine(l, true).join(&self.refine(r, true))
            }
            Expr::Binary(BinOp::Or, l, r) => self.refine(l, false).refine_checked(r, false),
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let op = if expected {
                    *op
                } else {
                    op.negate_comparison().expect("comparison")
                };
                self.refine_cmp(op, l, r)
            }
            _ => self.clone(),
        }
    }

    fn refine_checked(&self, cond: &Expr, expected: bool) -> IntervalDomain {
        if self.is_bottom() {
            IntervalDomain::Bottom
        } else {
            self.refine(cond, expected)
        }
    }

    /// Refines under a single comparison `l op r`, narrowing variable (and
    /// `len(var)`) occurrences on either side.
    fn refine_cmp(&self, op: BinOp, l: &Expr, r: &Expr) -> IntervalDomain {
        let IntervalDomain::Env(_) = self else {
            return IntervalDomain::Bottom;
        };
        let mut out = self.clone();
        out = out.refine_side(op, l, r);
        if let Some(flipped) = op.flip_comparison() {
            out = out.refine_side(flipped, r, l);
        }
        out
    }

    /// Refines the left side `l` of `l op r` when `l` is a variable or a
    /// `len(variable)`.
    fn refine_side(&self, op: BinOp, l: &Expr, r: &Expr) -> IntervalDomain {
        let IntervalDomain::Env(env) = self else {
            return IntervalDomain::Bottom;
        };
        let rv = eval_in(env, r);
        match l {
            Expr::Var(x) => {
                let xv = env.get(x).cloned().unwrap_or(AbsVal::Top);
                let refined = refine_absval(op, &xv, &rv);
                self.with_binding(x, refined)
            }
            Expr::ArrayLen(inner) => {
                if let Expr::Var(a) = &**inner {
                    if let AbsVal::Arr(arr) = env.get(a).cloned().unwrap_or(AbsVal::Top) {
                        let new_len = refine_interval(op, &arr.len, &rv.as_num())
                            .meet(&Interval::at_least(0));
                        return self.with_binding(
                            a,
                            AbsVal::Arr(ArrayAbs {
                                len: new_len,
                                elem: arr.elem,
                            }),
                        );
                    }
                }
                self.clone()
            }
            _ => self.clone(),
        }
    }
}

/// Refines interval `x` under `x op other`.
fn refine_interval(op: BinOp, x: &Interval, other: &Interval) -> Interval {
    match op {
        BinOp::Lt => x.refine_lt(other),
        BinOp::Le => x.refine_le(other),
        BinOp::Gt => x.refine_gt(other),
        BinOp::Ge => x.refine_ge(other),
        BinOp::Eq => x.meet(other),
        BinOp::Ne => x.refine_ne(other),
        _ => *x,
    }
}

/// Refines abstract value `x` under `x op other`.
fn refine_absval(op: BinOp, x: &AbsVal, other: &AbsVal) -> AbsVal {
    use AbsVal::*;
    match (op, other) {
        // Null tests refine references.
        (BinOp::Eq, NullRef) => match x {
            NullRef | AnyRef | Top => NullRef,
            _ => Bot,
        },
        (BinOp::Ne, NullRef) => match x {
            NodeRef | AnyRef => NodeRef,
            NullRef => Bot,
            Top => Top, // could be a non-reference; cannot refine to NodeRef
            other => other.clone(),
        },
        // Boolean equality tests.
        (BinOp::Eq, Boolean(b)) => {
            let xb = x.as_bool();
            let refined = match b {
                Bool3::True => xb.and(Bool3::True),
                Bool3::False => {
                    if xb.may_false() {
                        Bool3::False
                    } else {
                        Bool3::Bot
                    }
                }
                _ => xb,
            };
            Boolean(refined).normalize()
        }
        // Numeric comparisons.
        _ => {
            let other_num = other.as_num();
            match x {
                Num(i) => Num(refine_interval(op, i, &other_num)).normalize(),
                Top if !other_num.is_empty() => {
                    // A comparison against a number means x is a number.
                    Num(refine_interval(op, &Interval::TOP, &other_num)).normalize()
                }
                v => v.clone(),
            }
        }
    }
}

impl crate::compile::CompileTransfer for IntervalDomain {
    fn stage(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        use crate::compile::{CompiledTransfer, TransferShape};
        match stmt {
            Stmt::Skip | Stmt::Print(_) => Some(CompiledTransfer::new(
                TransferShape::Identity,
                |pre: &IntervalDomain| match pre {
                    IntervalDomain::Env(_) => pre.clone(),
                    IntervalDomain::Bottom => IntervalDomain::Bottom,
                },
            )),
            Stmt::Assign(x, Expr::AllocNode) => {
                let x = x.clone();
                Some(CompiledTransfer::new(
                    TransferShape::ConstAssign,
                    move |pre: &IntervalDomain| match pre {
                        IntervalDomain::Env(_) => pre.with_binding(&x, AbsVal::NodeRef),
                        IntervalDomain::Bottom => IntervalDomain::Bottom,
                    },
                ))
            }
            Stmt::Assign(x, e) => {
                let x = x.clone();
                match e {
                    Expr::Int(_) | Expr::Bool(_) | Expr::Null => {
                        let v = eval_in(&BTreeMap::new(), e);
                        Some(CompiledTransfer::new(
                            TransferShape::ConstAssign,
                            move |pre: &IntervalDomain| match pre {
                                IntervalDomain::Env(_) => pre.with_binding(&x, v.clone()),
                                IntervalDomain::Bottom => IntervalDomain::Bottom,
                            },
                        ))
                    }
                    _ => {
                        let shape = if matches!(e, Expr::Var(_)) {
                            TransferShape::CopyAssign
                        } else {
                            TransferShape::Assign
                        };
                        let e = e.clone();
                        Some(CompiledTransfer::new(shape, move |pre: &IntervalDomain| {
                            let IntervalDomain::Env(env) = pre else {
                                return IntervalDomain::Bottom;
                            };
                            pre.with_binding(&x, eval_in(env, &e))
                        }))
                    }
                }
            }
            Stmt::ArrayWrite(a, i, e) => {
                let a = a.clone();
                let i = i.clone();
                let e = e.clone();
                Some(CompiledTransfer::new(
                    TransferShape::HeapWrite,
                    move |pre: &IntervalDomain| {
                        let IntervalDomain::Env(env) = pre else {
                            return IntervalDomain::Bottom;
                        };
                        let iv = eval_in(env, &i).as_num();
                        if iv.is_empty() {
                            return IntervalDomain::Bottom;
                        }
                        let ev = eval_in(env, &e);
                        match env.get(&a).cloned().unwrap_or(AbsVal::Top) {
                            AbsVal::Arr(arr) => {
                                let min_len = match iv.lo() {
                                    Bound::Fin(l) if l >= 0 => l.saturating_add(1),
                                    _ => 1,
                                };
                                let new = ArrayAbs {
                                    len: arr.len.meet(&Interval::at_least(min_len)),
                                    elem: Box::new(arr.elem.join(&ev)),
                                };
                                if new.len.is_empty() {
                                    return IntervalDomain::Bottom;
                                }
                                pre.with_binding(&a, AbsVal::Arr(new))
                            }
                            AbsVal::Top => pre.with_binding(
                                &a,
                                AbsVal::Arr(ArrayAbs {
                                    len: Interval::at_least(1),
                                    elem: Box::new(AbsVal::Top),
                                }),
                            ),
                            _ => IntervalDomain::Bottom,
                        }
                    },
                ))
            }
            Stmt::FieldWrite(x, _, _) => {
                let x = x.clone();
                Some(CompiledTransfer::new(
                    TransferShape::HeapWrite,
                    move |pre: &IntervalDomain| {
                        let IntervalDomain::Env(env) = pre else {
                            return IntervalDomain::Bottom;
                        };
                        match env.get(&x).cloned().unwrap_or(AbsVal::Top) {
                            AbsVal::NodeRef | AbsVal::AnyRef | AbsVal::Top => {
                                pre.with_binding(&x, AbsVal::NodeRef)
                            }
                            _ => IntervalDomain::Bottom,
                        }
                    },
                ))
            }
            Stmt::Assume(e) => {
                let e = e.clone();
                Some(CompiledTransfer::new(
                    TransferShape::Assume,
                    move |pre: &IntervalDomain| match pre {
                        IntervalDomain::Env(_) => pre.refine(&e, true),
                        IntervalDomain::Bottom => IntervalDomain::Bottom,
                    },
                ))
            }
            Stmt::Call { .. } => None,
        }
    }
}

fn eval_in(env: &BTreeMap<Symbol, AbsVal>, expr: &Expr) -> AbsVal {
    match expr {
        Expr::Int(n) => AbsVal::Num(Interval::constant(*n)),
        Expr::Bool(b) => AbsVal::Boolean(Bool3::of(*b)),
        Expr::Null => AbsVal::NullRef,
        Expr::Var(x) => env.get(x).cloned().unwrap_or(AbsVal::Top),
        Expr::Unary(UnOp::Neg, e) => AbsVal::Num(eval_in(env, e).as_num().neg()).normalize(),
        Expr::Unary(UnOp::Not, e) => AbsVal::Boolean(eval_in(env, e).as_bool().not()).normalize(),
        Expr::Binary(op, l, r) => {
            let lv = eval_in(env, l);
            let rv = eval_in(env, r);
            eval_binop(*op, &lv, &rv)
        }
        Expr::ArrayLit(es) => {
            let mut elem = AbsVal::Bot;
            for e in es {
                elem = elem.join(&eval_in(env, e));
            }
            AbsVal::Arr(ArrayAbs {
                len: Interval::constant(es.len() as i64),
                elem: Box::new(elem),
            })
        }
        Expr::ArrayRead(a, i) => {
            let av = eval_in(env, a);
            let iv = eval_in(env, i).as_num();
            if iv.is_empty() {
                return AbsVal::Bot;
            }
            match av {
                AbsVal::Arr(arr) => (*arr.elem).clone(),
                AbsVal::Top => AbsVal::Top,
                _ => AbsVal::Bot, // indexing a non-array halts
            }
        }
        Expr::ArrayLen(a) => match eval_in(env, a) {
            AbsVal::Arr(arr) => AbsVal::Num(arr.len),
            AbsVal::Top => AbsVal::Num(Interval::at_least(0)),
            _ => AbsVal::Bot,
        },
        Expr::Field(e, _) => match eval_in(env, e) {
            AbsVal::NodeRef | AbsVal::AnyRef | AbsVal::Top => AbsVal::Top,
            _ => AbsVal::Bot, // field read on null or non-node halts
        },
        Expr::AllocNode => AbsVal::NodeRef,
    }
}

fn eval_binop(op: BinOp, l: &AbsVal, r: &AbsVal) -> AbsVal {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => {
            let (a, b) = (l.as_num(), r.as_num());
            let out = match op {
                Add => a.add(&b),
                Sub => a.sub(&b),
                Mul => a.mul(&b),
                Div => a.div(&b),
                Mod => a.rem(&b),
                _ => unreachable!(),
            };
            AbsVal::Num(out).normalize()
        }
        Lt | Le | Gt | Ge => {
            let (a, b) = (l.as_num(), r.as_num());
            let out = match op {
                Lt => a.lt(&b),
                Le => a.le(&b),
                Gt => b.lt(&a),
                Ge => b.le(&a),
                _ => unreachable!(),
            };
            AbsVal::Boolean(out).normalize()
        }
        Eq | Ne => {
            let eq = abstract_eq(l, r);
            let out = if op == Eq { eq } else { eq.not() };
            AbsVal::Boolean(out).normalize()
        }
        And => AbsVal::Boolean(l.as_bool().and(r.as_bool())).normalize(),
        Or => AbsVal::Boolean(l.as_bool().or(r.as_bool())).normalize(),
    }
}

/// Abstract `==`, accounting for the concrete semantics halting on
/// incomparable types.
fn abstract_eq(l: &AbsVal, r: &AbsVal) -> Bool3 {
    use AbsVal::*;
    match (l, r) {
        (Bot, _) | (_, Bot) => Bool3::Bot,
        (Top, _) | (_, Top) => Bool3::Top,
        (Num(a), Num(b)) => a.eq_abs(b),
        (Boolean(a), Boolean(b)) => match (a, b) {
            (Bool3::True, Bool3::True) | (Bool3::False, Bool3::False) => Bool3::True,
            (Bool3::True, Bool3::False) | (Bool3::False, Bool3::True) => Bool3::False,
            _ => Bool3::Top,
        },
        (NullRef, NullRef) => Bool3::True,
        (NullRef, NodeRef) | (NodeRef, NullRef) => Bool3::False,
        (NullRef | NodeRef | AnyRef, NullRef | NodeRef | AnyRef) => Bool3::Top,
        (Arr(_), Arr(_)) => Bool3::Top,
        _ => Bool3::Bot, // mixed families halt
    }
}

impl fmt::Display for IntervalDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalDomain::Bottom => write!(f, "⊥"),
            IntervalDomain::Env(env) => {
                write!(f, "{{")?;
                for (i, (k, v)) in env.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl AbstractDomain for IntervalDomain {
    fn bottom() -> Self {
        IntervalDomain::Bottom
    }

    fn is_bottom(&self) -> bool {
        matches!(self, IntervalDomain::Bottom)
    }

    fn entry_default(_params: &[Symbol]) -> Self {
        IntervalDomain::top()
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (IntervalDomain::Bottom, x) | (x, IntervalDomain::Bottom) => x.clone(),
            (IntervalDomain::Env(a), IntervalDomain::Env(b)) => {
                // Unbound means ⊤, so only keep variables bound on both
                // sides (anything else joins to ⊤ and is dropped).
                let mut env = BTreeMap::new();
                for (k, va) in a {
                    if let Some(vb) = b.get(k) {
                        let j = va.join(vb);
                        if j != AbsVal::Top {
                            env.insert(k.clone(), j);
                        }
                    }
                }
                IntervalDomain::Env(env)
            }
        }
    }

    fn widen(&self, next: &Self) -> Self {
        match (self, next) {
            (IntervalDomain::Bottom, x) | (x, IntervalDomain::Bottom) => x.clone(),
            (IntervalDomain::Env(a), IntervalDomain::Env(b)) => {
                let mut env = BTreeMap::new();
                for (k, va) in a {
                    if let Some(vb) = b.get(k) {
                        let w = va.widen(vb);
                        if w != AbsVal::Top {
                            env.insert(k.clone(), w);
                        }
                    }
                }
                IntervalDomain::Env(env)
            }
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (IntervalDomain::Bottom, _) => true,
            (_, IntervalDomain::Bottom) => false,
            (IntervalDomain::Env(a), IntervalDomain::Env(b)) => {
                // self ⊑ other iff every constraint in other is implied.
                b.iter()
                    .all(|(k, vb)| a.get(k).cloned().unwrap_or(AbsVal::Top).leq(vb))
            }
        }
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        let IntervalDomain::Env(env) = self else {
            return IntervalDomain::Bottom;
        };
        match stmt {
            Stmt::Skip | Stmt::Print(_) => self.clone(),
            Stmt::Assign(x, Expr::AllocNode) => self.with_binding(x, AbsVal::NodeRef),
            Stmt::Assign(x, e) => self.with_binding(x, eval_in(env, e)),
            Stmt::ArrayWrite(a, i, e) => {
                let iv = eval_in(env, i).as_num();
                if iv.is_empty() {
                    return IntervalDomain::Bottom;
                }
                let ev = eval_in(env, e);
                match env.get(a).cloned().unwrap_or(AbsVal::Top) {
                    AbsVal::Arr(arr) => {
                        // Weak update; a successful write also proves
                        // len > idx ≥ 0.
                        let min_len = match iv.lo() {
                            Bound::Fin(l) if l >= 0 => l.saturating_add(1),
                            _ => 1,
                        };
                        let new = ArrayAbs {
                            len: arr.len.meet(&Interval::at_least(min_len)),
                            elem: Box::new(arr.elem.join(&ev)),
                        };
                        if new.len.is_empty() {
                            return IntervalDomain::Bottom;
                        }
                        self.with_binding(a, AbsVal::Arr(new))
                    }
                    AbsVal::Top => self.with_binding(
                        a,
                        AbsVal::Arr(ArrayAbs {
                            len: Interval::at_least(1),
                            elem: Box::new(AbsVal::Top),
                        }),
                    ),
                    _ => IntervalDomain::Bottom, // write to non-array halts
                }
            }
            Stmt::FieldWrite(x, _, _) => {
                // No heap tracking; but a successful write proves x is a
                // node.
                match env.get(x).cloned().unwrap_or(AbsVal::Top) {
                    AbsVal::NodeRef | AbsVal::AnyRef | AbsVal::Top => {
                        self.with_binding(x, AbsVal::NodeRef)
                    }
                    _ => IntervalDomain::Bottom,
                }
            }
            Stmt::Assume(e) => self.refine(e, true),
            Stmt::Call { lhs, .. } => match lhs {
                // Intraprocedural fallback: havoc the result.
                Some(x) => self.with_binding(x, AbsVal::Top),
                None => self.clone(),
            },
        }
    }

    fn compile_transfer(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        <IntervalDomain as crate::compile::CompileTransfer>::stage(stmt)
    }

    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self {
        let IntervalDomain::Env(env) = self else {
            return IntervalDomain::Bottom;
        };
        IntervalDomain::from_bindings(
            callee_params
                .iter()
                .zip(site.args)
                .map(|(p, a)| (p.clone(), eval_in(env, a))),
        )
    }

    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self {
        if self.is_bottom() || callee_exit.is_bottom() {
            return IntervalDomain::Bottom;
        }
        match site.lhs {
            Some(x) => self.with_binding(x, callee_exit.value_of(RETURN_VAR)),
            None => self.clone(),
        }
    }

    fn models(&self, concrete: &ConcreteState) -> bool {
        let IntervalDomain::Env(env) = self else {
            return false;
        };
        concrete
            .env
            .iter()
            .all(|(x, v)| env.get(x).is_none_or(|av| av.models(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_lang::parse_expr;

    fn st(bindings: &[(&str, AbsVal)]) -> IntervalDomain {
        IntervalDomain::from_bindings(bindings.iter().map(|(k, v)| (Symbol::new(k), v.clone())))
    }

    fn num(lo: i64, hi: i64) -> AbsVal {
        AbsVal::Num(Interval::of(lo, hi))
    }

    #[test]
    fn interval_join_meet_widen() {
        let a = Interval::of(0, 5);
        let b = Interval::of(3, 10);
        assert_eq!(a.join(&b), Interval::of(0, 10));
        assert_eq!(a.meet(&b), Interval::of(3, 5));
        assert_eq!(a.widen(&b), Interval::new(Bound::Fin(0), Bound::PosInf));
        assert_eq!(a.widen(&a), a);
    }

    #[test]
    fn interval_widen_converges() {
        // Repeated widening of a strictly increasing chain stabilizes.
        let mut cur = Interval::of(0, 0);
        let mut steps = 0;
        loop {
            let next = cur.add(&Interval::of(0, 1));
            let w = cur.widen(&next);
            if w == cur {
                break;
            }
            cur = w;
            steps += 1;
            assert!(steps < 5, "widening failed to converge");
        }
        assert_eq!(cur, Interval::at_least(0));
    }

    #[test]
    fn interval_arithmetic_overflow_is_top() {
        let big = Interval::constant(i64::MAX);
        assert_eq!(big.add(&Interval::constant(1)), Interval::TOP);
        assert_eq!(big.mul(&Interval::constant(2)), Interval::TOP);
        assert_eq!(Interval::constant(i64::MIN).neg(), Interval::TOP);
    }

    #[test]
    fn interval_division_excludes_zero_divisor() {
        let x = Interval::of(10, 20);
        assert_eq!(x.div(&Interval::constant(0)), Interval::EMPTY);
        let q = x.div(&Interval::of(-2, 2));
        // Divisor refined to [-2,-1] ∪ [1,2]: quotients within [-20, 20].
        assert!(q.leq(&Interval::of(-20, 20)));
        assert!(q.contains(10) && q.contains(-10) && q.contains(5));
    }

    #[test]
    fn interval_rem_sign_follows_dividend() {
        let r = Interval::of(0, 100).rem(&Interval::constant(7));
        assert!(r.leq(&Interval::of(0, 6)));
        let r = Interval::of(-100, -1).rem(&Interval::constant(7));
        assert!(r.leq(&Interval::of(-6, 0)));
    }

    #[test]
    fn interval_comparison_booleans() {
        assert_eq!(Interval::of(0, 1).lt(&Interval::of(2, 3)), Bool3::True);
        assert_eq!(Interval::of(5, 9).lt(&Interval::of(0, 5)), Bool3::False);
        assert_eq!(Interval::of(0, 5).lt(&Interval::of(3, 9)), Bool3::Top);
        assert_eq!(
            Interval::constant(4).eq_abs(&Interval::constant(4)),
            Bool3::True
        );
        assert_eq!(Interval::of(0, 1).eq_abs(&Interval::of(5, 6)), Bool3::False);
    }

    #[test]
    fn refine_lt_tightens_upper_bound() {
        let x = Interval::TOP.refine_lt(&Interval::constant(10));
        assert_eq!(x, Interval::at_most(9));
        let y = Interval::of(0, 100).refine_ge(&Interval::constant(50));
        assert_eq!(y, Interval::of(50, 100));
    }

    #[test]
    fn refine_ne_punches_endpoints() {
        assert_eq!(
            Interval::of(0, 5).refine_ne(&Interval::constant(0)),
            Interval::of(1, 5)
        );
        assert_eq!(
            Interval::of(0, 5).refine_ne(&Interval::constant(5)),
            Interval::of(0, 4)
        );
        assert_eq!(
            Interval::of(3, 3).refine_ne(&Interval::constant(3)),
            Interval::EMPTY
        );
        // interior holes are not representable
        assert_eq!(
            Interval::of(0, 5).refine_ne(&Interval::constant(2)),
            Interval::of(0, 5)
        );
    }

    #[test]
    fn transfer_assign_and_eval() {
        let s = st(&[("x", num(1, 3))]);
        let s2 = s.transfer(&Stmt::Assign("y".into(), parse_expr("x + 2").unwrap()));
        assert_eq!(s2.interval_of("y"), Interval::of(3, 5));
    }

    #[test]
    fn transfer_assume_refines_both_sides() {
        let s = st(&[("i", num(0, 100)), ("n", num(0, 50))]);
        let s2 = s.transfer(&Stmt::Assume(parse_expr("i < n").unwrap()));
        assert_eq!(s2.interval_of("i"), Interval::of(0, 49));
        assert_eq!(s2.interval_of("n"), Interval::of(1, 50));
    }

    #[test]
    fn assume_false_condition_is_bottom() {
        let s = st(&[("x", num(0, 1))]);
        let s2 = s.transfer(&Stmt::Assume(parse_expr("x > 5").unwrap()));
        assert!(s2.is_bottom());
    }

    #[test]
    fn assume_conjunction_refines_twice() {
        let s = IntervalDomain::top();
        let s2 = s.transfer(&Stmt::Assume(parse_expr("x >= 0 && x < 10").unwrap()));
        assert_eq!(s2.interval_of("x"), Interval::of(0, 9));
    }

    #[test]
    fn assume_disjunction_joins() {
        let s = st(&[("x", num(0, 100))]);
        let s2 = s.transfer(&Stmt::Assume(parse_expr("x < 10 || x > 90").unwrap()));
        assert_eq!(s2.interval_of("x"), Interval::of(0, 100));
        let s3 = s.transfer(&Stmt::Assume(parse_expr("x < 10 || x < 20").unwrap()));
        assert_eq!(s3.interval_of("x"), Interval::of(0, 19));
    }

    #[test]
    fn assume_negation_pushes_inward() {
        let s = st(&[("x", num(0, 100))]);
        let s2 = s.transfer(&Stmt::Assume(parse_expr("!(x < 50)").unwrap()));
        assert_eq!(s2.interval_of("x"), Interval::of(50, 100));
    }

    #[test]
    fn null_test_refinement() {
        let s = st(&[("p", AbsVal::AnyRef)]);
        let eq = s.transfer(&Stmt::Assume(parse_expr("p == null").unwrap()));
        assert_eq!(eq.value_of("p"), AbsVal::NullRef);
        let ne = s.transfer(&Stmt::Assume(parse_expr("p != null").unwrap()));
        assert_eq!(ne.value_of("p"), AbsVal::NodeRef);
    }

    #[test]
    fn array_literal_and_access_check() {
        let s = IntervalDomain::top()
            .transfer(&Stmt::Assign("a".into(), parse_expr("[1, 2, 3]").unwrap()));
        let av = s.value_of("a");
        assert!(matches!(&av, AbsVal::Arr(arr) if arr.len == Interval::constant(3)));
        // a[i] with i in [0, 2] is safe; with i in [0, 3] it is not.
        let safe = s.transfer(&Stmt::Assign("i".into(), parse_expr("2").unwrap()));
        assert!(safe.array_access_safe(&parse_expr("a").unwrap(), &parse_expr("i").unwrap()));
        let unsafe_ = s.transfer(&Stmt::Assign("i".into(), parse_expr("3").unwrap()));
        assert!(!unsafe_.array_access_safe(&parse_expr("a").unwrap(), &parse_expr("i").unwrap()));
    }

    #[test]
    fn len_guard_verifies_loop_access() {
        // i refined by i < len(a) where len(a) = 3.
        let s = IntervalDomain::top()
            .transfer(&Stmt::Assign("a".into(), parse_expr("[1, 2, 3]").unwrap()))
            .transfer(&Stmt::Assign("i".into(), parse_expr("0").unwrap()))
            .transfer(&Stmt::Assume(parse_expr("i < len(a)").unwrap()));
        assert!(s.array_access_safe(&parse_expr("a").unwrap(), &parse_expr("i").unwrap()));
    }

    #[test]
    fn array_write_weak_update() {
        let s = IntervalDomain::top()
            .transfer(&Stmt::Assign("a".into(), parse_expr("[1, 1]").unwrap()))
            .transfer(&Stmt::ArrayWrite(
                "a".into(),
                parse_expr("0").unwrap(),
                parse_expr("9").unwrap(),
            ));
        let AbsVal::Arr(arr) = s.value_of("a") else {
            panic!("expected array")
        };
        assert_eq!(*arr.elem, num(1, 9));
    }

    #[test]
    fn join_drops_one_sided_bindings() {
        let a = st(&[("x", num(0, 1)), ("y", num(5, 5))]);
        let b = st(&[("x", num(3, 4))]);
        let j = a.join(&b);
        assert_eq!(j.interval_of("x"), Interval::of(0, 4));
        assert_eq!(j.value_of("y"), AbsVal::Top);
    }

    #[test]
    fn join_and_widen_with_bottom() {
        let a = st(&[("x", num(0, 1))]);
        assert_eq!(IntervalDomain::Bottom.join(&a), a);
        assert_eq!(a.widen(&IntervalDomain::Bottom), a);
        assert!(IntervalDomain::Bottom.leq(&a));
        assert!(!a.leq(&IntervalDomain::Bottom));
    }

    #[test]
    fn widen_idempotent_on_equal_states() {
        let a = st(&[("x", num(0, 10)), ("b", AbsVal::Boolean(Bool3::Top))]);
        assert_eq!(a.widen(&a), a);
    }

    #[test]
    fn leq_reflexive_and_respects_join() {
        let a = st(&[("x", num(0, 1))]);
        let b = st(&[("x", num(0, 9))]);
        assert!(a.leq(&a));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn models_concrete_states() {
        use dai_lang::interp::ConcreteState;
        let s = st(&[("x", num(0, 5)), ("p", AbsVal::NullRef)]);
        let mut c = ConcreteState::new();
        c.env.insert("x".into(), Value::Int(3));
        c.env.insert("p".into(), Value::Null);
        c.env.insert("unbound".into(), Value::Int(12345));
        assert!(s.models(&c));
        c.env.insert("x".into(), Value::Int(6));
        assert!(!s.models(&c));
        assert!(!IntervalDomain::Bottom.models(&c));
    }

    #[test]
    fn models_arrays() {
        use dai_lang::interp::ConcreteState;
        let s = st(&[(
            "a",
            AbsVal::Arr(ArrayAbs {
                len: Interval::of(2, 3),
                elem: Box::new(num(0, 9)),
            }),
        )]);
        let mut c = ConcreteState::new();
        c.env
            .insert("a".into(), Value::Arr(vec![Value::Int(1), Value::Int(9)]));
        assert!(s.models(&c));
        c.env.insert("a".into(), Value::Arr(vec![Value::Int(1)]));
        assert!(!s.models(&c)); // wrong length
    }

    #[test]
    fn call_entry_and_return() {
        let caller = st(&[("v", num(1, 2))]);
        let args = vec![parse_expr("v + 1").unwrap()];
        let site = CallSite {
            lhs: Some(&Symbol::new("out")),
            callee: &Symbol::new("f"),
            args: &args,
            site_key: "main:e0",
        };
        let entry = caller.call_entry(site, &[Symbol::new("p")]);
        assert_eq!(entry.interval_of("p"), Interval::of(2, 3));
        let exit = st(&[(RETURN_VAR, num(7, 8))]);
        let after = caller.call_return(site, &exit);
        assert_eq!(after.interval_of("out"), Interval::of(7, 8));
        assert_eq!(after.interval_of("v"), Interval::of(1, 2));
    }

    #[test]
    fn field_ops_refine_nodeness() {
        let s = st(&[("p", AbsVal::AnyRef)]);
        let s2 = s.transfer(&Stmt::FieldWrite("p".into(), "next".into(), Expr::Null));
        assert_eq!(s2.value_of("p"), AbsVal::NodeRef);
        let dead = st(&[("p", AbsVal::NullRef)]).transfer(&Stmt::FieldWrite(
            "p".into(),
            "next".into(),
            Expr::Null,
        ));
        assert!(dead.is_bottom());
    }

    #[test]
    fn display_formats() {
        let s = st(&[("x", num(0, 5))]);
        assert_eq!(s.to_string(), "{x: [0, 5]}");
        assert_eq!(IntervalDomain::Bottom.to_string(), "⊥");
    }
}
