//! The octagon abstract domain (Miné), from scratch.
//!
//! Octagons represent conjunctions of constraints of the form
//! `±x ± y ≤ c` — "a relational numerical domain … widely used in practice
//! due to its balance of expressivity and efficiency" (paper §7.3, where it
//! backs the scalability experiments). The paper uses APRON's octagons;
//! this is a self-contained implementation of the same domain:
//!
//! * each tracked variable `x` gets two signed forms `x⁺ = x` and
//!   `x⁻ = −x`; a difference-bound matrix (DBM) entry `m[i][j]` bounds
//!   `vᵢ − vⱼ ≤ m[i][j]` over signed forms;
//! * **strong closure** (Floyd–Warshall plus the octagonal strengthening
//!   step) computes the canonical tightest matrix and decides emptiness;
//! * assignment supports exact transfer for (anti-)linear right-hand sides
//!   `±y + c` and falls back to interval bounds for anything else;
//! * `assume` extracts octagon constraints from comparisons (including
//!   two-variable forms like `i < j`), handles `&&`/`||`/`!` structurally;
//! * join is the pointwise max of *closed* operands; widening is pointwise
//!   bound-dropping and — as required for convergence — its result is
//!   **not** closed;
//! * non-numeric variables are simply untracked (`⊤`), which keeps the
//!   domain sound on the full language (arrays, booleans, heap refs).

use crate::interval::{Bound, Interval};
use crate::{AbstractDomain, CallSite};
use dai_lang::interp::{ConcreteState, Value};
use dai_lang::{BinOp, Expr, Stmt, Symbol, UnOp, RETURN_VAR};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// `+∞` sentinel for DBM entries.
const INF: i64 = i64::MAX;

/// Saturating bound addition: `∞ + x = ∞`; finite overflow saturates
/// soundly (positive overflow to `∞`, negative to `i64::MIN`, which is a
/// *weaker* bound than the true sum and therefore sound).
fn badd(a: i64, b: i64) -> i64 {
    if a == INF || b == INF {
        INF
    } else {
        a.saturating_add(b)
    }
}

/// Floor division by 2 that respects the `∞` sentinel.
fn bhalf(a: i64) -> i64 {
    if a == INF {
        INF
    } else {
        a.div_euclid(2)
    }
}

/// A non-bottom octagon: tracked variables (sorted) plus the DBM over their
/// signed forms.
#[derive(Debug, Clone)]
pub struct Oct {
    /// Shared, sorted variable list: assignments to already-tracked
    /// variables clone the matrix but not the list, so the per-transfer
    /// `Oct::clone` on the warm path is one `Vec<i64>` copy plus a
    /// refcount bump.
    vars: Arc<[Symbol]>,
    /// Row-major `(2n)²` matrix; `dbm[i * 2n + j]` bounds `vᵢ − vⱼ`.
    dbm: Vec<i64>,
    /// Whether `dbm` is strongly closed. Ignored by `Eq`/`Hash`.
    closed: bool,
}

impl PartialEq for Oct {
    fn eq(&self, other: &Oct) -> bool {
        self.vars == other.vars && self.dbm == other.dbm
    }
}

impl Eq for Oct {}

impl Hash for Oct {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.vars.hash(state);
        self.dbm.hash(state);
    }
}

impl Oct {
    fn n(&self) -> usize {
        self.vars.len()
    }

    fn dim(&self) -> usize {
        2 * self.vars.len()
    }

    fn at(&self, i: usize, j: usize) -> i64 {
        self.dbm[i * self.dim() + j]
    }

    fn set(&mut self, i: usize, j: usize, v: i64) {
        let d = self.dim();
        self.dbm[i * d + j] = v;
    }

    fn tighten(&mut self, i: usize, j: usize, c: i64) {
        if c < self.at(i, j) {
            self.set(i, j, c);
            // Coherence: v_i − v_j and v_j̄ − v_ī are the same constraint.
            self.set(j ^ 1, i ^ 1, c);
            self.closed = false;
        }
    }

    fn index_of(&self, var: &Symbol) -> Option<usize> {
        self.vars.binary_search(var).ok()
    }

    /// The tracked variables, sorted (persistence accessor).
    pub fn vars(&self) -> &[Symbol] {
        &self.vars
    }

    /// The row-major `(2n)²` difference-bound matrix (persistence
    /// accessor).
    pub fn dbm(&self) -> &[i64] {
        &self.dbm
    }

    /// Whether the matrix is currently strongly closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Rebuilds an octagon from its serialized parts, validating the
    /// structural invariants (`dbm` is `(2·|vars|)²` and `vars` is sorted
    /// and duplicate-free). Returns `None` for inconsistent parts, so a
    /// corrupted snapshot can never materialize a malformed matrix.
    ///
    /// The result is always marked **unclosed**: `closed` is a derived
    /// property the exact-assignment fast paths rely on, and trusting a
    /// deserialized flag would let a crafted snapshot smuggle in a
    /// falsely-closed matrix (unsound fast-path answers). Re-deriving
    /// closure costs one `close()` on first use, which the lossy
    /// persistence contract happily pays; `Eq`/`Hash` ignore the flag, so
    /// roundtripped states still compare equal.
    pub fn from_parts(vars: Vec<Symbol>, dbm: Vec<i64>) -> Option<Oct> {
        let d = 2 * vars.len();
        if dbm.len() != d * d || vars.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(Oct {
            vars: vars.into(),
            dbm,
            closed: false,
        })
    }

    /// Adds `var` as an unconstrained tracked variable, rebuilding the
    /// matrix. Returns its index.
    ///
    /// Insertion at sorted position `pos` shifts signed-form indices `≥
    /// 2·pos` up by one pair, so each surviving row splits into two
    /// contiguous runs — copied as slices, no per-entry index mapping.
    /// An unconstrained variable adds no finite path, so `closed` is
    /// preserved as-is.
    fn track(&mut self, var: &Symbol) -> usize {
        if let Some(i) = self.index_of(var) {
            return i;
        }
        let pos = self.vars.binary_search(var).unwrap_err();
        let od = self.dim();
        let nd = od + 2;
        let lo = 2 * pos;
        let mut vars = Vec::with_capacity(self.vars.len() + 1);
        vars.extend_from_slice(&self.vars[..pos]);
        vars.push(var.clone());
        vars.extend_from_slice(&self.vars[pos..]);
        let mut dbm = vec![INF; nd * nd];
        for i in 0..nd {
            dbm[i * nd + i] = 0;
        }
        for i in 0..od {
            let ni = if i < lo { i } else { i + 2 };
            let src = i * od;
            let dst = ni * nd;
            dbm[dst..dst + lo].copy_from_slice(&self.dbm[src..src + lo]);
            dbm[dst + lo + 2..dst + od + 2].copy_from_slice(&self.dbm[src + lo..src + od]);
        }
        self.vars = vars.into();
        self.dbm = dbm;
        pos
    }

    fn unconstrained(vars: Vec<Symbol>) -> Oct {
        let d = 2 * vars.len();
        let mut dbm = vec![INF; d * d];
        for i in 0..d {
            dbm[i * d + i] = 0;
        }
        Oct {
            vars: vars.into(),
            dbm,
            closed: true,
        }
    }

    /// Strong closure: all-pairs shortest paths followed by octagonal
    /// strengthening. Returns `false` if a negative cycle (⊥) is found.
    fn close(&mut self) -> bool {
        if self.closed {
            return !self.has_negative_diagonal();
        }
        let d = self.dim();
        for k in 0..d {
            for i in 0..d {
                let ik = self.at(i, k);
                if ik == INF {
                    continue;
                }
                for j in 0..d {
                    let kj = self.at(k, j);
                    if kj == INF {
                        continue;
                    }
                    let via = badd(ik, kj);
                    if via < self.at(i, j) {
                        self.set(i, j, via);
                    }
                }
            }
            // Strengthening: vᵢ − vⱼ ≤ (vᵢ − vī)/2 + (vj̄ − vⱼ)/2.
            for i in 0..d {
                let half_i = bhalf(self.at(i, i ^ 1));
                if half_i == INF {
                    continue;
                }
                for j in 0..d {
                    let half_j = bhalf(self.at(j ^ 1, j));
                    if half_j == INF {
                        continue;
                    }
                    let s = badd(half_i, half_j);
                    if s < self.at(i, j) {
                        self.set(i, j, s);
                    }
                }
            }
        }
        self.closed = true;
        !self.has_negative_diagonal()
    }

    fn has_negative_diagonal(&self) -> bool {
        (0..self.dim()).any(|i| self.at(i, i) < 0)
    }

    /// Removes all constraints mentioning `var` (projection; exact on a
    /// closed matrix), keeping it tracked.
    fn forget(&mut self, var: &Symbol) {
        let Some(x) = self.index_of(var) else { return };
        self.close();
        let d = self.dim();
        for s in 0..2 {
            let row = 2 * x + s;
            for j in 0..d {
                if j != row {
                    self.set(row, j, INF);
                    self.set(j, row, INF);
                }
            }
            self.set(row, row ^ 1, INF);
            self.set(row ^ 1, row, INF);
        }
        // Closure is preserved by exact projection of a closed matrix.
        self.closed = true;
    }

    /// Stops tracking `var` entirely.
    fn untrack(&mut self, var: &Symbol) {
        let Some(pos) = self.index_of(var) else {
            return;
        };
        self.close();
        let old = std::mem::replace(self, Oct::unconstrained(Vec::new()));
        let mut vars = old.vars.to_vec();
        vars.remove(pos);
        *self = Oct::unconstrained(vars);
        // Dropping variable `pos` shifts every later index down by one
        // signed pair; copy surviving rows with plain index arithmetic
        // (projection of a closed matrix stays closed).
        let od = old.dim();
        let skip = |i: usize| -> Option<usize> {
            match i.cmp(&(2 * pos)) {
                std::cmp::Ordering::Less => Some(i),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater if i == 2 * pos + 1 => None,
                std::cmp::Ordering::Greater => Some(i - 2),
            }
        };
        for i in 0..od {
            let Some(ni) = skip(i) else { continue };
            for j in 0..od {
                let Some(nj) = skip(j) else { continue };
                self.set(ni, nj, old.dbm[i * od + j]);
            }
        }
        self.closed = true;
    }

    /// Variable bounds `[lo, hi]` from the (closed) matrix:
    /// `x ≤ m[x⁺][x⁻]/2`, `−x ≤ m[x⁻][x⁺]/2`.
    fn var_interval(&self, var: &Symbol) -> Interval {
        let Some(x) = self.index_of(var) else {
            return Interval::TOP;
        };
        let up = self.at(2 * x, 2 * x + 1);
        let down = self.at(2 * x + 1, 2 * x);
        let hi = if up == INF {
            Bound::PosInf
        } else {
            Bound::Fin(up.div_euclid(2))
        };
        let lo = if down == INF {
            Bound::NegInf
        } else {
            Bound::Fin(-down.div_euclid(2))
        };
        Interval::new(lo, hi)
    }

    /// Constrains `var ∈ iv`.
    fn constrain_interval(&mut self, var: &Symbol, iv: Interval) -> bool {
        if iv.is_empty() {
            return false;
        }
        let x = self.track(var);
        if let Bound::Fin(hi) = iv.hi() {
            self.tighten(2 * x, 2 * x + 1, hi.saturating_mul(2));
        }
        if let Bound::Fin(lo) = iv.lo() {
            self.tighten(2 * x + 1, 2 * x, (-lo).saturating_mul(2));
        }
        true
    }

    // ------------------------------------------------------------------
    // Exact O(d) assignments on a strongly closed matrix (Miné §4.4.1).
    //
    // These substitute the assigned relation directly instead of routing
    // through a temporary and re-running the O(d³) strong closure, and
    // they *preserve* strong closure — which is what keeps the DAIG's
    // transfer edges (the most frequent computation in every demanded
    // cone) cheap. `assign_linear_ref` below is the closure-based
    // reference implementation the tests compare against.
    // ------------------------------------------------------------------

    /// `x := [lo, hi]` (a havoc into an interval) on a strongly closed
    /// matrix. Exact for interval-valued right-hand sides; preserves
    /// closure. The caller guarantees `iv` is non-empty.
    fn assign_interval_closed(&mut self, x: &Symbol, iv: Interval) {
        debug_assert!(self.closed);
        // No `forget(x)` first: every entry mentioning `x` is written
        // below from `iv` and the *other* variables' unary rows, so the
        // O(d) row-clear would be overwritten wholesale.
        let xi = self.track(x);
        let (xp, xn) = (2 * xi, 2 * xi + 1);
        // Upper bounds on x and −x in the ∞-sentinel encoding.
        let ub = match iv.hi() {
            Bound::Fin(h) => h,
            _ => INF,
        };
        let nb = match iv.lo() {
            Bound::Fin(l) => l.saturating_neg(),
            _ => INF,
        };
        let two = |b: i64| if b == INF { INF } else { b.saturating_mul(2) };
        self.set(xp, xn, two(ub));
        self.set(xn, xp, two(nb));
        let d = self.dim();
        for k in 0..d {
            if k == xp || k == xn {
                continue;
            }
            let neg_k = bhalf(self.at(k ^ 1, k));
            let pos_k = bhalf(self.at(k, k ^ 1));
            self.set(xp, k, badd(ub, neg_k));
            self.set(k, xp, badd(pos_k, nb));
            self.set(xn, k, badd(nb, neg_k));
            self.set(k, xn, badd(pos_k, ub));
        }
        self.closed = true;
    }

    /// `x := c` on a strongly closed matrix: the singleton-interval case
    /// of [`Oct::assign_interval_closed`]. Exact; preserves closure.
    fn assign_const_closed(&mut self, x: &Symbol, c: i64) {
        self.assign_interval_closed(x, Interval::constant(c));
    }

    /// `x := sign·y + c` with `x ≠ y` on a strongly closed matrix: copy
    /// `y`'s (possibly negated) rows shifted by `c`. Exact; preserves
    /// closure.
    fn assign_copy_closed(&mut self, x: &Symbol, sign: i64, y: &Symbol, c: i64) {
        debug_assert!(self.closed);
        debug_assert!(x != y);
        self.track(y);
        // As in `assign_interval_closed`, skipping `forget(x)` is safe:
        // the writes below cover every entry mentioning `x` and read only
        // `y`'s rows (`x ≠ y`).
        let xi = self.index_of(x).unwrap_or_else(|| self.track(x));
        let yi = self.index_of(y).expect("tracked");
        let (xp, xn) = (2 * xi, 2 * xi + 1);
        // q is the row expressing `sign·y`.
        let (q, qn) = if sign > 0 {
            (2 * yi, 2 * yi + 1)
        } else {
            (2 * yi + 1, 2 * yi)
        };
        let d = self.dim();
        let neg_c = c.saturating_neg();
        for k in 0..d {
            if k == xp || k == xn {
                continue;
            }
            self.set(xp, k, badd(self.at(q, k), c));
            self.set(k, xp, badd(self.at(k, q), neg_c));
            self.set(xn, k, badd(self.at(qn, k), neg_c));
            self.set(k, xn, badd(self.at(k, qn), c));
        }
        let two_c = c.saturating_mul(2);
        self.set(xp, xn, badd(self.at(q, qn), two_c));
        self.set(xn, xp, badd(self.at(qn, q), two_c.saturating_neg()));
        self.closed = true;
    }

    /// `x := sign·x + c` in place on a strongly closed matrix: shift (and
    /// for `sign < 0` swap) `x`'s row and column. Exact; preserves
    /// closure.
    fn assign_shift_closed(&mut self, x: &Symbol, sign: i64, c: i64) {
        debug_assert!(self.closed);
        let xi = self.track(x);
        let (xp, xn) = (2 * xi, 2 * xi + 1);
        let d = self.dim();
        let neg_c = c.saturating_neg();
        for k in 0..d {
            if k == xp || k == xn {
                continue;
            }
            let (row_p, row_n) = if sign > 0 {
                (self.at(xp, k), self.at(xn, k))
            } else {
                (self.at(xn, k), self.at(xp, k))
            };
            let (col_p, col_n) = if sign > 0 {
                (self.at(k, xp), self.at(k, xn))
            } else {
                (self.at(k, xn), self.at(k, xp))
            };
            self.set(xp, k, badd(row_p, c));
            self.set(xn, k, badd(row_n, neg_c));
            self.set(k, xp, badd(col_p, neg_c));
            self.set(k, xn, badd(col_n, c));
        }
        let (up, down) = if sign > 0 {
            (self.at(xp, xn), self.at(xn, xp))
        } else {
            (self.at(xn, xp), self.at(xp, xn))
        };
        let two_c = c.saturating_mul(2);
        self.set(xp, xn, badd(up, two_c));
        self.set(xn, xp, badd(down, two_c.saturating_neg()));
        self.closed = true;
    }
}

/// A ±1-coefficient linear term `sign·var + offset` or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Linear1 {
    Const(i64),
    /// `sign * var + offset` with `sign ∈ {+1, −1}`.
    Term {
        sign: i64,
        var: Symbol,
        offset: i64,
    },
}

/// Tries to view `e` as `±x + c`.
fn linear1(e: &Expr) -> Option<Linear1> {
    match e {
        Expr::Int(n) => Some(Linear1::Const(*n)),
        Expr::Var(x) => Some(Linear1::Term {
            sign: 1,
            var: x.clone(),
            offset: 0,
        }),
        Expr::Unary(UnOp::Neg, inner) => match linear1(inner)? {
            Linear1::Const(c) => Some(Linear1::Const(c.checked_neg()?)),
            Linear1::Term { sign, var, offset } => Some(Linear1::Term {
                sign: -sign,
                var,
                offset: offset.checked_neg()?,
            }),
        },
        Expr::Binary(BinOp::Add, l, r) => combine(linear1(l)?, linear1(r)?, 1),
        Expr::Binary(BinOp::Sub, l, r) => combine(linear1(l)?, linear1(r)?, -1),
        _ => None,
    }
}

fn combine(l: Linear1, r: Linear1, rsign: i64) -> Option<Linear1> {
    match (l, r) {
        (Linear1::Const(a), Linear1::Const(b)) => {
            Some(Linear1::Const(a.checked_add(rsign.checked_mul(b)?)?))
        }
        (Linear1::Term { sign, var, offset }, Linear1::Const(b)) => Some(Linear1::Term {
            sign,
            var,
            offset: offset.checked_add(rsign.checked_mul(b)?)?,
        }),
        (Linear1::Const(a), Linear1::Term { sign, var, offset }) => Some(Linear1::Term {
            sign: sign.checked_mul(rsign)?,
            var,
            offset: a.checked_add(rsign.checked_mul(offset)?)?,
        }),
        // x ± y is octagonal as a *constraint* but not as a Linear1 value.
        _ => None,
    }
}

/// The octagon abstract domain state.
///
/// The matrix lives behind an [`Arc`]: a transfer that does not change
/// the octagon (skips, converged assumes on the warm path, call returns
/// without a receiver) hands out a shared handle instead of copying a
/// `(2n)²` matrix, and the DAIG's many cells holding equal iterates
/// share one allocation. Mutating paths clone the inner [`Oct`] first,
/// exactly as they used to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OctagonDomain {
    /// Unreachable.
    Bottom,
    /// A (possibly unclosed) octagon.
    Oct(Arc<Oct>),
}

impl OctagonDomain {
    /// The unconstrained state.
    pub fn top() -> OctagonDomain {
        OctagonDomain::Oct(Arc::new(Oct::unconstrained(Vec::new())))
    }

    /// The interval of `var` implied by this octagon (`⊤` if untracked,
    /// empty if ⊥). Closes a copy if needed.
    pub fn interval_of(&self, var: &str) -> Interval {
        match self {
            OctagonDomain::Bottom => Interval::EMPTY,
            OctagonDomain::Oct(o) => {
                let sym = Symbol::new(var);
                if o.index_of(&sym).is_none() {
                    return Interval::TOP;
                }
                let mut c = Oct::clone(o);
                if !c.close() {
                    return Interval::EMPTY;
                }
                c.var_interval(&sym)
            }
        }
    }

    /// Does this state entail `x − y ≤ c`?
    pub fn entails_diff_le(&self, x: &str, y: &str, c: i64) -> bool {
        match self {
            OctagonDomain::Bottom => true,
            OctagonDomain::Oct(o) => {
                let mut o = Oct::clone(o);
                if !o.close() {
                    return true;
                }
                let (Some(xi), Some(yi)) =
                    (o.index_of(&Symbol::new(x)), o.index_of(&Symbol::new(y)))
                else {
                    return false;
                };
                o.at(2 * xi, 2 * yi) <= c
            }
        }
    }

    /// Interval evaluation of an expression using the octagon's per-variable
    /// bounds (used for non-octagonal right-hand sides and by clients).
    pub fn eval_interval(&self, e: &Expr) -> Interval {
        match self {
            OctagonDomain::Bottom => Interval::EMPTY,
            OctagonDomain::Oct(o) if o.closed => {
                if o.has_negative_diagonal() {
                    Interval::EMPTY
                } else {
                    eval_iv(o, e)
                }
            }
            OctagonDomain::Oct(o) => {
                let mut c = Oct::clone(o);
                if !c.close() {
                    return Interval::EMPTY;
                }
                eval_iv(&c, e)
            }
        }
    }

    fn map(&self, f: impl FnOnce(&mut Oct) -> bool) -> OctagonDomain {
        match self {
            OctagonDomain::Bottom => OctagonDomain::Bottom,
            OctagonDomain::Oct(o) => {
                let mut o = Oct::clone(o);
                if f(&mut o) && o.close() {
                    OctagonDomain::Oct(Arc::new(o))
                } else {
                    OctagonDomain::Bottom
                }
            }
        }
    }

    /// Exact transfer for `x := ±y + c` / `x := c`: O(d) substitution on
    /// the strongly closed matrix (see the `*_closed` primitives on
    /// [`Oct`]).
    fn assign_linear(&self, x: &Symbol, lin: &Linear1) -> OctagonDomain {
        self.map(|o| {
            if !o.close() {
                return false;
            }
            match lin {
                Linear1::Const(c) => o.assign_const_closed(x, *c),
                Linear1::Term {
                    sign,
                    var: y,
                    offset,
                } if y == x => {
                    o.assign_shift_closed(x, *sign, *offset);
                }
                Linear1::Term {
                    sign,
                    var: y,
                    offset,
                } => {
                    o.assign_copy_closed(x, *sign, y, *offset);
                }
            }
            true
        })
    }

    /// Closure-based reference implementation of [`Self::assign_linear`]
    /// (the temporary-variable route); kept as the oracle the fast-path
    /// tests compare against.
    #[cfg(test)]
    fn assign_linear_ref(&self, x: &Symbol, lin: &Linear1) -> OctagonDomain {
        self.map(|o| {
            match lin {
                Linear1::Const(c) => {
                    o.forget(x);
                    let xi = o.track(x);
                    o.tighten(2 * xi, 2 * xi + 1, c.saturating_mul(2));
                    o.tighten(2 * xi + 1, 2 * xi, (-c).saturating_mul(2));
                }
                Linear1::Term {
                    sign,
                    var: y,
                    offset,
                } => {
                    // Route through a reserved temporary so `x := ±x + c`
                    // works uniformly.
                    let tmp = Symbol::new("$oct$tmp");
                    o.forget(&tmp);
                    let t = o.track(&tmp);
                    let yi = o.track(y);
                    if *sign > 0 {
                        // t − y ≤ offset and y − t ≤ −offset
                        o.tighten(2 * t, 2 * yi, *offset);
                        o.tighten(2 * yi, 2 * t, offset.saturating_neg());
                    } else {
                        // t + y ≤ offset and −t − y ≤ −offset
                        o.tighten(2 * t, 2 * yi + 1, *offset);
                        o.tighten(2 * yi + 1, 2 * t, offset.saturating_neg());
                    }
                    if !o.close() {
                        return false;
                    }
                    o.forget(x);
                    // Copy t's row/column onto x, then drop t.
                    let xi = o.track(x);
                    let t = o.index_of(&tmp).expect("tracked");
                    let d = o.dim();
                    for s1 in 0..2 {
                        for j in 0..d {
                            let v = o.at(2 * t + s1, j);
                            if j / 2 != t && j / 2 != xi {
                                o.tighten(2 * xi + s1, j, v);
                            }
                            let v2 = o.at(j, 2 * t + s1);
                            if j / 2 != t && j / 2 != xi {
                                o.tighten(j, 2 * xi + s1, v2);
                            }
                        }
                        // x's own range: from t's unary bounds.
                        let up = o.at(2 * t, 2 * t + 1);
                        let down = o.at(2 * t + 1, 2 * t);
                        o.tighten(2 * xi, 2 * xi + 1, up);
                        o.tighten(2 * xi + 1, 2 * xi, down);
                    }
                    o.untrack(&tmp);
                }
            }
            true
        })
    }

    /// Adds the octagonal constraints implied by `l op r` (when any),
    /// returning `None` if nothing can be extracted.
    fn assume_cmp(&self, op: BinOp, l: &Expr, r: &Expr) -> Option<OctagonDomain> {
        // Normalize `l op r` to `Σ sᵢ·xᵢ ≤ c` over the difference l − r.
        let (lt, lc) = linear_terms(l)?;
        let (rt, rc) = linear_terms(r)?;
        let mut terms = lt;
        for (s, v) in rt {
            terms.push((-s, v));
        }
        let (terms, k) = merge_terms(terms)?;
        // l − r + (lc − rc) relates to 0 by `op`; move constants right:
        // Σ terms ≤ rhs_const − (lc − rc) [+ slack for strictness].
        let base = rc.checked_sub(lc)?;
        let mut out = match self {
            OctagonDomain::Bottom => return Some(OctagonDomain::Bottom),
            OctagonDomain::Oct(o) => Oct::clone(o),
        };
        let ok = match op {
            BinOp::Lt => add_sum_le(&mut out, &terms, k, base.checked_sub(1)?),
            BinOp::Le => add_sum_le(&mut out, &terms, k, base),
            BinOp::Gt => {
                let neg: Vec<(i64, Symbol)> = terms.iter().map(|(s, v)| (-s, v.clone())).collect();
                add_sum_le(&mut out, &neg, k, base.checked_neg()?.checked_sub(1)?)
            }
            BinOp::Ge => {
                let neg: Vec<(i64, Symbol)> = terms.iter().map(|(s, v)| (-s, v.clone())).collect();
                add_sum_le(&mut out, &neg, k, base.checked_neg()?)
            }
            BinOp::Eq => {
                let neg: Vec<(i64, Symbol)> = terms.iter().map(|(s, v)| (-s, v.clone())).collect();
                add_sum_le(&mut out, &terms, k, base)
                    && add_sum_le(&mut out, &neg, k, base.checked_neg()?)
            }
            BinOp::Ne => true, // disjunctive; sound to skip
            _ => return None,
        };
        if !ok || !out.close() {
            return Some(OctagonDomain::Bottom);
        }
        Some(OctagonDomain::Oct(Arc::new(out)))
    }

    /// Refines this state by assuming `cond` has truth value `expected`.
    fn refine(&self, cond: &Expr, expected: bool) -> OctagonDomain {
        if self.is_bottom() {
            return OctagonDomain::Bottom;
        }
        match cond {
            Expr::Bool(b) => {
                if *b == expected {
                    self.clone()
                } else {
                    OctagonDomain::Bottom
                }
            }
            Expr::Unary(UnOp::Not, inner) => self.refine(inner, !expected),
            Expr::Binary(BinOp::And, l, r) if expected => self.refine(l, true).refine(r, true),
            Expr::Binary(BinOp::And, l, r) => self.refine(l, false).join(&self.refine(r, false)),
            Expr::Binary(BinOp::Or, l, r) if expected => {
                self.refine(l, true).join(&self.refine(r, true))
            }
            Expr::Binary(BinOp::Or, l, r) => self.refine(l, false).refine(r, false),
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let op = if expected {
                    *op
                } else {
                    op.negate_comparison().expect("comparison")
                };
                match self.assume_cmp(op, l, r) {
                    Some(s) => s,
                    None => self.clone(), // not octagonal; no refinement
                }
            }
            _ => self.clone(),
        }
    }
}

/// Flattens an expression into `Σ sᵢ·xᵢ + c` with `sᵢ ∈ {+1, −1}` (before
/// merging). Returns `None` for non-linear expressions.
fn linear_terms(e: &Expr) -> Option<(Vec<(i64, Symbol)>, i64)> {
    match e {
        Expr::Int(n) => Some((Vec::new(), *n)),
        Expr::Var(x) => Some((vec![(1, x.clone())], 0)),
        Expr::Unary(UnOp::Neg, inner) => {
            let (ts, c) = linear_terms(inner)?;
            Some((
                ts.into_iter().map(|(s, v)| (-s, v)).collect(),
                c.checked_neg()?,
            ))
        }
        Expr::Binary(BinOp::Add, l, r) => {
            let (mut lt, lc) = linear_terms(l)?;
            let (rt, rc) = linear_terms(r)?;
            lt.extend(rt);
            Some((lt, lc.checked_add(rc)?))
        }
        Expr::Binary(BinOp::Sub, l, r) => {
            let (mut lt, lc) = linear_terms(l)?;
            let (rt, rc) = linear_terms(r)?;
            lt.extend(rt.into_iter().map(|(s, v)| (-s, v)));
            Some((lt, lc.checked_sub(rc)?))
        }
        _ => None,
    }
}

/// Merges duplicate variables; the result is octagonal iff it is one
/// variable with coefficient ±1/±2 or two variables with coefficients ±1.
/// Returns the merged terms and a "scale" `k`: `k = 2` means the single
/// term carries coefficient ±2 (so bounds must not be doubled again).
fn merge_terms(terms: Vec<(i64, Symbol)>) -> Option<(Vec<(i64, Symbol)>, i64)> {
    let mut coefs: std::collections::BTreeMap<Symbol, i64> = std::collections::BTreeMap::new();
    for (s, v) in terms {
        *coefs.entry(v).or_insert(0) += s;
    }
    coefs.retain(|_, c| *c != 0);
    let merged: Vec<(i64, Symbol)> = coefs.into_iter().map(|(v, c)| (c, v)).collect();
    match merged.as_slice() {
        [] => Some((Vec::new(), 1)),
        [(c, _)] if c.abs() == 1 => Some((merged, 1)),
        [(c, _)] if c.abs() == 2 => Some((merged, 2)),
        [(c1, _), (c2, _)] if c1.abs() == 1 && c2.abs() == 1 => Some((merged, 1)),
        _ => None,
    }
}

/// Adds `Σ terms ≤ bound` to `o` (terms as produced by [`merge_terms`];
/// `k = 2` marks a doubled single-variable constraint `±2x ≤ bound`).
/// Returns `false` on an immediately contradictory constant constraint.
impl Oct {
    /// Read-only twin of [`add_sum_le`]: would adding `Σ terms ≤ bound`
    /// change nothing? True iff every cell [`add_sum_le`] would
    /// [`Oct::tighten`] already carries a bound at least as tight (so
    /// the tighten no-ops) and every variable it would [`Oct::track`] is
    /// already tracked (so the matrix is not rebuilt). Must mirror
    /// [`add_sum_le`]'s cell arithmetic exactly — the staged assume fast
    /// path relies on "implied ⟹ bit-equal result".
    fn implies_sum_le(&self, terms: &[(i64, Symbol)], k: i64, bound: i64) -> bool {
        match terms {
            [] => 0 <= bound,
            [(c, x)] => {
                let Some(xi) = self.index_of(x) else {
                    return false;
                };
                let doubled = if k == 2 {
                    bound
                } else {
                    bound.saturating_mul(2)
                };
                if *c > 0 {
                    self.at(2 * xi, 2 * xi + 1) <= doubled
                } else {
                    self.at(2 * xi + 1, 2 * xi) <= doubled
                }
            }
            [(c1, x), (c2, y)] => {
                let (Some(xi), Some(yi)) = (self.index_of(x), self.index_of(y)) else {
                    return false;
                };
                let (i, j) = match (*c1 > 0, *c2 > 0) {
                    (true, true) => (2 * xi, 2 * yi + 1),
                    (true, false) => (2 * xi, 2 * yi),
                    (false, true) => (2 * yi, 2 * xi),
                    (false, false) => (2 * xi + 1, 2 * yi),
                };
                self.at(i, j) <= bound
            }
            // `add_sum_le` ignores longer sums (unreachable after
            // `merge_terms`), mutating nothing.
            _ => true,
        }
    }
}

fn add_sum_le(o: &mut Oct, terms: &[(i64, Symbol)], k: i64, bound: i64) -> bool {
    match terms {
        [] => 0 <= bound,
        [(c, x)] => {
            let xi = o.track(x);
            let doubled = if k == 2 {
                bound
            } else {
                bound.saturating_mul(2)
            };
            if *c > 0 {
                o.tighten(2 * xi, 2 * xi + 1, doubled); // 2x ≤ …
            } else {
                o.tighten(2 * xi + 1, 2 * xi, doubled); // −2x ≤ …
            }
            true
        }
        [(c1, x), (c2, y)] => {
            let xi = o.track(x);
            let yi = o.track(y);
            let (i, j) = match (*c1 > 0, *c2 > 0) {
                (true, true) => (2 * xi, 2 * yi + 1), // x + y ≤ c ⟺ x − (−y) ≤ c
                (true, false) => (2 * xi, 2 * yi),    // x − y ≤ c
                (false, true) => (2 * yi, 2 * xi),    // y − x ≤ c
                (false, false) => (2 * xi + 1, 2 * yi), // −x − y ≤ c
            };
            o.tighten(i, j, bound);
            true
        }
        _ => true,
    }
}

/// Interval evaluation over a closed octagon. Two-variable sums and
/// differences read the relational DBM entries directly (e.g. the bound on
/// `j − i` comes from `m[j⁺][i⁺]`), which is strictly tighter than interval
/// arithmetic on the per-variable ranges.
fn eval_iv(o: &Oct, e: &Expr) -> Interval {
    match e {
        Expr::Int(n) => Interval::constant(*n),
        Expr::Var(x) => {
            if o.index_of(x).is_some() {
                o.var_interval(x)
            } else {
                Interval::TOP
            }
        }
        Expr::Unary(UnOp::Neg, inner) => eval_iv(o, inner).neg(),
        Expr::Binary(op, l, r) => {
            let fallback = {
                let (a, b) = (eval_iv(o, l), eval_iv(o, r));
                match op {
                    BinOp::Add => a.add(&b),
                    BinOp::Sub => a.sub(&b),
                    BinOp::Mul => a.mul(&b),
                    BinOp::Div => a.div(&b),
                    BinOp::Mod => a.rem(&b),
                    _ => Interval::TOP, // non-numeric result
                }
            };
            match (op, &**l, &**r) {
                (BinOp::Sub | BinOp::Add, Expr::Var(x), Expr::Var(y)) => {
                    let (Some(xi), Some(yi)) = (o.index_of(x), o.index_of(y)) else {
                        return fallback;
                    };
                    // x − y ≤ m[x⁺][y⁺]; −(x − y) ≤ m[y⁺][x⁺]
                    // x + y ≤ m[x⁺][y⁻]; −(x + y) ≤ m[x⁻][y⁺]
                    let (up, down) = if *op == BinOp::Sub {
                        (o.at(2 * xi, 2 * yi), o.at(2 * yi, 2 * xi))
                    } else {
                        (o.at(2 * xi, 2 * yi + 1), o.at(2 * xi + 1, 2 * yi))
                    };
                    let hi = if up == INF {
                        Bound::PosInf
                    } else {
                        Bound::Fin(up)
                    };
                    let lo = if down == INF {
                        Bound::NegInf
                    } else {
                        Bound::Fin(down.saturating_neg())
                    };
                    Interval::new(lo, hi).meet(&fallback)
                }
                _ => fallback,
            }
        }
        _ => Interval::TOP,
    }
}

impl fmt::Display for OctagonDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OctagonDomain::Bottom => write!(f, "⊥"),
            OctagonDomain::Oct(o) => {
                let mut c = Oct::clone(o);
                if !c.close() {
                    return write!(f, "⊥");
                }
                write!(f, "{{")?;
                let mut first = true;
                for (i, x) in c.vars.iter().enumerate() {
                    let iv = c.var_interval(x);
                    if iv != Interval::TOP {
                        if !first {
                            write!(f, ", ")?;
                        }
                        write!(f, "{x} ∈ {iv}")?;
                        first = false;
                    }
                    for (j, y) in c.vars.iter().enumerate().skip(i + 1) {
                        let d1 = c.at(2 * i, 2 * j);
                        if d1 != INF {
                            if !first {
                                write!(f, ", ")?;
                            }
                            write!(f, "{x} - {y} ≤ {d1}")?;
                            first = false;
                        }
                        let d2 = c.at(2 * i, 2 * j + 1);
                        if d2 != INF {
                            if !first {
                                write!(f, ", ")?;
                            }
                            write!(f, "{x} + {y} ≤ {d2}")?;
                            first = false;
                        }
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

impl AbstractDomain for OctagonDomain {
    fn bottom() -> Self {
        OctagonDomain::Bottom
    }

    fn is_bottom(&self) -> bool {
        matches!(self, OctagonDomain::Bottom)
    }

    fn entry_default(_params: &[Symbol]) -> Self {
        OctagonDomain::top()
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (OctagonDomain::Bottom, x) | (x, OctagonDomain::Bottom) => x.clone(),
            (OctagonDomain::Oct(a), OctagonDomain::Oct(b)) => {
                // Fast path: identical tracked sets and both already
                // strongly closed (the common case at join points, since
                // cell values are stored closed) — one clone, one
                // pointwise max.
                if a.vars == b.vars && a.closed && b.closed {
                    if a.has_negative_diagonal() {
                        return OctagonDomain::Oct(b.clone());
                    }
                    if b.has_negative_diagonal() {
                        return OctagonDomain::Oct(a.clone());
                    }
                    let mut out = Oct::clone(a);
                    for (o, &bv) in out.dbm.iter_mut().zip(&b.dbm) {
                        if bv > *o {
                            *o = bv;
                        }
                    }
                    // Pointwise max of closed matrices is closed.
                    out.closed = true;
                    return OctagonDomain::Oct(Arc::new(out));
                }
                let mut a = Oct::clone(a);
                let mut b = Oct::clone(b);
                if !a.close() {
                    return OctagonDomain::Oct(Arc::new(b));
                }
                if !b.close() {
                    return OctagonDomain::Oct(Arc::new(a));
                }
                // Tracked set: intersection (a variable missing on one side
                // is unconstrained there, so its join is ⊤).
                let common: Vec<Symbol> = a
                    .vars
                    .iter()
                    .filter(|v| b.index_of(v).is_some())
                    .cloned()
                    .collect();
                let snapshot = Arc::clone(&a.vars);
                for v in snapshot.iter() {
                    if !common.contains(v) {
                        a.untrack(v);
                    }
                }
                let snapshot = Arc::clone(&b.vars);
                for v in snapshot.iter() {
                    if !common.contains(v) {
                        b.untrack(v);
                    }
                }
                debug_assert_eq!(a.vars, b.vars);
                let mut out = a;
                for (o, &bv) in out.dbm.iter_mut().zip(&b.dbm) {
                    if bv > *o {
                        *o = bv;
                    }
                }
                // Pointwise max of closed matrices is closed.
                out.closed = true;
                OctagonDomain::Oct(Arc::new(out))
            }
        }
    }

    fn widen(&self, next: &Self) -> Self {
        match (self, next) {
            (OctagonDomain::Bottom, x) => x.clone(),
            (x, OctagonDomain::Bottom) => x.clone(),
            (OctagonDomain::Oct(a), OctagonDomain::Oct(b)) => {
                // Close the new iterate (right), NOT the accumulator (left):
                // closing the widening output would defeat convergence.
                let mut b = Oct::clone(b);
                if !b.close() {
                    return self.clone();
                }
                let mut a = Oct::clone(a);
                // Align variables: intersection.
                let common: Vec<Symbol> = a
                    .vars
                    .iter()
                    .filter(|v| b.index_of(v).is_some())
                    .cloned()
                    .collect();
                let snapshot = Arc::clone(&a.vars);
                for v in snapshot.iter() {
                    if !common.contains(v) {
                        a.untrack(v);
                    }
                }
                let snapshot = Arc::clone(&b.vars);
                for v in snapshot.iter() {
                    if !common.contains(v) {
                        b.untrack(v);
                    }
                }
                let mut out = a.clone();
                for i in 0..out.dbm.len() {
                    out.dbm[i] = if b.dbm[i] <= a.dbm[i] { a.dbm[i] } else { INF };
                }
                out.closed = false;
                OctagonDomain::Oct(Arc::new(out))
            }
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (OctagonDomain::Bottom, _) => true,
            (OctagonDomain::Oct(a), OctagonDomain::Bottom) => {
                let mut a = Oct::clone(a);
                !a.close()
            }
            (OctagonDomain::Oct(a), OctagonDomain::Oct(b)) => {
                let mut a = Oct::clone(a);
                if !a.close() {
                    return true;
                }
                let mut b = Oct::clone(b);
                if !b.close() {
                    return false;
                }
                // Every constraint of b must be implied by a; variables a
                // does not track are unconstrained (∞) on a's side.
                for (j1, v1) in b.vars.iter().enumerate() {
                    let a1 = a.index_of(v1);
                    for (j2, v2) in b.vars.iter().enumerate() {
                        let a2 = a.index_of(v2);
                        for s1 in 0..2 {
                            for s2 in 0..2 {
                                if j1 == j2 && s1 == s2 {
                                    continue; // diagonal is always 0
                                }
                                let bb = b.at(2 * j1 + s1, 2 * j2 + s2);
                                if bb == INF {
                                    continue;
                                }
                                let av = match (a1, a2) {
                                    (Some(i1), Some(i2)) => a.at(2 * i1 + s1, 2 * i2 + s2),
                                    _ => INF,
                                };
                                if av > bb {
                                    return false;
                                }
                            }
                        }
                    }
                }
                true
            }
        }
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        if self.is_bottom() {
            return OctagonDomain::Bottom;
        }
        match stmt {
            Stmt::Skip | Stmt::Print(_) | Stmt::FieldWrite(..) | Stmt::ArrayWrite(..) => {
                // Arrays and heap are untracked; an array write cannot
                // change any tracked integer variable (arrays are values
                // and array-valued variables are never tracked).
                self.clone()
            }
            Stmt::Assign(x, e) => {
                if let Some(lin) = linear1(e) {
                    self.assign_linear(x, &lin)
                } else {
                    let iv = self.eval_interval(e);
                    if iv.is_empty() {
                        return OctagonDomain::Bottom;
                    }
                    let numeric = expr_definitely_numeric(e);
                    self.map(|o| {
                        if !o.close() {
                            return false;
                        }
                        if numeric {
                            o.assign_interval_closed(x, iv);
                        } else {
                            o.forget(x);
                            o.untrack(x);
                        }
                        true
                    })
                }
            }
            Stmt::Assume(e) => self.refine(e, true),
            Stmt::Call { lhs, .. } => match lhs {
                Some(x) => self.map(|o| {
                    o.untrack(x);
                    true
                }),
                None => self.clone(),
            },
        }
    }

    fn compile_transfer(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        <OctagonDomain as crate::compile::CompileTransfer>::stage(stmt)
    }

    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self {
        if self.is_bottom() {
            return OctagonDomain::Bottom;
        }
        // Assign temporaries $argᵢ := actualᵢ in the caller state (keeping
        // relations between arguments), project onto them, then rename.
        let mut cur = self.clone();
        let temps: Vec<Symbol> = (0..callee_params.len())
            .map(|i| Symbol::new(format!("$arg{i}")))
            .collect();
        for (t, a) in temps.iter().zip(site.args) {
            cur = cur.transfer(&Stmt::Assign(t.clone(), a.clone()));
        }
        let OctagonDomain::Oct(o) = cur else {
            return OctagonDomain::Bottom;
        };
        // `cur` is locally owned, so this is normally a move, not a copy.
        let mut o = Arc::try_unwrap(o).unwrap_or_else(|shared| (*shared).clone());
        if !o.close() {
            return OctagonDomain::Bottom;
        }
        let snapshot = Arc::clone(&o.vars);
        for v in snapshot.iter() {
            if !temps.contains(v) {
                o.untrack(v);
            }
        }
        // Rename $argᵢ → paramᵢ by rebuilding.
        let mut out = Oct::unconstrained(Vec::new());
        for p in callee_params {
            out.track(p);
        }
        for (i, t1) in temps.iter().enumerate() {
            let Some(o1) = o.index_of(t1) else { continue };
            let n1 = out.index_of(&callee_params[i]).expect("tracked");
            for (j, t2) in temps.iter().enumerate() {
                let Some(o2) = o.index_of(t2) else { continue };
                let n2 = out.index_of(&callee_params[j]).expect("tracked");
                for s1 in 0..2 {
                    for s2 in 0..2 {
                        out.set(2 * n1 + s1, 2 * n2 + s2, o.at(2 * o1 + s1, 2 * o2 + s2));
                    }
                }
            }
        }
        out.closed = false;
        OctagonDomain::Oct(Arc::new(out)).map(|_| true)
    }

    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self {
        if self.is_bottom() || callee_exit.is_bottom() {
            return OctagonDomain::Bottom;
        }
        match site.lhs {
            Some(x) => {
                let ret = callee_exit.interval_of(RETURN_VAR);
                self.map(|o| {
                    o.forget(x);
                    if ret == Interval::TOP {
                        // The callee may return a non-numeric value.
                        o.untrack(x);
                        true
                    } else {
                        o.constrain_interval(x, ret)
                    }
                })
            }
            None => self.clone(),
        }
    }

    fn models(&self, concrete: &ConcreteState) -> bool {
        match self {
            OctagonDomain::Bottom => false,
            OctagonDomain::Oct(o) => {
                // Every tracked variable present in the concrete state must
                // be an integer satisfying all raw constraints (raw entries
                // are valid constraints whether or not the matrix is
                // closed). Tracked-but-absent variables are unconstrained
                // in the concrete state, so rows mentioning them cannot be
                // checked (and need not be: γ only constrains defined vars).
                let mut vals: Vec<Option<i64>> = Vec::with_capacity(o.n());
                for v in o.vars.iter() {
                    match concrete.env.get(v) {
                        Some(Value::Int(n)) => vals.push(Some(*n)),
                        Some(_) => return false, // tracked var must be numeric
                        None => vals.push(None),
                    }
                }
                let signed = |i: usize| -> Option<i128> {
                    let v = vals[i / 2]?;
                    Some(if i.is_multiple_of(2) {
                        v as i128
                    } else {
                        -(v as i128)
                    })
                };
                let d = o.dim();
                for i in 0..d {
                    for j in 0..d {
                        let c = o.at(i, j);
                        if c == INF {
                            continue;
                        }
                        if let (Some(vi), Some(vj)) = (signed(i), signed(j)) {
                            if vi - vj > c as i128 {
                                return false;
                            }
                        }
                    }
                }
                true
            }
        }
    }
}

impl crate::compile::CompileTransfer for OctagonDomain {
    /// Stages a statement against the octagon domain. The win here is
    /// real: the interpreter re-runs [`linear1`] (an AST walk with
    /// checked arithmetic) and [`expr_definitely_numeric`] on every
    /// evaluation before reaching the O(d) `assign_*_closed` primitives;
    /// staging runs the classification once and the closure jumps
    /// straight to the same primitive, so the results are bit-identical
    /// by construction.
    fn stage(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        use crate::compile::{CompiledTransfer, TransferShape};
        match stmt {
            Stmt::Skip | Stmt::Print(_) | Stmt::FieldWrite(..) | Stmt::ArrayWrite(..) => {
                // Identical to the interpreter on both variants: Bottom
                // clones to Bottom, an octagon clones to itself.
                Some(CompiledTransfer::new(
                    TransferShape::Identity,
                    |pre: &OctagonDomain| pre.clone(),
                ))
            }
            Stmt::Assign(x, e) => {
                if let Some(lin) = linear1(e) {
                    let shape = match &lin {
                        Linear1::Const(_) => TransferShape::ConstAssign,
                        Linear1::Term { var, .. } if var == x => TransferShape::ShiftAssign,
                        Linear1::Term { .. } => TransferShape::CopyAssign,
                    };
                    let x = x.clone();
                    Some(CompiledTransfer::new(shape, move |pre: &OctagonDomain| {
                        if pre.is_bottom() {
                            return OctagonDomain::Bottom;
                        }
                        pre.assign_linear(&x, &lin)
                    }))
                } else {
                    // Non-octagonal right-hand side: the interval
                    // evaluation depends on the pre-state, but the
                    // numericity classification does not — stage it.
                    let numeric = expr_definitely_numeric(e);
                    let x = x.clone();
                    let e = e.clone();
                    Some(CompiledTransfer::new(
                        TransferShape::Assign,
                        move |pre: &OctagonDomain| {
                            if pre.is_bottom() {
                                return OctagonDomain::Bottom;
                            }
                            let iv = pre.eval_interval(&e);
                            if iv.is_empty() {
                                return OctagonDomain::Bottom;
                            }
                            pre.map(|o| {
                                if !o.close() {
                                    return false;
                                }
                                if numeric {
                                    o.assign_interval_closed(&x, iv);
                                } else {
                                    o.forget(&x);
                                    o.untrack(&x);
                                }
                                true
                            })
                        },
                    ))
                }
            }
            Stmt::Assume(e) => {
                // Stage the whole `refine` recursion: the interpreter
                // re-walks the condition AST per evaluation, re-running
                // `linear_terms`/`merge_terms` (allocations + checked
                // arithmetic) for every comparison leaf. All of that is a
                // pure function of the expression, so it is hoisted here
                // into an [`AssumePlan`]; applying the plan jumps straight
                // to `add_sum_le` + `close`.
                let plan = AssumePlan::stage(e, true);
                Some(CompiledTransfer::new(
                    TransferShape::Assume,
                    move |pre: &OctagonDomain| plan.apply(pre),
                ))
            }
            // Calls route through the interprocedural resolver; their
            // meaning is not a function of the statement text alone.
            Stmt::Call { .. } => None,
        }
    }
}

/// A staged [`OctagonDomain::refine`]: the condition's boolean structure
/// and every comparison leaf's constraint extraction, precomputed at
/// stage time. [`AssumePlan::apply`] must take exactly the branches
/// `refine` would — the bit-identity contract of [`crate::compile`]
/// rests on each variant below mirroring one arm of `refine` /
/// `assume_cmp`.
/// One staged `add_sum_le` invocation: the `±1`-signed term list, its
/// length `k`, and the bound — the exact argument triple `assume_cmp`
/// passes through.
type SumLeArgs = (Vec<(i64, Symbol)>, i64, i64);

enum AssumePlan {
    /// `Expr::Bool` leaf (or any always-`const` outcome): `true` clones,
    /// `false` is `Bottom` — `refine`'s literal arm.
    Const(bool),
    /// No refinement possible (non-comparison leaf, or constraint
    /// extraction failed before any state was touched): clone, exactly
    /// `refine`'s `self.clone()` fallbacks.
    Keep,
    /// A comparison leaf whose extraction succeeded: the `(terms, k,
    /// bound)` list `assume_cmp` would feed to [`add_sum_le`], in order
    /// (two entries for `Eq`, none for `Ne`), followed by `close`.
    Cmp(Vec<SumLeArgs>),
    /// A comparison leaf whose *bound* arithmetic overflows in a place
    /// `assume_cmp` only reaches lazily (`Eq` with `base == i64::MIN`:
    /// the second bound's `checked_neg()?` sits after a short-circuiting
    /// `&&`, so the outcome depends on the first add). Unstageable —
    /// run the interpreter's own leaf at apply time.
    Raw(BinOp, Expr, Expr),
    /// `And` under `expected` / `Or` under `!expected`: refine left,
    /// then refine right on the result.
    Seq(Box<AssumePlan>, Box<AssumePlan>),
    /// `Or` under `expected` / `And` under `!expected`: refine both
    /// from the same pre-state and join.
    Join(Box<AssumePlan>, Box<AssumePlan>),
}

impl AssumePlan {
    /// Mirrors `refine(cond, expected)`'s match, one variant per arm.
    fn stage(cond: &Expr, expected: bool) -> AssumePlan {
        match cond {
            Expr::Bool(b) => AssumePlan::Const(*b == expected),
            Expr::Unary(UnOp::Not, inner) => AssumePlan::stage(inner, !expected),
            Expr::Binary(BinOp::And, l, r) if expected => AssumePlan::Seq(
                Box::new(AssumePlan::stage(l, true)),
                Box::new(AssumePlan::stage(r, true)),
            ),
            Expr::Binary(BinOp::And, l, r) => AssumePlan::Join(
                Box::new(AssumePlan::stage(l, false)),
                Box::new(AssumePlan::stage(r, false)),
            ),
            Expr::Binary(BinOp::Or, l, r) if expected => AssumePlan::Join(
                Box::new(AssumePlan::stage(l, true)),
                Box::new(AssumePlan::stage(r, true)),
            ),
            Expr::Binary(BinOp::Or, l, r) => AssumePlan::Seq(
                Box::new(AssumePlan::stage(l, false)),
                Box::new(AssumePlan::stage(r, false)),
            ),
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let op = if expected {
                    *op
                } else {
                    op.negate_comparison().expect("comparison")
                };
                AssumePlan::stage_cmp(op, l, r)
            }
            _ => AssumePlan::Keep,
        }
    }

    /// Mirrors `assume_cmp`'s state-independent prefix. Every `?` here
    /// fires before `assume_cmp` touches the (cloned) state, so mapping
    /// failure to [`AssumePlan::Keep`] reproduces `refine`'s
    /// `None => self.clone()` exactly — except `Eq`'s second bound,
    /// which `assume_cmp` computes lazily after the first `add_sum_le`
    /// and therefore cannot be hoisted (see [`AssumePlan::Raw`]).
    fn stage_cmp(op: BinOp, l: &Expr, r: &Expr) -> AssumePlan {
        let extract = || -> Option<Vec<SumLeArgs>> {
            let (lt, lc) = linear_terms(l)?;
            let (rt, rc) = linear_terms(r)?;
            let mut terms = lt;
            for (s, v) in rt {
                terms.push((-s, v));
            }
            let (terms, k) = merge_terms(terms)?;
            let base = rc.checked_sub(lc)?;
            let neg = |terms: &[(i64, Symbol)]| -> Vec<(i64, Symbol)> {
                terms.iter().map(|(s, v)| (-s, v.clone())).collect()
            };
            Some(match op {
                BinOp::Lt => vec![(terms, k, base.checked_sub(1)?)],
                BinOp::Le => vec![(terms, k, base)],
                BinOp::Gt => {
                    let n = neg(&terms);
                    vec![(n, k, base.checked_neg()?.checked_sub(1)?)]
                }
                BinOp::Ge => {
                    let n = neg(&terms);
                    vec![(n, k, base.checked_neg()?)]
                }
                BinOp::Eq => match base.checked_neg() {
                    Some(nb) => {
                        let n = neg(&terms);
                        vec![(terms, k, base), (n, k, nb)]
                    }
                    // `assume_cmp` only evaluates this negation after the
                    // first constraint is added; defer to the interpreter.
                    None => return None,
                },
                BinOp::Ne => Vec::new(), // disjunctive; sound to skip
                _ => return None,
            })
        };
        match extract() {
            Some(adds) => AssumePlan::Cmp(adds),
            // Distinguish "extraction failed before any state was
            // touched" (→ clone, like `refine`) from the lazy-`Eq`
            // overflow (→ interpret the leaf). The former is every case
            // where a `?` above fires on expression-only data; only the
            // `Eq` branch returns `None` with state-order significance.
            None => {
                if op == BinOp::Eq && Self::eq_bound_is_lazy(l, r) {
                    AssumePlan::Raw(op, l.clone(), r.clone())
                } else {
                    AssumePlan::Keep
                }
            }
        }
    }

    /// True iff `l == r` extracts cleanly up to `base` but
    /// `base.checked_neg()` overflows — the one failure `assume_cmp`
    /// reaches only after mutating its working copy.
    fn eq_bound_is_lazy(l: &Expr, r: &Expr) -> bool {
        let probe = || -> Option<i64> {
            let (lt, lc) = linear_terms(l)?;
            let (rt, rc) = linear_terms(r)?;
            let mut terms = lt;
            for (s, v) in rt {
                terms.push((-s, v));
            }
            merge_terms(terms)?;
            rc.checked_sub(lc)
        };
        matches!(probe(), Some(base) if base.checked_neg().is_none())
    }

    /// Applies the staged plan; branch-for-branch equal to
    /// `refine(cond, expected)` on the staged `(cond, expected)`.
    fn apply(&self, pre: &OctagonDomain) -> OctagonDomain {
        if pre.is_bottom() {
            return OctagonDomain::Bottom;
        }
        match self {
            AssumePlan::Const(true) | AssumePlan::Keep => pre.clone(),
            AssumePlan::Const(false) => OctagonDomain::Bottom,
            AssumePlan::Cmp(adds) => {
                let o = match pre {
                    OctagonDomain::Bottom => return OctagonDomain::Bottom,
                    OctagonDomain::Oct(o) => o,
                };
                // Staged fast path: on a closed, consistent octagon that
                // already implies every staged constraint, `add_sum_le`
                // tightens nothing and `close` is a no-op, so the
                // interpreter's result is bit-equal to the pre-state —
                // share it instead of copying the matrix. (This is the
                // warm-path common case: at a converged fixpoint, loop
                // guards no longer tighten anything.) The interpreter
                // cannot make this check without first re-extracting the
                // constraints, which is exactly what staging hoisted.
                if o.is_closed()
                    && !o.has_negative_diagonal()
                    && adds
                        .iter()
                        .all(|(terms, k, bound)| o.implies_sum_le(terms, *k, *bound))
                {
                    return OctagonDomain::Oct(Arc::clone(o));
                }
                let mut out = Oct::clone(o);
                // Sequential-with-break mirrors `assume_cmp`'s
                // short-circuiting `&&` (a failed first `Eq` constraint
                // skips the second).
                let mut ok = true;
                for (terms, k, bound) in adds {
                    if !add_sum_le(&mut out, terms, *k, *bound) {
                        ok = false;
                        break;
                    }
                }
                if !ok || !out.close() {
                    OctagonDomain::Bottom
                } else {
                    OctagonDomain::Oct(Arc::new(out))
                }
            }
            AssumePlan::Raw(op, l, r) => match pre.assume_cmp(*op, l, r) {
                Some(s) => s,
                None => pre.clone(),
            },
            AssumePlan::Seq(a, b) => b.apply(&a.apply(pre)),
            AssumePlan::Join(a, b) => a.apply(pre).join(&b.apply(pre)),
        }
    }
}

/// Conservative check that an expression always evaluates to an integer
/// (when it evaluates at all).
fn expr_definitely_numeric(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::ArrayLen(_) => true,
        Expr::Unary(UnOp::Neg, i) => expr_definitely_numeric(i),
        Expr::Binary(op, _, _) => {
            matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
            )
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_lang::parse_expr;

    fn assume(s: &OctagonDomain, cond: &str) -> OctagonDomain {
        s.transfer(&Stmt::Assume(parse_expr(cond).unwrap()))
    }

    fn assign(s: &OctagonDomain, x: &str, e: &str) -> OctagonDomain {
        s.transfer(&Stmt::Assign(x.into(), parse_expr(e).unwrap()))
    }

    /// The O(d) closed-matrix assignments must agree with the
    /// closure-based reference (`assign_linear_ref`) on randomized
    /// constraint states: same tracked intervals and same matrix up to
    /// strong closure (compared via every pairwise difference bound the
    /// public API exposes).
    #[test]
    fn fast_assignments_match_closure_reference() {
        // Deterministic LCG so the sequence is reproducible without a
        // rand dependency.
        let mut seed: u64 = 0x5EED_CAFE;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as i64
        };
        let vars = ["a", "b", "c", "d"];
        for round in 0..200 {
            // Grow a random state with assumes and assignments.
            let mut st = OctagonDomain::top();
            for _ in 0..(round % 5) {
                let v = vars[(next() % 4).unsigned_abs() as usize];
                let w = vars[(next() % 4).unsigned_abs() as usize];
                let c = next() % 20;
                st = assume(&st, &format!("{v} < {w} + {c}"));
                let k = next() % 9;
                st = assign(&st, w, &format!("{k}"));
            }
            // Random linear assignment, applied both ways.
            let x = Symbol::new(vars[(next() % 4).unsigned_abs() as usize]);
            let lin = match next() % 3 {
                0 => Linear1::Const(next() % 100),
                _ => Linear1::Term {
                    sign: if next() % 2 == 0 { 1 } else { -1 },
                    var: Symbol::new(vars[(next() % 4).unsigned_abs() as usize]),
                    offset: next() % 50,
                },
            };
            let fast = st.assign_linear(&x, &lin);
            let slow = st.assign_linear_ref(&x, &lin);
            assert_eq!(fast.is_bottom(), slow.is_bottom(), "round {round}");
            for v in vars {
                assert_eq!(
                    fast.interval_of(v),
                    slow.interval_of(v),
                    "round {round}: interval of {v} after {x} := {lin:?}"
                );
            }
            // Pairwise difference bounds agree too (octagonal relations,
            // not just intervals).
            for v in vars {
                for w in vars {
                    let e = parse_expr(&format!("{v} - {w}")).unwrap();
                    assert_eq!(
                        fast.eval_interval(&e),
                        slow.eval_interval(&e),
                        "round {round}: {v} - {w} after {x} := {lin:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_assignment_bounds() {
        let s = assign(&OctagonDomain::top(), "x", "5");
        assert_eq!(s.interval_of("x"), Interval::constant(5));
    }

    #[test]
    fn linear_assignment_tracks_relation() {
        let s = assign(&assign(&OctagonDomain::top(), "x", "3"), "y", "x + 2");
        assert_eq!(s.interval_of("y"), Interval::constant(5));
        assert!(s.entails_diff_le("y", "x", 2));
        assert!(s.entails_diff_le("x", "y", -2));
    }

    #[test]
    fn self_increment() {
        let mut s = assign(&OctagonDomain::top(), "i", "0");
        s = assign(&s, "i", "i + 1");
        assert_eq!(s.interval_of("i"), Interval::constant(1));
        s = assign(&s, "i", "i + 1");
        assert_eq!(s.interval_of("i"), Interval::constant(2));
    }

    #[test]
    fn negation_assignment() {
        let s = assign(&assign(&OctagonDomain::top(), "x", "4"), "y", "-x + 1");
        assert_eq!(s.interval_of("y"), Interval::constant(-3));
    }

    #[test]
    fn assume_relational_constraint() {
        let s = assume(&OctagonDomain::top(), "i < j");
        assert!(s.entails_diff_le("i", "j", -1));
        assert!(!s.is_bottom());
    }

    #[test]
    fn assume_contradiction_is_bottom() {
        let s = assign(&OctagonDomain::top(), "x", "5");
        assert!(assume(&s, "x > 9").is_bottom());
        let s2 = assume(&assume(&OctagonDomain::top(), "a < b"), "b < a");
        assert!(s2.is_bottom());
    }

    #[test]
    fn assume_transitive_via_closure() {
        let s = assume(&assume(&OctagonDomain::top(), "a <= b"), "b <= c");
        assert!(s.entails_diff_le("a", "c", 0));
    }

    #[test]
    fn assume_sum_constraint() {
        let s = assume(&OctagonDomain::top(), "x + y <= 4");
        // x + y ≤ 4 is representable exactly.
        let s2 = assume(&s, "x >= 3");
        let s3 = assume(&s2, "y >= 3");
        assert!(s3.is_bottom());
    }

    #[test]
    fn join_is_upper_bound() {
        let a = assign(&OctagonDomain::top(), "x", "1");
        let b = assign(&OctagonDomain::top(), "x", "5");
        let j = a.join(&b);
        assert_eq!(j.interval_of("x"), Interval::of(1, 5));
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn join_preserves_shared_relations() {
        let a = assume(&OctagonDomain::top(), "x < y");
        let b = assume(&OctagonDomain::top(), "x < y - 2");
        let j = a.join(&b);
        assert!(j.entails_diff_le("x", "y", -1));
    }

    #[test]
    fn join_drops_one_sided_vars() {
        let a = assign(&OctagonDomain::top(), "x", "1");
        let b = OctagonDomain::top();
        let j = a.join(&b);
        assert_eq!(j.interval_of("x"), Interval::TOP);
    }

    #[test]
    fn widen_drops_unstable_bounds() {
        let a = assign(&OctagonDomain::top(), "i", "0");
        let b = assume(&assume(&OctagonDomain::top(), "i >= 0"), "i <= 1");
        let w = a.widen(&b);
        let iv = w.interval_of("i");
        assert_eq!(iv.lo(), Bound::Fin(0));
        assert_eq!(iv.hi(), Bound::PosInf);
    }

    #[test]
    fn widen_is_idempotent_at_fixpoint() {
        let a = assume(&OctagonDomain::top(), "i >= 0");
        let w = a.widen(&a);
        assert_eq!(w, a.widen(&w));
    }

    #[test]
    fn widening_loop_converges() {
        // Simulate i = 0; while (...) { i = i + 1 }.
        let mut iterate = assign(&OctagonDomain::top(), "i", "0");
        for step in 0..10 {
            let body = assign(&iterate, "i", "i + 1");
            let next = iterate.widen(&iterate.join(&body));
            if next == iterate {
                assert!(step <= 3, "converged late");
                return;
            }
            iterate = next;
        }
        panic!("widening failed to converge");
    }

    #[test]
    fn leq_with_untracked_vars() {
        let a = assign(&OctagonDomain::top(), "x", "1");
        let top = OctagonDomain::top();
        assert!(a.leq(&top));
        assert!(!top.leq(&a));
        assert!(OctagonDomain::Bottom.leq(&a));
    }

    #[test]
    fn nonlinear_rhs_falls_back_to_interval() {
        let s = assign(&assign(&OctagonDomain::top(), "x", "3"), "y", "x * x");
        assert_eq!(s.interval_of("y"), Interval::constant(9));
    }

    #[test]
    fn non_numeric_rhs_untracks() {
        let s = assign(&assign(&OctagonDomain::top(), "x", "1"), "x", "[1, 2]");
        assert_eq!(s.interval_of("x"), Interval::TOP);
        // And models() accepts an array there now.
        let mut c = ConcreteState::new();
        c.env
            .insert("x".into(), Value::Arr(vec![Value::Int(1), Value::Int(2)]));
        assert!(s.models(&c));
    }

    #[test]
    fn models_checks_relations() {
        let s = assume(&OctagonDomain::top(), "x < y");
        let mut c = ConcreteState::new();
        c.env.insert("x".into(), Value::Int(1));
        c.env.insert("y".into(), Value::Int(2));
        assert!(s.models(&c));
        c.env.insert("y".into(), Value::Int(0));
        assert!(!s.models(&c));
    }

    #[test]
    fn models_rejects_non_int_for_tracked() {
        let s = assign(&OctagonDomain::top(), "x", "1");
        let mut c = ConcreteState::new();
        c.env.insert("x".into(), Value::Bool(true));
        assert!(!s.models(&c));
    }

    #[test]
    fn call_entry_preserves_arg_relations() {
        let caller = assume(&OctagonDomain::top(), "i < j");
        let args = [parse_expr("i").unwrap(), parse_expr("j").unwrap()];
        let site = CallSite {
            lhs: None,
            callee: &Symbol::new("f"),
            args: &args,
            site_key: "main:e0",
        };
        let entry = caller.call_entry(site, &[Symbol::new("p"), Symbol::new("q")]);
        assert!(entry.entails_diff_le("p", "q", -1));
    }

    #[test]
    fn call_return_binds_result_interval() {
        let caller = assign(&OctagonDomain::top(), "v", "1");
        let callee_exit = assign(&OctagonDomain::top(), RETURN_VAR, "7");
        let args = [];
        let site = CallSite {
            lhs: Some(&Symbol::new("out")),
            callee: &Symbol::new("f"),
            args: &args,
            site_key: "main:e1",
        };
        let after = caller.call_return(site, &callee_exit);
        assert_eq!(after.interval_of("out"), Interval::constant(7));
        assert_eq!(after.interval_of("v"), Interval::constant(1));
    }

    #[test]
    fn equality_ignores_closedness_flag() {
        let a = assume(&OctagonDomain::top(), "x <= 5");
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn display_shows_constraints() {
        let s = assume(&assign(&OctagonDomain::top(), "x", "1"), "x <= y");
        let txt = s.to_string();
        assert!(txt.contains("x"), "{txt}");
    }

    #[test]
    fn bottom_propagates_through_transfer() {
        let b = OctagonDomain::Bottom;
        assert!(b
            .transfer(&Stmt::Assign("x".into(), Expr::Int(1)))
            .is_bottom());
        assert!(assume(&b, "x < 1").is_bottom());
    }
}
