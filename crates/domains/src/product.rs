//! Direct products of abstract domains.
//!
//! The paper's framework is parametric in a single abstract interpreter
//! `⟨Σ♯, φ₀, ⟦·⟧♯, ⊑, ⊔, ∇⟩`; [`Prod`] builds a new instance of that
//! interface out of two existing ones, running both component analyses in
//! lockstep over the same DAIG. This is the standard *direct product*
//! construction (with `⊥`-smashing so that unreachability in either
//! component is unreachability of the pair); full *reduced* products —
//! where components exchange information at every step — are
//! domain-specific and out of scope, but `⊥`-smashing already captures the
//! most important reduction (dead code detected by either analysis kills
//! the other's state too).
//!
//! Products compose: `Prod<Prod<A, B>, C>` is a three-way product.
//!
//! ```
//! use dai_domains::product::Prod;
//! use dai_domains::{AbstractDomain, IntervalDomain, SignDomain};
//!
//! type Both = Prod<IntervalDomain, SignDomain>;
//! let top = Both::entry_default(&[]);
//! assert!(!top.is_bottom());
//! ```

use crate::{AbstractDomain, CallSite};
use dai_lang::interp::ConcreteState;
use dai_lang::{Stmt, Symbol};
use std::fmt;

/// The direct product of two abstract domains, with `⊥`-smashing: a pair
/// is `⊥` as soon as either component is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Prod<A, B>(pub A, pub B);

impl<A: AbstractDomain, B: AbstractDomain> Prod<A, B> {
    /// Creates a smashed pair: if either side is `⊥`, both become `⊥`
    /// (canonical form, so `Eq`/`Hash` see one bottom).
    pub fn new(a: A, b: B) -> Prod<A, B> {
        if a.is_bottom() || b.is_bottom() {
            Prod(A::bottom(), B::bottom())
        } else {
            Prod(a, b)
        }
    }

    /// The first component.
    pub fn first(&self) -> &A {
        &self.0
    }

    /// The second component.
    pub fn second(&self) -> &B {
        &self.1
    }
}

impl<A: fmt::Display, B: fmt::Display> fmt::Display for Prod<A, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} × {})", self.0, self.1)
    }
}

impl<A: AbstractDomain, B: AbstractDomain> AbstractDomain for Prod<A, B> {
    fn bottom() -> Self {
        Prod(A::bottom(), B::bottom())
    }

    fn is_bottom(&self) -> bool {
        // Smashing keeps this equivalent to `||`, but check both for
        // robustness against hand-built pairs.
        self.0.is_bottom() || self.1.is_bottom()
    }

    fn entry_default(params: &[Symbol]) -> Self {
        Prod::new(A::entry_default(params), B::entry_default(params))
    }

    fn join(&self, other: &Self) -> Self {
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        Prod::new(self.0.join(&other.0), self.1.join(&other.1))
    }

    fn widen(&self, next: &Self) -> Self {
        if self.is_bottom() {
            return next.clone();
        }
        if next.is_bottom() {
            return self.clone();
        }
        Prod::new(self.0.widen(&next.0), self.1.widen(&next.1))
    }

    fn leq(&self, other: &Self) -> bool {
        self.is_bottom() || (self.0.leq(&other.0) && self.1.leq(&other.1))
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        Prod::new(self.0.transfer(stmt), self.1.transfer(stmt))
    }

    /// Pairwise staging: compiles only when *both* components compile, so
    /// the compiled/interpreted accounting never reports a half-staged
    /// pair. Bit-identity is inherited: `transfer` is defined as the
    /// smashed pair of component transfers, and each staged component is
    /// bit-identical to its interpreter by the [`crate::compile`]
    /// contract.
    fn compile_transfer(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        let a = A::compile_transfer(stmt)?;
        let b = B::compile_transfer(stmt)?;
        Some(crate::compile::CompiledTransfer::new(
            a.shape(),
            move |pre: &Prod<A, B>| Prod::new(a.apply(&pre.0), b.apply(&pre.1)),
        ))
    }

    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self {
        Prod::new(
            self.0.call_entry(site, callee_params),
            self.1.call_entry(site, callee_params),
        )
    }

    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self {
        Prod::new(
            self.0.call_return(site, &callee_exit.0),
            self.1.call_return(site, &callee_exit.1),
        )
    }

    fn models(&self, concrete: &ConcreteState) -> bool {
        self.0.models(concrete) && self.1.models(concrete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constprop::{Const, ConstDomain};
    use crate::sign::{Sign, SignDomain};
    use crate::IntervalDomain;
    use dai_lang::parse_expr;

    type IS = Prod<IntervalDomain, SignDomain>;

    fn assume(d: &IS, e: &str) -> IS {
        d.transfer(&Stmt::Assume(parse_expr(e).unwrap()))
    }

    #[test]
    fn bottom_smashing_is_canonical() {
        let smashed = IS::new(IntervalDomain::bottom(), SignDomain::top());
        assert!(smashed.is_bottom());
        assert_eq!(smashed, IS::bottom(), "smashing canonicalizes Eq");
    }

    #[test]
    fn components_analyze_in_lockstep() {
        let d =
            IS::entry_default(&[]).transfer(&Stmt::Assign("x".into(), parse_expr("5").unwrap()));
        assert_eq!(d.first().interval_of("x"), dai_domains_interval_constant(5));
        assert_eq!(d.second().sign_of("x"), Sign::POS);
    }

    // Small helper aliasing the interval constructor (keeps the test body
    // on one line above).
    fn dai_domains_interval_constant(n: i64) -> crate::interval::Interval {
        crate::interval::Interval::constant(n)
    }

    #[test]
    fn either_component_can_kill_the_pair() {
        let d =
            IS::entry_default(&[]).transfer(&Stmt::Assign("x".into(), parse_expr("5").unwrap()));
        // Interval knows x = 5, so x < 0 is infeasible even though the
        // sign component alone would only refine to ⊥ via its own check.
        assert!(assume(&d, "x < 0").is_bottom());
        // And a contradiction caught by sign-refinement kills intervals.
        let d2 = assume(&IS::entry_default(&[]), "y > 0");
        assert!(assume(&d2, "y == 0").is_bottom());
    }

    #[test]
    fn product_is_at_least_as_precise_as_each_component() {
        let d = assume(&IS::entry_default(&[]), "x >= 1 && x <= 9");
        let iv = d.first().interval_of("x");
        assert!(iv.contains(1) && iv.contains(9) && !iv.contains(0));
        assert_eq!(d.second().sign_of("x"), Sign::POS);
    }

    #[test]
    fn lattice_ops_are_componentwise() {
        let a = assume(&IS::entry_default(&[]), "x == 1");
        let b = assume(&IS::entry_default(&[]), "x == 3");
        let j = a.join(&b);
        let iv = j.first().interval_of("x");
        assert!(iv.contains(1) && iv.contains(3) && !iv.contains(4));
        assert_eq!(j.second().sign_of("x"), Sign::POS);
        assert!(a.leq(&j) && b.leq(&j));
        let w = a.widen(&b);
        assert!(a.leq(&w));
    }

    #[test]
    fn three_way_products_compose() {
        type Three = Prod<Prod<IntervalDomain, SignDomain>, ConstDomain>;
        let d = Three::entry_default(&[])
            .transfer(&Stmt::Assign("k".into(), parse_expr("42").unwrap()));
        assert_eq!(d.first().second().sign_of("k"), Sign::POS);
        assert_eq!(d.second().const_of("k"), Some(Const::Int(42)));
        assert!(!d.is_bottom());
    }

    #[test]
    fn models_requires_both_components() {
        use dai_lang::interp::{ConcreteState, Value};
        let d = assume(&IS::entry_default(&[]), "x > 0");
        let mut c = ConcreteState::new();
        c.env.insert(Symbol::new("x"), Value::Int(5));
        assert!(d.models(&c));
        c.env.insert(Symbol::new("x"), Value::Int(-5));
        assert!(!d.models(&c));
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let a = assume(&IS::entry_default(&[]), "x == 1");
        assert_eq!(a.join(&IS::bottom()), a);
        assert_eq!(IS::bottom().join(&a), a);
        assert!(IS::bottom().leq(&a));
    }
}
