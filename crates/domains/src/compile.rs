//! Staged transfer compilation: per-(statement, domain) closures.
//!
//! # Staged transfer compilation
//!
//! [`AbstractDomain::transfer`](crate::AbstractDomain::transfer) is an
//! *interpreter*: every evaluation re-classifies the statement AST
//! (which `Stmt` variant? is the right-hand side `±x + c`? is it
//! definitely numeric?) before doing any abstract arithmetic. On the
//! engine's warm re-evaluation path the same statement is interpreted
//! thousands of times against different pre-states, paying the
//! classification over and over.
//!
//! This module stages that work (the classic specialization move —
//! Gallagher & Glück's "removing the interpretation overhead" applied to
//! an abstract interpreter): [`CompileTransfer::stage`] runs once per
//! statement, dissects the AST, classifies its [`TransferShape`], and
//! returns a [`CompiledTransfer`] — a closure from pre-state to
//! post-state with the operands (variable, ±1 coefficient, offset,
//! residual expression) already extracted. Evaluating the closure skips
//! straight to the domain primitive the interpreter would have
//! dispatched to.
//!
//! ## The bit-identity contract
//!
//! A compiled closure must produce a post-state **bit-for-bit identical**
//! (same `Eq`, same `Hash`, hence the same content digest) to
//! `pre.transfer(stmt)`. Memo keys content-hash values, convergence
//! checks compare iterates with `==`, and DOT dumps print states — any
//! divergence, even between semantically equal representations, is
//! observable. Compilers therefore call the *same internal primitives*
//! the interpreter dispatches to (octagon's `assign_*_closed` fast
//! paths, the env domains' `with_binding`/`eval_*`/`refine`), never a
//! reimplementation. The interpreter stays as the always-available
//! differential oracle; `tests/transfer_compile.rs` proptests the
//! contract per statement and end-to-end.
//!
//! ## Fallback rules
//!
//! `stage` is total but partial in effect: it returns `None` whenever a
//! statement has no profitable (or no sound) specialization, and the
//! caller falls back to the interpreter. The shipped rules:
//!
//! * **call statements** are never compiled — their meaning routes
//!   through the interprocedural resolver and depends on the callee's
//!   current body, not only on the statement text;
//! * **shape and other unstaged domains** do not override
//!   [`AbstractDomain::compile_transfer`](crate::AbstractDomain::compile_transfer),
//!   so every statement falls back;
//! * **products** compile only when both components do (a half-compiled
//!   pair would blur the compiled/interpreted accounting).
//!
//! Staleness is handled above this layer: `dai-core`'s transfer table
//! guards every compiled entry with the content digest of the statement
//! it was staged from, so an entry that survived a program edit degrades
//! to interpretation instead of producing a value for the wrong
//! statement.

use crate::AbstractDomain;
use dai_lang::Stmt;
use std::fmt;
use std::sync::Arc;

/// The statement shape a compiler classified, fixed at stage time. Purely
/// descriptive (metrics, debugging, tests asserting a statement staged to
/// the shape they expect); evaluation dispatches through the closure, not
/// the shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferShape {
    /// No effect on the abstract state (`skip`, `print`, untracked heap
    /// writes).
    Identity,
    /// `x := c` with a constant right-hand side.
    ConstAssign,
    /// `x := ±y + c`, `y ≠ x` (octagon's exact O(d) substitution).
    CopyAssign,
    /// `x := ±x + c` (octagon's in-place shift).
    ShiftAssign,
    /// A general assignment evaluated through the domain's expression
    /// evaluator.
    Assign,
    /// `assume e` (guard refinement).
    Assume,
    /// An array/field write with domain-specific trap checks.
    HeapWrite,
    /// A fused straight-line run of several statements.
    Fused,
}

/// A transfer function staged against one statement: apply it to a
/// pre-state to get the post-state `⟦s⟧♯(φ)`. Cheap to clone (the closure
/// is behind an `Arc`), and `Send + Sync` so scheduler workers can share
/// one table.
pub struct CompiledTransfer<D> {
    shape: TransferShape,
    f: Arc<dyn Fn(&D) -> D + Send + Sync>,
}

impl<D> Clone for CompiledTransfer<D> {
    fn clone(&self) -> Self {
        CompiledTransfer {
            shape: self.shape,
            f: Arc::clone(&self.f),
        }
    }
}

impl<D> fmt::Debug for CompiledTransfer<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledTransfer")
            .field("shape", &self.shape)
            .finish_non_exhaustive()
    }
}

impl<D> CompiledTransfer<D> {
    /// Wraps a staged closure with its classified shape.
    pub fn new(shape: TransferShape, f: impl Fn(&D) -> D + Send + Sync + 'static) -> Self {
        CompiledTransfer {
            shape,
            f: Arc::new(f),
        }
    }

    /// Applies the staged transfer to a pre-state.
    #[inline]
    pub fn apply(&self, pre: &D) -> D {
        (self.f)(pre)
    }

    /// The shape classified at stage time.
    pub fn shape(&self) -> TransferShape {
        self.shape
    }

    /// Sequential composition: a closure computing `next(self(pre))`.
    /// This is the block-fusion primitive — a straight-line run
    /// `s₁; …; s_k` fuses into one [`TransferShape::Fused`] closure whose
    /// application equals applying each member in order (and therefore
    /// inherits the bit-identity contract from its members).
    pub fn then(&self, next: &CompiledTransfer<D>) -> CompiledTransfer<D>
    where
        D: 'static,
    {
        let first = Arc::clone(&self.f);
        let second = Arc::clone(&next.f);
        CompiledTransfer {
            shape: TransferShape::Fused,
            f: Arc::new(move |pre: &D| second(&first(pre))),
        }
    }
}

/// Per-domain transfer compilers. A domain implements `stage` with its
/// own shape classification and overrides
/// [`AbstractDomain::compile_transfer`](crate::AbstractDomain::compile_transfer)
/// to delegate here; consumers (the transfer table in `dai-core`) only
/// ever call the `AbstractDomain` entry point, so unstaged domains need
/// no impl at all.
pub trait CompileTransfer: AbstractDomain {
    /// Stages `stmt` into a closure, or `None` to fall back to the
    /// interpreter (see the module docs for the fallback rules).
    fn stage(stmt: &Stmt) -> Option<CompiledTransfer<Self>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalDomain;
    use dai_lang::parse_expr;

    #[test]
    fn then_composes_in_order() {
        let a = CompiledTransfer::new(TransferShape::Assign, |pre: &IntervalDomain| {
            pre.transfer(&Stmt::Assign("x".into(), parse_expr("1").unwrap()))
        });
        let b = CompiledTransfer::new(TransferShape::Assign, |pre: &IntervalDomain| {
            pre.transfer(&Stmt::Assign("x".into(), parse_expr("x + 2").unwrap()))
        });
        let fused = a.then(&b);
        assert_eq!(fused.shape(), TransferShape::Fused);
        let out = fused.apply(&IntervalDomain::top());
        assert_eq!(
            out.interval_of("x"),
            crate::interval::Interval::constant(3),
            "b runs after a"
        );
    }

    #[test]
    fn unstaged_domains_fall_back() {
        // Shape has no compiler: the provided method must return None for
        // everything.
        assert!(crate::ShapeDomain::compile_transfer(&Stmt::Skip).is_none());
    }
}
